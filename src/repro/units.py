"""Time/frequency units and the simulation grid.

The paper simulates analog noise with 65 536-sample records and reports
spike statistics "scaled up to practical values" — picoseconds and
gigahertz.  This module centralises that mapping: a :class:`SimulationGrid`
fixes the number of samples and the sample period ``dt``; everything else
in the library works in integer sample indices and converts to physical
time only at the reporting boundary.

The paper's two source configurations are provided as ready-made grids:

* ``paper_white_grid()`` — band-limited white noise, 5 MHz–10 GHz;
* ``paper_pink_grid()``  — band-limited 1/f noise, 2.5 MHz–10 GHz.

Both use 65 536 samples and an oversampling factor of 32 relative to the
10 GHz upper band edge, which reproduces the paper's "28 samples ≈ 90 ps"
scaling for the white-noise source train (Table 2 reports both the raw
sample counts and the scaled picosecond values).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .errors import ConfigurationError

__all__ = [
    "SECOND",
    "MILLISECOND",
    "MICROSECOND",
    "NANOSECOND",
    "PICOSECOND",
    "HERTZ",
    "KILOHERTZ",
    "MEGAHERTZ",
    "GIGAHERTZ",
    "PAPER_RECORD_LENGTH",
    "PAPER_OVERSAMPLING",
    "SimulationGrid",
    "paper_white_grid",
    "paper_pink_grid",
    "format_time",
    "format_frequency",
]

# Time units expressed in seconds.
SECOND = 1.0
MILLISECOND = 1e-3
MICROSECOND = 1e-6
NANOSECOND = 1e-9
PICOSECOND = 1e-12

# Frequency units expressed in hertz.
HERTZ = 1.0
KILOHERTZ = 1e3
MEGAHERTZ = 1e6
GIGAHERTZ = 1e9

#: Record length used for every statistic in the paper's Tables 1 and 2.
PAPER_RECORD_LENGTH = 65536

#: Sample-rate over upper-band-edge ratio that reproduces the paper's
#: sample↔picosecond scaling (fs = 32 × 10 GHz = 320 GHz, dt = 3.125 ps).
PAPER_OVERSAMPLING = 32


@dataclass(frozen=True)
class SimulationGrid:
    """A uniform discrete-time grid for noise and spike simulation.

    Parameters
    ----------
    n_samples:
        Number of samples in one simulated record.  Must be positive;
        FFT-based noise shaping is fastest for powers of two.
    dt:
        Sample period in seconds.  Must be positive.
    """

    n_samples: int
    dt: float

    def __post_init__(self) -> None:
        if self.n_samples <= 0:
            raise ConfigurationError(
                f"n_samples must be positive, got {self.n_samples}"
            )
        if not (self.dt > 0.0) or not math.isfinite(self.dt):
            raise ConfigurationError(f"dt must be positive and finite, got {self.dt}")

    @property
    def sample_rate(self) -> float:
        """Sampling frequency in hertz (``1 / dt``)."""
        return 1.0 / self.dt

    @property
    def nyquist(self) -> float:
        """Nyquist frequency in hertz (half the sample rate)."""
        return 0.5 / self.dt

    @property
    def duration(self) -> float:
        """Total record duration in seconds."""
        return self.n_samples * self.dt

    @property
    def frequency_resolution(self) -> float:
        """Spacing of FFT bins in hertz (``1 / duration``)."""
        return 1.0 / self.duration

    def time_of(self, index):
        """Convert a sample index (scalar or array) to seconds."""
        return index * self.dt

    def index_of(self, time: float) -> int:
        """Convert a time in seconds to the nearest sample index."""
        return int(round(time / self.dt))

    def bin_of(self, frequency: float) -> int:
        """Return the FFT bin index nearest to ``frequency`` (in hertz)."""
        return int(round(frequency / self.frequency_resolution))

    def with_samples(self, n_samples: int) -> "SimulationGrid":
        """Return a grid with the same ``dt`` but a different length."""
        return SimulationGrid(n_samples=n_samples, dt=self.dt)

    def describe(self) -> str:
        """Human-readable one-line summary of the grid."""
        return (
            f"SimulationGrid(n={self.n_samples}, dt={format_time(self.dt)}, "
            f"fs={format_frequency(self.sample_rate)}, "
            f"T={format_time(self.duration)})"
        )


def paper_white_grid(
    n_samples: int = PAPER_RECORD_LENGTH,
    oversampling: int = PAPER_OVERSAMPLING,
    f_high: float = 10.0 * GIGAHERTZ,
) -> SimulationGrid:
    """Grid matching the paper's white-noise configuration.

    With the defaults the sample period is 3.125 ps, so the white-noise
    source train's theoretical mean inter-spike interval of ~86.6 ps
    (Rice's formula for a 5 MHz–10 GHz band) is ~28 samples — exactly the
    raw sample figure the paper reports next to "90 ps" in Table 2.
    """
    if oversampling < 4:
        raise ConfigurationError(
            f"oversampling must be at least 4 to resolve the band, got {oversampling}"
        )
    dt = 1.0 / (oversampling * f_high)
    return SimulationGrid(n_samples=n_samples, dt=dt)


def paper_pink_grid(
    n_samples: int = PAPER_RECORD_LENGTH,
    oversampling: int = PAPER_OVERSAMPLING,
    f_high: float = 10.0 * GIGAHERTZ,
) -> SimulationGrid:
    """Grid matching the paper's 1/f-noise configuration.

    The paper uses the same record length and upper band edge for the 1/f
    source, so the grid is identical to :func:`paper_white_grid`; the
    band's lower edge (2.5 MHz) enters through the spectrum, not the grid.
    """
    return paper_white_grid(n_samples=n_samples, oversampling=oversampling, f_high=f_high)


_TIME_STEPS = (
    (1.0, "s"),
    (MILLISECOND, "ms"),
    (MICROSECOND, "us"),
    (NANOSECOND, "ns"),
    (PICOSECOND, "ps"),
)

_FREQ_STEPS = (
    (GIGAHERTZ, "GHz"),
    (MEGAHERTZ, "MHz"),
    (KILOHERTZ, "kHz"),
    (HERTZ, "Hz"),
)


def format_time(seconds: float, digits: int = 3) -> str:
    """Format a duration with an auto-selected SI prefix (e.g. ``'90 ps'``)."""
    if seconds == 0:
        return "0 s"
    magnitude = abs(seconds)
    for scale, suffix in _TIME_STEPS:
        if magnitude >= scale:
            return f"{seconds / scale:.{digits}g} {suffix}"
    return f"{seconds / PICOSECOND:.{digits}g} ps"


def format_frequency(hertz: float, digits: int = 3) -> str:
    """Format a frequency with an auto-selected SI prefix (e.g. ``'10 GHz'``)."""
    if hertz == 0:
        return "0 Hz"
    magnitude = abs(hertz)
    for scale, suffix in _FREQ_STEPS:
        if magnitude >= scale:
            return f"{hertz / scale:.{digits}g} {suffix}"
    return f"{hertz:.{digits}g} Hz"
