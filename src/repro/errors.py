"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything coming from this package with a single handler while
still being able to distinguish configuration problems from runtime
simulation problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SpectrumError",
    "SpikeTrainError",
    "OrthogonalityError",
    "HyperspaceError",
    "LogicError",
    "IdentificationError",
    "SimulationError",
    "SynthesisError",
    "PipelineError",
    "ServingError",
    "ProtocolError",
    "ConnectionLostError",
]


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


class SpectrumError(ConfigurationError):
    """A power spectral density / band specification is invalid.

    Raised, for example, when a band's lower edge is not below its upper
    edge, when a band does not overlap any resolvable FFT bin of the
    simulation grid, or when a spectral exponent is out of range.
    """


class SpikeTrainError(ReproError):
    """A spike train is malformed (unsorted, duplicated, out of range)."""


class OrthogonalityError(ReproError):
    """Two spike trains expected to be orthogonal share a spike slot."""


class HyperspaceError(ReproError):
    """A hyperspace basis is inconsistent (size, labels, orthogonality)."""


class LogicError(ReproError):
    """A logic gate or circuit was used inconsistently.

    Examples: feeding a gate a value outside its input alphabet, wiring a
    circuit with dangling inputs, or evaluating a combinational circuit
    that contains a cycle.
    """


class IdentificationError(ReproError):
    """A correlator could not identify a spike train against a basis."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class SynthesisError(LogicError):
    """A synthesis request (adder, comparator, ...) cannot be honoured."""


class PipelineError(ReproError):
    """The experiment pipeline was misused.

    Examples: registering two specs under one name, requesting an
    unknown experiment, overriding a config field the spec's config
    dataclass does not declare, or loading a missing artifact.
    """


class ServingError(ReproError):
    """The serving front-end rejected or failed a request.

    Carries the protocol error code (:mod:`repro.serving.protocol`'s
    ``ERR_*`` constants) so clients can branch on the failure class
    without parsing the message.  :attr:`retryable` is the typed
    retry contract: True exactly when re-issuing the same (idempotent)
    request against a healthy server could succeed — transient load or
    shutdown conditions — and False for structural failures (bad
    frames, grid mismatches) that would fail identically forever.
    """

    #: Codes whose failures are transient.  Populated by
    #: :mod:`repro.serving.protocol` at import (the codes live there;
    #: assigning here would invert the import direction).
    RETRYABLE_CODES: frozenset = frozenset()

    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = int(code)

    @property
    def retryable(self) -> bool:
        """True when re-issuing the request could succeed."""
        return self.code in type(self).RETRYABLE_CODES

    def __reduce__(self):
        # Exception.__reduce__ would replay __init__ with ``self.args``
        # (just the message) and fail on the missing ``code`` — and a
        # worker-raised serving error must survive the pool's pickle
        # round trip intact.
        return (self.__class__, (self.code, str(self)))


class ProtocolError(ServingError):
    """A wire frame violates the serving protocol.

    Examples: a bad magic, an unsupported protocol version, a frame
    whose declared length exceeds the negotiated maximum, or a payload
    shorter than its own header claims.
    """


class ConnectionLostError(ServingError):
    """The serving connection died before the response completed.

    Raised by the clients when the transport drops mid-request — a
    crashed serving worker, a reset, an EOF with frames outstanding.
    Always :attr:`~ServingError.retryable`: the request itself was
    never refuted, only the channel died, so re-issuing it on a fresh
    connection (idempotent requests only) is exactly what a retry
    policy should do.
    """

    @property
    def retryable(self) -> bool:
        return True
