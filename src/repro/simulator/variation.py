"""Process-variation Monte Carlo on event-driven circuits.

Section 1 motivates the scheme with "processing variations" and promises
"variation tolerant circuits ... while speed is retained".  The strongest
form of the claim is at the *circuit* level: randomise every physical
delay in an event-driven netlist and check the logic still computes the
right values.

:func:`randomize_connection_delays` rewires a compiled circuit's
connections with random extra delays (each connection models a wire /
buffer whose delay varies with process corner);
:func:`variation_monte_carlo` repeats compile-run cycles over random
corners and reports the failure statistics.  For the spike scheme the
expected result — asserted by the tests and the A6 bench — is *zero
wrong values* at any delay magnitude: delays postpone coincidences but
never create false ones on an orthogonal basis, whereas the periodic
baseline (C2) aliases at specific delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping

import numpy as np

from ..errors import SimulationError
from ..logic.circuits import Circuit
from ..spikes.train import SpikeTrain
from .circuit_runner import compile_circuit

__all__ = ["VariationOutcome", "randomize_connection_delays", "variation_monte_carlo"]


@dataclass(frozen=True)
class VariationOutcome:
    """Aggregate result of a variation Monte Carlo.

    Attributes
    ----------
    trials:
        Number of random delay corners simulated.
    wrong_value_trials:
        Trials in which any output value differed from the golden model.
    unsettled_trials:
        Trials in which some gate never settled within the record.
    mean_critical_slot / max_critical_slot:
        Settling-time statistics over the successful trials.
    """

    trials: int
    wrong_value_trials: int
    unsettled_trials: int
    mean_critical_slot: float
    max_critical_slot: int


def randomize_connection_delays(
    compiled,
    max_extra_delay: int,
    rng: np.random.Generator,
) -> None:
    """Add a uniform random extra delay to every engine connection.

    Mutates the compiled circuit's engine in place, before ``run()``.
    Each connection gets an independent delay in ``[0, max_extra_delay]``
    — the per-wire process corner.
    """
    if max_extra_delay < 0:
        raise SimulationError(
            f"max_extra_delay must be >= 0, got {max_extra_delay}"
        )
    if max_extra_delay == 0:
        return
    connections = compiled.engine._connections
    for key, sinks in connections.items():
        connections[key] = [
            (sink, port, delay + int(rng.integers(0, max_extra_delay + 1)))
            for sink, port, delay in sinks
        ]


def variation_monte_carlo(
    circuit: Circuit,
    input_wires: Mapping[str, SpikeTrain],
    max_extra_delay: int,
    trials: int,
    rng: np.random.Generator,
    min_hits: int = 8,
    min_share: float = 0.5,
) -> VariationOutcome:
    """Run ``trials`` random delay corners and score the outcomes.

    The circuit is compiled with *confidence-gated* correlators (the
    fingerprint receiver of Section 6): a delayed wire that no longer
    matches its reference fabric stalls its gate detectably instead of
    being misread.  The golden values come from the clean circuit.

    Note the basis requirement: the guarantee "never silently wrong"
    holds for sparse *random* bases.  Dense periodic bases alias under
    delay by construction — the paper's argument against them.
    """
    if trials < 1:
        raise SimulationError(f"trials must be >= 1, got {trials}")

    # Golden model: identify each input wire once on the clean circuit.
    clean = circuit.transmit(input_wires)
    golden = {name: clean.values[name] for name in circuit.node_names}

    wrong = 0
    unsettled = 0
    critical_slots: List[int] = []
    for _trial in range(trials):
        compiled = compile_circuit(
            circuit,
            input_wires,
            robust=True,
            min_hits=min_hits,
            min_share=min_share,
        )
        randomize_connection_delays(compiled, max_extra_delay, rng)
        # Run past the record so delayed decision events still land.
        compiled.engine.run(
            until=next(iter(input_wires.values())).grid.n_samples
            + (max_extra_delay + 2) * (circuit.depth() + 2)
        )
        trial_wrong = False
        trial_unsettled = False
        trial_critical = 0
        for name, component in compiled.gate_components.items():
            if component.value is None:
                trial_unsettled = True
                continue
            if component.value != golden[name]:
                trial_wrong = True
            trial_critical = max(trial_critical, component.decision_slot or 0)
        if trial_wrong:
            wrong += 1
        elif trial_unsettled:
            unsettled += 1
        else:
            critical_slots.append(trial_critical)

    return VariationOutcome(
        trials=trials,
        wrong_value_trials=wrong,
        unsettled_trials=unsettled,
        mean_critical_slot=(
            float(np.mean(critical_slots)) if critical_slots else float("nan")
        ),
        max_critical_slot=max(critical_slots) if critical_slots else 0,
    )
