"""Prebuilt event-driven networks mirroring the array pipelines.

These builders assemble engines for the circuits the paper draws, so the
event-driven and array implementations can be compared spike for spike:

* :func:`demux_network` — source → cyclic demux → per-wire probes;
* :func:`intersection_network_2` — two sources → coincidence +
  anti-coincidence gates → probes for A·B, A·B̄, Ā·B;
* :func:`delayed_identification_network` — reference trains vs a delayed
  signal train through coincidence gates, the Section 6 test bench.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..spikes.train import SpikeTrain
from .components import (
    AntiCoincidenceGate,
    CoincidenceGate,
    CyclicDemux,
    DelayLine,
    Probe,
    SpikeSource,
)
from .engine import Engine

__all__ = [
    "demux_network",
    "intersection_network_2",
    "delayed_identification_network",
]


def demux_network(
    source_train: SpikeTrain,
    n_outputs: int,
) -> Tuple[Engine, List[Probe]]:
    """Source → :class:`CyclicDemux` → one probe per output wire."""
    engine = Engine(source_train.grid)
    source = SpikeSource("source", source_train)
    demux = CyclicDemux("demux", n_outputs)
    engine.connect(source, "out", demux, "in")
    probes = []
    for wire in range(1, n_outputs + 1):
        probe = Probe(f"probe{wire}")
        engine.connect(demux, f"out{wire}", probe, "in")
        probes.append(probe)
    return engine, probes


def intersection_network_2(
    train_a: SpikeTrain,
    train_b: SpikeTrain,
    window: int = 0,
) -> Tuple[Engine, Dict[str, Probe]]:
    """Two sources → the three second-order intersection products.

    Probes are keyed ``"AB"`` (coincidence), ``"Ab"`` (A only) and
    ``"aB"`` (B only).
    """
    engine = Engine(train_a.grid)
    source_a = SpikeSource("A", train_a)
    source_b = SpikeSource("B", train_b)

    both = CoincidenceGate("AB", n_inputs=2, window=window)
    engine.connect(source_a, "out", both, "in0")
    engine.connect(source_b, "out", both, "in1")

    only_a = AntiCoincidenceGate("Ab", window=window)
    engine.connect(source_a, "out", only_a, "a")
    engine.connect(source_b, "out", only_a, "b")

    only_b = AntiCoincidenceGate("aB", window=window)
    engine.connect(source_b, "out", only_b, "a")
    engine.connect(source_a, "out", only_b, "b")

    probes = {"AB": Probe("pAB"), "Ab": Probe("pAb"), "aB": Probe("paB")}
    engine.connect(both, "out", probes["AB"], "in")
    engine.connect(only_a, "out", probes["Ab"], "in")
    engine.connect(only_b, "out", probes["aB"], "in")
    return engine, probes


def delayed_identification_network(
    signal: SpikeTrain,
    references: Sequence[SpikeTrain],
    delay: int,
    window: int = 0,
) -> Tuple[Engine, List[Probe]]:
    """Delayed signal correlated against every reference train.

    The signal passes through a :class:`DelayLine` of ``delay`` samples,
    then feeds a coincidence gate per reference.  Probe i records the
    coincidences with reference i; the reference with the earliest (or
    any) coincidence is the identification verdict.  With a periodic
    basis and ``delay`` equal to the wire spacing, the *wrong* probe
    fires — the Section 6 aliasing failure.
    """
    engine = Engine(signal.grid)
    source = SpikeSource("signal", signal)
    delay_line = DelayLine("delay", delay)
    engine.connect(source, "out", delay_line, "in")

    probes = []
    for i, reference in enumerate(references):
        ref_source = SpikeSource(f"ref{i}", reference)
        gate = CoincidenceGate(f"match{i}", n_inputs=2, window=window)
        engine.connect(delay_line, "out", gate, "in0")
        engine.connect(ref_source, "out", gate, "in1")
        probe = Probe(f"hit{i}")
        engine.connect(gate, "out", probe, "in")
        probes.append(probe)
    return engine, probes
