"""Discrete-event simulation engine for spike circuits.

The array pipelines in :mod:`repro.orthogonator` process whole records at
once; this engine complements them with an *event-driven* model in which
spikes propagate through components over wires with integer delays.  It
exists for two reasons:

1. cross-validation — the event-driven demultiplexer and coincidence
   gates must reproduce the array results spike for spike (tested);
2. the Section 6 study — circuit delays are first-class here, so the
   aliasing failure of periodic spike trains under delay variations can
   be demonstrated on an actual circuit, not just on shifted arrays.

Times are integer sample slots on a :class:`~repro.units.SimulationGrid`;
simultaneous events are delivered in deterministic (insertion) order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..units import SimulationGrid

__all__ = ["Event", "Component", "Engine"]


@dataclass(frozen=True, order=True)
class Event:
    """One spike delivery: at ``slot``, ``component`` receives on ``port``."""

    slot: int
    sequence: int = field(compare=True)
    component: "Component" = field(compare=False)
    port: str = field(compare=False)


class Component:
    """Base class for event-driven circuit elements.

    Subclasses implement :meth:`on_spike`, which may call
    :meth:`Engine.emit` to send spikes onward.  Components are registered
    with exactly one engine; output connections are per named port.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._engine: Optional["Engine"] = None

    @property
    def engine(self) -> "Engine":
        if self._engine is None:
            raise SimulationError(
                f"component {self.name!r} is not attached to an engine"
            )
        return self._engine

    def on_spike(self, port: str, slot: int) -> None:
        """Handle a spike arriving on ``port`` at time ``slot``."""
        raise NotImplementedError

    def on_start(self) -> None:
        """Hook called once when the simulation starts (default: no-op)."""


class Engine:
    """Priority-queue event scheduler over integer slots.

    Usage: create components, :meth:`add` them, :meth:`connect` ports,
    then :meth:`run`.  Connections may carry a non-negative integer
    ``delay`` (samples); a spike emitted on a port is delivered to every
    connected sink after its connection's delay.
    """

    def __init__(self, grid: SimulationGrid) -> None:
        self.grid = grid
        self._components: List[Component] = []
        self._connections: Dict[Tuple[int, str], List[Tuple[Component, str, int]]] = {}
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._now = 0
        self._delivered = 0
        self._running = False

    @property
    def now(self) -> int:
        """Current simulation time (slot of the event being processed)."""
        return self._now

    @property
    def delivered_events(self) -> int:
        """Total number of delivered spike events so far."""
        return self._delivered

    def add(self, component: Component) -> Component:
        """Register a component; returns it for chaining."""
        if component._engine is not None and component._engine is not self:
            raise SimulationError(
                f"component {component.name!r} already belongs to another engine"
            )
        if component not in self._components:
            self._components.append(component)
        component._engine = self
        return component

    def connect(
        self,
        source: Component,
        out_port: str,
        sink: Component,
        in_port: str,
        delay: int = 0,
    ) -> None:
        """Wire ``source.out_port`` to ``sink.in_port`` with a delay."""
        if delay < 0:
            raise SimulationError(f"connection delay must be >= 0, got {delay}")
        self.add(source)
        self.add(sink)
        key = (id(source), out_port)
        self._connections.setdefault(key, []).append((sink, in_port, delay))

    def schedule(self, component: Component, port: str, slot: int) -> None:
        """Inject a spike delivery at an absolute slot."""
        if slot < self._now and self._running:
            raise SimulationError(
                f"cannot schedule at slot {slot}, already at {self._now}"
            )
        heapq.heappush(
            self._queue,
            Event(slot=slot, sequence=next(self._sequence), component=component, port=port),
        )

    def emit(self, source: Component, out_port: str, slot: int) -> None:
        """Deliver a spike from ``source.out_port`` to all connected sinks."""
        for sink, in_port, delay in self._connections.get((id(source), out_port), []):
            self.schedule(sink, in_port, slot + delay)

    def run(self, until: Optional[int] = None) -> int:
        """Process events in time order; returns the number delivered.

        ``until`` bounds simulation time (exclusive; default: the grid
        length).  Events scheduled at or beyond the bound stay queued.
        """
        horizon = self.grid.n_samples if until is None else until
        self._running = True
        try:
            for component in self._components:
                component.on_start()
            delivered_before = self._delivered
            while self._queue and self._queue[0].slot < horizon:
                event = heapq.heappop(self._queue)
                self._now = event.slot
                event.component.on_spike(event.port, event.slot)
                self._delivered += 1
            return self._delivered - delivered_before
        finally:
            self._running = False
