"""Event-driven spike-circuit simulator.

* :class:`Engine` / :class:`Component` — the scheduler core;
* components: :class:`SpikeSource`, :class:`Probe`, :class:`DelayLine`,
  :class:`CyclicDemux`, :class:`CoincidenceGate`,
  :class:`AntiCoincidenceGate`, :class:`RefractoryFilter`;
* prebuilt networks: :func:`demux_network`,
  :func:`intersection_network_2`, :func:`delayed_identification_network`.
"""

from .components import (
    AntiCoincidenceGate,
    CoincidenceGate,
    CyclicDemux,
    DelayLine,
    Probe,
    RefractoryFilter,
    SpikeSource,
)
from .circuit_runner import CompiledCircuit, compile_circuit, run_circuit
from .engine import Component, Engine, Event
from .logic_components import (
    CorrelatorComponent,
    GateComponent,
    RobustCorrelatorComponent,
    gate_network,
)
from .variation import (
    VariationOutcome,
    randomize_connection_delays,
    variation_monte_carlo,
)
from .networks import (
    delayed_identification_network,
    demux_network,
    intersection_network_2,
)

__all__ = [
    "Engine",
    "Component",
    "Event",
    "SpikeSource",
    "Probe",
    "DelayLine",
    "CyclicDemux",
    "CoincidenceGate",
    "AntiCoincidenceGate",
    "RefractoryFilter",
    "demux_network",
    "intersection_network_2",
    "delayed_identification_network",
    "CorrelatorComponent",
    "GateComponent",
    "gate_network",
    "CompiledCircuit",
    "compile_circuit",
    "run_circuit",
    "RobustCorrelatorComponent",
    "VariationOutcome",
    "randomize_connection_delays",
    "variation_monte_carlo",
]
