"""Event-driven circuit components.

Each component mirrors a circuit block the paper's scheme needs:

* :class:`SpikeSource` — plays back a :class:`~repro.spikes.train.SpikeTrain`;
* :class:`Probe` — records arriving spikes (back into a SpikeTrain);
* :class:`DelayLine` — fixed integer delay (the Section 6 adversary);
* :class:`CyclicDemux` — the demultiplexer-based orthogonator as a
  stateful event component (cross-validated against the array version);
* :class:`CoincidenceGate` — emits when all inputs spiked within a
  window (the intersection product / correlator primitive);
* :class:`AntiCoincidenceGate` — emits a window after an A spike iff no
  B spike fell inside the window (builds the exclusive products);
* :class:`RefractoryFilter` — suppresses spikes closer than a dead time
  (comparator chatter model).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..errors import SimulationError
from ..spikes.train import SpikeTrain
from ..units import SimulationGrid
from .engine import Component

__all__ = [
    "SpikeSource",
    "Probe",
    "DelayLine",
    "CyclicDemux",
    "CoincidenceGate",
    "AntiCoincidenceGate",
    "RefractoryFilter",
]


class SpikeSource(Component):
    """Plays a spike train into the circuit on output port ``out``."""

    def __init__(self, name: str, train: SpikeTrain) -> None:
        super().__init__(name)
        self.train = train

    def on_start(self) -> None:
        for slot in self.train.indices.tolist():
            # Source events are delivered to the component itself, which
            # forwards them; this keeps emission inside the event loop.
            self.engine.schedule(self, "fire", slot)

    def on_spike(self, port: str, slot: int) -> None:
        if port != "fire":
            raise SimulationError(f"source {self.name!r} got foreign port {port!r}")
        self.engine.emit(self, "out", slot)


class Probe(Component):
    """Records every spike arriving on port ``in`` (order preserved)."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.slots: List[int] = []

    def on_spike(self, port: str, slot: int) -> None:
        self.slots.append(slot)

    def to_train(self, grid: SimulationGrid) -> SpikeTrain:
        """The recorded spikes as a train on ``grid``."""
        return SpikeTrain(np.asarray(self.slots, dtype=np.int64), grid)


class DelayLine(Component):
    """Forwards ``in`` to ``out`` after a fixed integer delay."""

    def __init__(self, name: str, delay: int) -> None:
        super().__init__(name)
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        self.delay = delay

    def on_spike(self, port: str, slot: int) -> None:
        self.engine.emit(self, "out", slot + self.delay)


class CyclicDemux(Component):
    """Stateful cyclic demultiplexer: spike r goes to port ``out{p}``.

    Implements the routing rule ``p = 1 + (r − 1) mod M`` of Section 3(i)
    one spike at a time; ports are ``out1 .. outM``.
    """

    def __init__(self, name: str, n_outputs: int) -> None:
        super().__init__(name)
        if n_outputs < 1:
            raise SimulationError(f"n_outputs must be >= 1, got {n_outputs}")
        self.n_outputs = n_outputs
        self._count = 0

    def on_spike(self, port: str, slot: int) -> None:
        self._count += 1
        wire = 1 + (self._count - 1) % self.n_outputs
        self.engine.emit(self, f"out{wire}", slot)


class CoincidenceGate(Component):
    """Emits on ``out`` when all ``n_inputs`` ports spiked within a window.

    Ports are ``in0 .. in{N-1}``.  With ``window = 0`` inputs must spike
    in the same slot (the paper's exact coincidence); a positive window
    tolerates skew up to that many samples.  The gate emits at the slot
    of the *latest* participating spike and then re-arms.
    """

    def __init__(self, name: str, n_inputs: int = 2, window: int = 0) -> None:
        super().__init__(name)
        if n_inputs < 2:
            raise SimulationError(f"n_inputs must be >= 2, got {n_inputs}")
        if window < 0:
            raise SimulationError(f"window must be >= 0, got {window}")
        self.n_inputs = n_inputs
        self.window = window
        self._last_seen: Dict[str, int] = {}

    def on_spike(self, port: str, slot: int) -> None:
        self._last_seen[port] = slot
        if len(self._last_seen) < self.n_inputs:
            return
        oldest = min(self._last_seen.values())
        if slot - oldest <= self.window:
            self.engine.emit(self, "out", slot)
            self._last_seen.clear()


class AntiCoincidenceGate(Component):
    """Emits an A spike iff no B spike falls within ±``window`` samples.

    Ports: ``a`` (the pass input) and ``b`` (the veto input).  Because a
    vetoing B spike may arrive *after* the A spike, the decision for an A
    spike at slot t is made — and the output emitted — at
    ``t + window + 1``: the gate has a fixed decision latency of
    ``window + 1`` samples (:attr:`latency`).  With ``window = 0`` the
    output, shifted back by that latency, is exactly the set difference
    A \\ B — cross-validated against the array implementation of the
    intersection orthogonator.
    """

    def __init__(self, name: str, window: int = 0) -> None:
        super().__init__(name)
        if window < 0:
            raise SimulationError(f"window must be >= 0, got {window}")
        self.window = window
        self._recent_b: List[int] = []

    @property
    def latency(self) -> int:
        """Fixed decision latency in samples (``window + 1``)."""
        return self.window + 1

    def on_spike(self, port: str, slot: int) -> None:
        if port == "b":
            self._recent_b.append(slot)
            return
        if port == "a":
            # Defer the decision until the veto window has closed.
            self.engine.schedule(self, f"decide:{slot}", slot + self.latency)
            return
        if port.startswith("decide:"):
            a_slot = int(port.split(":", 1)[1])
            horizon = a_slot - self.window
            self._recent_b = [b for b in self._recent_b if b >= horizon]
            vetoed = any(abs(b - a_slot) <= self.window for b in self._recent_b)
            if not vetoed:
                self.engine.emit(self, "out", slot)
            return
        raise SimulationError(
            f"anti-coincidence {self.name!r} got foreign port {port!r}"
        )


class RefractoryFilter(Component):
    """Drops spikes arriving within ``dead_time`` samples of the last pass.

    Models a comparator with a recovery time; used in robustness studies
    of the zero-crossing spike generators.
    """

    def __init__(self, name: str, dead_time: int) -> None:
        super().__init__(name)
        if dead_time < 0:
            raise SimulationError(f"dead_time must be >= 0, got {dead_time}")
        self.dead_time = dead_time
        self._last_pass: Optional[int] = None

    def on_spike(self, port: str, slot: int) -> None:
        if self._last_pass is not None and slot - self._last_pass <= self.dead_time:
            return
        self._last_pass = slot
        self.engine.emit(self, "out", slot)
