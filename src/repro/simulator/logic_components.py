"""Event-driven logic components: correlators and gates as circuit elements.

These close the loop between the array-level logic layer
(:mod:`repro.logic`) and the event-driven simulator: a
:class:`CorrelatorComponent` performs first-coincidence identification
spike by spike, and a :class:`GateComponent` assembles a full
truth-table gate — per-input correlators, table lookup, and emission of
the output value's reference train — entirely inside the event loop.

The cross-validation tests assert that a gate evaluated this way agrees
with :meth:`repro.logic.gates.TruthTableGate.transmit` in both the
computed value and the decision slot, which certifies the array level as
a faithful shortcut of the physical event-level behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import SimulationError
from ..hyperspace.basis import HyperspaceBasis
from ..logic.gates import TruthTableGate
from .engine import Component, Engine

__all__ = [
    "CorrelatorComponent",
    "RobustCorrelatorComponent",
    "GateComponent",
    "gate_network",
]


class CorrelatorComponent(Component):
    """First-coincidence identifier as an event component.

    Listens on port ``in``; the first spike whose slot is owned by a
    basis element decides.  On decision the component emits one spike on
    ``decided`` at the decision slot, and exposes :attr:`element`.
    Further spikes are ignored (the correlator latches).
    """

    def __init__(self, name: str, basis: HyperspaceBasis) -> None:
        super().__init__(name)
        self.basis = basis
        self.element: Optional[int] = None
        self.decision_slot: Optional[int] = None

    def on_spike(self, port: str, slot: int) -> None:
        if port != "in":
            raise SimulationError(
                f"correlator {self.name!r} got foreign port {port!r}"
            )
        if self.element is not None:
            return
        owner = self.basis.owner_of_slot(slot)
        if owner is None:
            return
        self.element = owner
        self.decision_slot = slot
        self.engine.emit(self, "decided", slot)


class RobustCorrelatorComponent(Component):
    """Confidence-gated identifier: decides only on concentrated evidence.

    The plain :class:`CorrelatorComponent` trusts the *first* owned
    spike — maximally fast, but a wire whose timing has slipped relative
    to the reference fabric (a delay-variation corner) can land spikes on
    foreign slots and be misread.  This variant embodies the Section 6
    "fingerprint" receiver: it watches ``min_hits`` wire spikes or more
    and decides on element e only while e owns at least ``min_share`` of
    *all* spikes seen.

    * clean wire → every spike owned by e → decides at spike
      ``min_hits`` (latency = a few ISIs, still ps-scale);
    * delayed wire on a *sparse random* basis → owned spikes are rare
      and scattered → no element ever reaches the share → the component
      stays silent (a detectable stall, never a wrong value);
    * a dense periodic basis still aliases — that is a property of
      periodic bases, not of the receiver (Section 6's point).
    """

    def __init__(
        self,
        name: str,
        basis: HyperspaceBasis,
        min_hits: int = 8,
        min_share: float = 0.5,
    ) -> None:
        super().__init__(name)
        if min_hits < 1:
            raise SimulationError(f"min_hits must be >= 1, got {min_hits}")
        if not (0.0 < min_share <= 1.0):
            raise SimulationError(
                f"min_share must lie in (0, 1], got {min_share}"
            )
        self.basis = basis
        self.min_hits = min_hits
        self.min_share = min_share
        self._seen = 0
        self._hits: Dict[int, int] = {}
        self.element: Optional[int] = None
        self.decision_slot: Optional[int] = None

    def on_spike(self, port: str, slot: int) -> None:
        if port != "in":
            raise SimulationError(
                f"correlator {self.name!r} got foreign port {port!r}"
            )
        if self.element is not None:
            return
        self._seen += 1
        owner = self.basis.owner_of_slot(slot)
        if owner is not None:
            self._hits[owner] = self._hits.get(owner, 0) + 1
        if self._seen < self.min_hits or not self._hits:
            return
        leader = max(self._hits, key=self._hits.get)
        if self._hits[leader] / self._seen >= self.min_share:
            self.element = leader
            self.decision_slot = slot
            self.engine.emit(self, "decided", slot)


class GateComponent(Component):
    """A truth-table gate evaluated inside the event loop.

    One :class:`CorrelatorComponent` per input feeds this component's
    ports ``arg0 .. arg{K-1}`` (wired by :func:`gate_network`).  When the
    last input settles, the gate looks up its table and *emits the output
    value's reference train* on port ``out`` — every spike of that train
    from the decision slot onward, exactly like a driver that switches
    onto the selected reference wire.

    Attributes
    ----------
    value:
        The computed output value (after all inputs settled).
    decision_slot:
        Slot of the slowest input identification.
    """

    def __init__(self, name: str, gate: TruthTableGate) -> None:
        super().__init__(name)
        self.gate = gate
        self._pending: Dict[int, int] = {}
        self._correlators: Dict[int, CorrelatorComponent] = {}
        self.value: Optional[int] = None
        self.decision_slot: Optional[int] = None

    def on_spike(self, port: str, slot: int) -> None:
        if not port.startswith("arg"):
            raise SimulationError(f"gate {self.name!r} got foreign port {port!r}")
        position = int(port[3:])
        if position in self._pending:
            raise SimulationError(
                f"gate {self.name!r}: input {position} decided twice"
            )
        # The payload of the decision event is the element index, passed
        # via the sender's correlator; look it up through the port map
        # installed by gate_network.
        correlator = self._correlators[position]
        if correlator.element is None:
            raise SimulationError(
                f"gate {self.name!r}: decision event before correlator settled"
            )
        self._pending[position] = correlator.element
        if len(self._pending) < self.gate.arity:
            return
        values = tuple(self._pending[i] for i in range(self.gate.arity))
        self.value = self.gate.table[values]
        self.decision_slot = slot
        # Drive the output reference train from the decision onward.
        reference = self.gate.output_basis.trains[self.value]
        for out_slot in reference.indices.tolist():
            if out_slot >= slot:
                self.engine.emit(self, "out", out_slot)


def gate_network(
    engine: Engine,
    gate: TruthTableGate,
    name: str = "gate",
    robust: bool = False,
    min_hits: int = 8,
    min_share: float = 0.5,
) -> GateComponent:
    """Assemble correlators + gate on ``engine``; returns the gate component.

    Wire input spike sources to the returned component's correlators via
    ``engine.connect(source, "out", network.correlator(i), "in")`` — the
    helper attaches them as ``gate_component.correlator(i)``.

    ``robust=True`` swaps the first-coincidence correlators for
    confidence-gated :class:`RobustCorrelatorComponent`s (used by the
    variation Monte Carlo: under timing variations the gate stalls
    detectably instead of computing with a misread value).
    """
    gate_component = GateComponent(name, gate)
    engine.add(gate_component)
    correlators: Dict[int, Component] = {}
    for position, basis in enumerate(gate.input_bases):
        if robust:
            correlator: Component = RobustCorrelatorComponent(
                f"{name}_corr{position}",
                basis,
                min_hits=min_hits,
                min_share=min_share,
            )
        else:
            correlator = CorrelatorComponent(f"{name}_corr{position}", basis)
        engine.connect(correlator, "decided", gate_component, f"arg{position}")
        correlators[position] = correlator
    gate_component._correlators = correlators
    # Convenience accessor.
    gate_component.correlator = correlators.__getitem__  # type: ignore[attr-defined]
    return gate_component
