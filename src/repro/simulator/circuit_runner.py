"""Run a logic :class:`~repro.logic.circuits.Circuit` on the event engine.

:func:`compile_circuit` lowers a combinational netlist into simulator
components — one :class:`~repro.simulator.logic_components.GateComponent`
(with its per-input correlators) per node, spike sources for the primary
inputs, and probes on the outputs — then :func:`run_circuit` executes it
and collects the results.

This is the strongest validation the repo offers for the array-level
logic layer: the event-driven execution re-derives every gate decision
from individual spike deliveries, and the tests assert value-for-value
and slot-for-slot agreement with :meth:`Circuit.transmit` on synthesized
adders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..errors import SimulationError
from ..logic.circuits import Circuit
from ..spikes.train import SpikeTrain
from .components import Probe, SpikeSource
from .engine import Engine
from .logic_components import GateComponent, gate_network

__all__ = ["CompiledCircuit", "compile_circuit", "run_circuit"]


@dataclass
class CompiledCircuit:
    """A circuit lowered onto an event engine.

    Attributes
    ----------
    engine:
        The engine holding all components (run it via :func:`run_circuit`).
    gate_components:
        Node name → its :class:`GateComponent`.
    probes:
        Output signal name → probe recording its spike train.
    """

    circuit: Circuit
    engine: Engine
    gate_components: Dict[str, GateComponent]
    probes: Dict[str, Probe]


def compile_circuit(
    circuit: Circuit,
    input_wires: Mapping[str, SpikeTrain],
    robust: bool = False,
    min_hits: int = 8,
    min_share: float = 0.5,
) -> CompiledCircuit:
    """Lower ``circuit`` with the given primary-input wires onto an engine.

    Internal signals are carried as spike streams: each gate component
    emits its output value's reference train (from its decision slot on),
    which downstream correlators identify — exactly the physical story.
    ``robust=True`` uses confidence-gated correlators (see
    :func:`repro.simulator.logic_components.gate_network`).
    """
    missing = set(circuit.input_bases) - set(input_wires)
    if missing:
        raise SimulationError(f"missing wires for primary inputs: {sorted(missing)}")

    grid = next(iter(input_wires.values())).grid
    engine = Engine(grid)

    # Primary-input sources, fanned out to every consumer later.
    sources: Dict[str, SpikeSource] = {}
    for name in circuit.input_bases:
        sources[name] = SpikeSource(f"in_{name}", input_wires[name])
        engine.add(sources[name])

    gate_components: Dict[str, GateComponent] = {}
    for node_name in circuit.node_names:
        node = circuit._nodes[node_name]
        component = gate_network(
            engine,
            node.gate,
            name=node_name,
            robust=robust,
            min_hits=min_hits,
            min_share=min_share,
        )
        gate_components[node_name] = component
        for position, source_signal in enumerate(node.inputs):
            correlator = component.correlator(position)
            if source_signal in sources:
                engine.connect(sources[source_signal], "out", correlator, "in")
            elif source_signal in gate_components:
                engine.connect(
                    gate_components[source_signal], "out", correlator, "in"
                )
            else:
                raise SimulationError(
                    f"node {node_name!r} consumes unknown signal "
                    f"{source_signal!r}"
                )

    probes: Dict[str, Probe] = {}
    for output in circuit.outputs:
        probe = Probe(f"probe_{output}")
        if output in gate_components:
            engine.connect(gate_components[output], "out", probe, "in")
        elif output in sources:
            engine.connect(sources[output], "out", probe, "in")
        probes[output] = probe

    return CompiledCircuit(
        circuit=circuit,
        engine=engine,
        gate_components=gate_components,
        probes=probes,
    )


def run_circuit(
    circuit: Circuit,
    input_wires: Mapping[str, SpikeTrain],
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Compile, run, and return ``(values, decision_slots)`` per node.

    Raises :class:`SimulationError` if any gate never settles (an input
    wire without a single owned spike).
    """
    compiled = compile_circuit(circuit, input_wires)
    compiled.engine.run()
    values: Dict[str, int] = {}
    slots: Dict[str, int] = {}
    for name, component in compiled.gate_components.items():
        if component.value is None or component.decision_slot is None:
            raise SimulationError(f"gate {name!r} never settled")
        values[name] = component.value
        slots[name] = component.decision_slot
    return values, slots
