"""Fault injection for chaos tests (armed via ``REPRO_FAULT``).

The production code is compiled with named **fault points** — one
:func:`maybe_fire` call at each place a process can plausibly die or a
byte stream can plausibly break (a pool worker entering shard compute,
a serving worker about to write a frame, a corpus segment about to be
read).  With nothing armed a point costs one dict lookup; the chaos
suite arms faults through the ``REPRO_FAULT`` environment variable,
which crosses ``fork``/``spawn``/subprocess boundaries for free — the
whole reason this is an env protocol and not a monkeypatch.

Spec grammar (``;``-separated specs)::

    REPRO_FAULT="point=action[:param][:n=K][:p=F][:every=N][@claimfile]"

- ``point`` — the name passed to :func:`maybe_fire` at the call site.
- ``action`` — ``kill`` (SIGKILL the calling process, the hard-crash
  everything must survive), ``delay`` (sleep ``param`` milliseconds —
  turns a fast path into a hung one), or a caller-interpreted data
  action such as ``truncate`` / ``corrupt`` (``maybe_fire`` returns
  the fault and the call site applies it to its bytes).
- ``n=K`` — fire only on the K-th hit of the point (1-based).
  ``every=N`` — fire on every N-th hit.  ``p=F`` — fire each hit with
  probability F (the bench's 1 % kill rate).  Default: every hit.
- ``@claimfile`` — exactly-once across *processes*: the fault only
  fires if atomically creating ``claimfile`` succeeds, so "kill one
  pool worker" kills one even though all of them hit the point.

Hit counters are per-process (a forked worker starts at zero), and the
parsed table is cached per ``(pid, spec)`` so workers forked after an
:func:`arm` see the new spec without any plumbing.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ConfigurationError

__all__ = [
    "ENV_VAR",
    "Fault",
    "maybe_fire",
    "arm",
    "disarm",
    "reset",
    "parse_spec",
]

ENV_VAR = "REPRO_FAULT"

#: Actions maybe_fire executes itself; anything else is returned to
#: the call site to interpret (truncate, corrupt, ...).
_SIDE_EFFECT_ACTIONS = ("kill", "delay")


@dataclass
class Fault:
    """One armed fault: where, what, and when to fire."""

    point: str
    action: str
    param: Optional[str] = None
    nth: Optional[int] = None
    every: Optional[int] = None
    probability: Optional[float] = None
    claim_path: Optional[str] = None
    hits: int = field(default=0, compare=False)

    @property
    def param_int(self) -> int:
        """The parameter as an integer (0 when absent)."""
        return int(self.param) if self.param is not None else 0

    def _due(self) -> bool:
        """Account one hit; True when the schedule says fire."""
        self.hits += 1
        if self.nth is not None:
            return self.hits == self.nth
        if self.every is not None:
            return self.hits % self.every == 0
        if self.probability is not None:
            return random.random() < self.probability
        return True

    def _claim(self) -> bool:
        """Atomically claim the fire (True exactly once per claim file)."""
        if self.claim_path is None:
            return True
        try:
            fd = os.open(
                self.claim_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as handle:
            handle.write(f"{self.point} pid={os.getpid()}\n")
        return True

    def fire(self) -> "Fault":
        """Execute a side-effecting action (kill/delay); no-op otherwise."""
        if self.action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.action == "delay":
            time.sleep(self.param_int / 1000.0)
        return self


def parse_spec(spec: str) -> List[Fault]:
    """Parse one ``REPRO_FAULT`` value into its faults.

    Raises :class:`~repro.errors.ConfigurationError` on a malformed
    spec — a chaos run with a typo'd fault must fail loudly, not run
    fault-free and "pass".
    """
    faults: List[Fault] = []
    for part in spec.split(";"):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ConfigurationError(
                f"fault spec {part!r} has no '=' (expected point=action)"
            )
        point, _, rest = part.partition("=")
        claim_path = None
        if "@" in rest:
            rest, _, claim_path = rest.rpartition("@")
        fields = rest.split(":")
        action = fields[0].strip()
        if not point.strip() or not action:
            raise ConfigurationError(
                f"fault spec {part!r} needs a point and an action"
            )
        fault = Fault(
            point=point.strip(), action=action, claim_path=claim_path
        )
        for token in fields[1:]:
            token = token.strip()
            try:
                if token.startswith("n="):
                    fault.nth = int(token[2:])
                elif token.startswith("every="):
                    fault.every = int(token[6:])
                elif token.startswith("p="):
                    fault.probability = float(token[2:])
                elif fault.param is None:
                    fault.param = token
                else:
                    raise ValueError(token)
            except ValueError:
                raise ConfigurationError(
                    f"bad fault modifier {token!r} in {part!r}"
                ) from None
        if fault.probability is not None and not (
            0.0 <= fault.probability <= 1.0
        ):
            raise ConfigurationError(
                f"fault probability {fault.probability} outside [0, 1]"
            )
        faults.append(fault)
    return faults


# Parsed table cache, keyed per (pid, spec) so forked workers re-parse
# with fresh hit counters and arm()/disarm() invalidate instantly.
_cache_key: Optional[tuple] = None
_cache_table: Dict[str, List[Fault]] = {}


def _table() -> Dict[str, List[Fault]]:
    global _cache_key, _cache_table
    spec = os.environ.get(ENV_VAR, "")
    key = (os.getpid(), spec)
    if key != _cache_key:
        table: Dict[str, List[Fault]] = {}
        for fault in parse_spec(spec):
            table.setdefault(fault.point, []).append(fault)
        _cache_key, _cache_table = key, table
    return _cache_table


def maybe_fire(point: str) -> Optional[Fault]:
    """Fire any armed fault at ``point``; the production-code hook.

    Side-effecting actions (``kill``, ``delay``) execute here; data
    actions are returned for the call site to apply (``truncate``,
    ``corrupt``).  Returns the fault that fired, or None.  With no
    spec armed this is one dict lookup.
    """
    faults = _table().get(point)
    if not faults:
        return None
    for fault in faults:
        if fault._due() and fault._claim():
            return fault.fire()
    return None


def arm(spec: str) -> None:
    """Arm ``spec`` for this process and everything forked after it."""
    parse_spec(spec)  # validate before exporting a broken spec
    os.environ[ENV_VAR] = spec


def disarm() -> None:
    """Remove every armed fault."""
    os.environ.pop(ENV_VAR, None)


def reset() -> None:
    """Zero hit counters (keeps the armed spec)."""
    global _cache_key
    _cache_key = None
