"""Test-support machinery shipped with the library.

:mod:`repro.testing.faults` is the fault-injection harness: named
fault points compiled into the pipeline and serving tiers, armed via
the ``REPRO_FAULT`` environment variable (which crosses fork and
spawn boundaries for free).  Production code pays one dict lookup per
point when no fault is armed.

:mod:`repro.testing.differential` is the correctness twin: a
deliberately naive single-gate reference evaluator for logic-network
batches plus a generic equivalence runner, so fast paths are always
checked against a slow implementation that is obviously right.
"""

from . import differential, faults

__all__ = ["differential", "faults"]
