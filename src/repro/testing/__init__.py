"""Test-support machinery shipped with the library.

:mod:`repro.testing.faults` is the fault-injection harness: named
fault points compiled into the pipeline and serving tiers, armed via
the ``REPRO_FAULT`` environment variable (which crosses fork and
spawn boundaries for free).  Production code pays one dict lookup per
point when no fault is armed.
"""

from . import faults

__all__ = ["faults"]
