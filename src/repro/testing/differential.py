"""Differential testing: cross-check fast paths against trusted slow ones.

The batched packed evaluators exist to be *fast*; their correctness
contract is that they are **bit-identical** to the obvious slow
implementation.  This module holds that contract's two halves:

* a **reference single-gate evaluator** for
  :class:`~repro.logic.netbatch.LogicNetBatch` built on the
  :mod:`repro.logic.gates` primitives — every gate id materialises a
  real :class:`~repro.logic.gates.TruthTableGate` via
  :func:`~repro.logic.gates.gate_from_function`, and evaluation walks
  the networks one gate at a time reading that gate's truth table
  (:func:`reference_evaluate`).  Nothing is vectorised across gates,
  nothing is packed: the slow path is the specification;
* a generic **equivalence runner**, :func:`assert_equivalent`, that
  feeds the same cases to a reference and a fast callable and demands
  exact equality, reporting the first diverging case in full.

The property suites (``tests/logic/test_netbatch_properties.py``)
drive random networks through both halves on both popcount paths; the
benchmarks reuse :func:`reference_evaluate` as the per-gate baseline
the batched kernels are gated against.
"""

from __future__ import annotations

import functools
from typing import Callable, Iterable

import numpy as np

from ..hyperspace.basis import HyperspaceBasis
from ..logic.gates import TruthTableGate, gate_from_function
from ..logic.netbatch import LogicNetBatch
from ..spikes.train import SpikeTrain
from ..units import SimulationGrid

__all__ = [
    "GATE_FUNCTIONS",
    "reference_gate",
    "reference_evaluate",
    "assert_equivalent",
]

#: id -> (name, Boolean function) for the 16 two-input truth tables, in
#: the enumeration :func:`~repro.backend.packed.gate_table_words`
#: implements: bit ``3 - (2a + b)`` of the id is the output at (a, b).
GATE_FUNCTIONS = (
    ("false", lambda a, b: False),
    ("and", lambda a, b: a and b),
    ("a_and_not_b", lambda a, b: a and not b),
    ("a", lambda a, b: a),
    ("not_a_and_b", lambda a, b: not a and b),
    ("b", lambda a, b: b),
    ("xor", lambda a, b: a != b),
    ("or", lambda a, b: a or b),
    ("nor", lambda a, b: not (a or b)),
    ("xnor", lambda a, b: a == b),
    ("not_b", lambda a, b: not b),
    ("b_implies_a", lambda a, b: a or not b),
    ("not_a", lambda a, b: not a),
    ("a_implies_b", lambda a, b: not a or b),
    ("nand", lambda a, b: not (a and b)),
    ("true", lambda a, b: True),
)


@functools.lru_cache(maxsize=1)
def _binary_basis() -> HyperspaceBasis:
    """The smallest valid binary hyperspace, built once.

    The reference gates are used symbolically (``table`` lookups), but
    they are *real* :class:`TruthTableGate` objects, so they need a
    real 2-element basis to exist in.
    """
    grid = SimulationGrid(n_samples=64, dt=1e-12)
    return HyperspaceBasis(
        [SpikeTrain(range(k, 64, 8), grid) for k in range(2)]
    )


@functools.lru_cache(maxsize=16)
def reference_gate(op_id: int) -> TruthTableGate:
    """The symbolic gate for one op id (a real tabulated gate object)."""
    name, function = GATE_FUNCTIONS[int(op_id)]
    basis = _binary_basis()
    return gate_from_function(name, (basis, basis), basis, function)


@functools.lru_cache(maxsize=16)
def _gate_lut(op_id: int) -> np.ndarray:
    """Output column of one gate's truth table, indexed by ``2a + b``.

    Read off the :class:`TruthTableGate`'s own table — the packed
    kernel's bit tricks are *not* consulted — so the reference path is
    grounded in the same primitive the hand-built circuits trust.
    """
    gate = reference_gate(int(op_id))
    return np.array(
        [gate.table[(0, 0)], gate.table[(0, 1)],
         gate.table[(1, 0)], gate.table[(1, 1)]],
        dtype=bool,
    )


def reference_evaluate(
    nets: LogicNetBatch, inputs: np.ndarray
) -> np.ndarray:
    """Final-layer outputs of ``nets`` as a dense ``(N, G, T)`` boolean.

    The specification evaluator: one network at a time, one layer at a
    time, **one gate at a time**, each gate applying its
    :class:`TruthTableGate` table to its two fan-in lines.  ``inputs``
    is the dense ``(n_inputs, T)`` boolean form of the shared input
    lines.  Deliberately naive — this is what the batched packed path
    must match bit for bit.
    """
    inputs = np.asarray(inputs, dtype=bool)
    if inputs.shape[0] != nets.n_inputs:
        raise ValueError(
            f"expected {nets.n_inputs} input lines, got {inputs.shape[0]}"
        )
    n_samples = inputs.shape[1]
    out = np.empty((nets.n_networks, nets.n_gates, n_samples), dtype=bool)
    for net in range(nets.n_networks):
        state = inputs
        for layer in range(nets.depth):
            next_state = np.empty((nets.n_gates, n_samples), dtype=bool)
            for gate in range(nets.n_gates):
                ia, ib = nets.wiring[net, layer, gate]
                a, b = state[ia], state[ib]
                lut = _gate_lut(nets.op_ids[net, layer, gate])
                next_state[gate] = lut[(a.astype(np.int64) << 1) | b]
            state = next_state
        out[net] = state
    return out


def assert_equivalent(
    reference: Callable,
    fast: Callable,
    cases: Iterable,
    *,
    describe: Callable = repr,
) -> int:
    """Demand ``fast(case) == reference(case)`` exactly, for every case.

    The generic differential runner: each case is passed to both
    callables (as-is, or splatted if it is a tuple) and the results
    must be exactly equal — array results element-for-element via
    :func:`numpy.testing.assert_array_equal`, anything else by ``==``.
    On divergence the raised ``AssertionError`` names the case (via
    ``describe``) so a failing random sweep is reproducible from the
    message alone.  Returns the number of cases checked.
    """
    count = 0
    for case in cases:
        arguments = case if isinstance(case, tuple) else (case,)
        expected = reference(*arguments)
        got = fast(*arguments)
        _assert_same(expected, got, describe(case))
        count += 1
    return count


def _assert_same(expected, got, label: str) -> None:
    if isinstance(expected, (tuple, list)):
        assert isinstance(got, (tuple, list)) and len(got) == len(expected), (
            f"differential mismatch on {label}: "
            f"{type(got).__name__} of length {len(got)!r} "
            f"vs expected {len(expected)}"
        )
        for index, (e, g) in enumerate(zip(expected, got)):
            _assert_same(e, g, f"{label}[{index}]")
        return
    if isinstance(expected, np.ndarray) or isinstance(got, np.ndarray):
        np.testing.assert_array_equal(
            np.asarray(got),
            np.asarray(expected),
            err_msg=f"differential mismatch on {label}",
        )
        return
    assert got == expected, (
        f"differential mismatch on {label}: {got!r} != {expected!r}"
    )
