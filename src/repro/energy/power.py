"""Scheme-level power comparison: noise-spike vs periodic-clock logic.

Section 2's dissipation argument, made quantitative:

* the **noise-spike scheme** takes its timing reference for free (the
  thermal noise of a resistor), pays only for the amplifier chain that
  lifts the noise to logic levels — each stage "has just barely enough
  supply voltage to handle that amplitude of noise" — and for the
  coincidence detectors, which switch only on spikes (activity = spike
  rate, far below the bandwidth);
* the **periodic-clock scheme** pays the clock generation/distribution
  network at full swing and full frequency, plus guard-band supply
  margin to survive the delay variations that Section 6 shows are fatal
  to periodic timing.

:class:`AmplifierChain` models the staged amplification;
:func:`compare_schemes` produces the energy-per-operation table the C5
benchmark prints.  The model is first-order by design; its purpose is to
reproduce the *ordering and rough factors* of the paper's argument.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..errors import ConfigurationError
from .thermal import (
    ROOM_TEMPERATURE,
    johnson_noise_rms,
    landauer_limit,
    margin_for_error,
    switching_energy,
)

__all__ = [
    "AmplifierChain",
    "SchemeEnergy",
    "compare_schemes",
    "noise_scheme_energy",
    "clocked_scheme_energy",
]


@dataclass(frozen=True)
class AmplifierChain:
    """A chain of amplifier stages lifting thermal noise to logic level.

    Stage i amplifies the noise amplitude by ``gain`` and runs from a
    supply just covering its output amplitude (``headroom`` × the stage's
    output rms).  The dominant dissipation of stage i is switching its
    load at its own supply, so the chain's energy per processed spike is
    the sum of ``C · V_i²`` over stages.

    Parameters
    ----------
    input_rms:
        RMS of the raw noise at the chain input (V), e.g. from
        :func:`~repro.energy.thermal.johnson_noise_rms`.
    target_rms:
        Required noise amplitude at the chain output (V) — the logic
        swing the comparators need.
    gain:
        Per-stage voltage gain (> 1).
    headroom:
        Supply-to-rms ratio per stage (> 1; Gaussian noise needs several
        σ of headroom to avoid clipping).
    stage_capacitance:
        Load capacitance per stage (F).
    """

    input_rms: float
    target_rms: float
    gain: float = 10.0
    headroom: float = 4.0
    stage_capacitance: float = 1e-15

    def __post_init__(self) -> None:
        if self.input_rms <= 0 or self.target_rms <= 0:
            raise ConfigurationError("input_rms and target_rms must be positive")
        if self.target_rms < self.input_rms:
            raise ConfigurationError(
                "target_rms below input_rms: no amplification needed"
            )
        if self.gain <= 1.0:
            raise ConfigurationError(f"gain must exceed 1, got {self.gain}")
        if self.headroom <= 1.0:
            raise ConfigurationError(f"headroom must exceed 1, got {self.headroom}")
        if self.stage_capacitance <= 0:
            raise ConfigurationError("stage_capacitance must be positive")

    @property
    def n_stages(self) -> int:
        """Number of stages needed to reach the target amplitude."""
        ratio = self.target_rms / self.input_rms
        return max(1, math.ceil(math.log(ratio) / math.log(self.gain)))

    def stage_supplies(self) -> List[float]:
        """Supply voltage of each stage (V), smallest first."""
        supplies = []
        amplitude = self.input_rms
        for _stage in range(self.n_stages):
            amplitude = min(amplitude * self.gain, self.target_rms)
            supplies.append(self.headroom * amplitude)
        return supplies

    def energy_per_event(self) -> float:
        """Energy to propagate one spike through the chain (J)."""
        return sum(
            switching_energy(self.stage_capacitance, v) for v in self.stage_supplies()
        )


@dataclass(frozen=True)
class SchemeEnergy:
    """Energy ledger of one scheme at one operating point.

    Attributes
    ----------
    name:
        Scheme label.
    timing_energy_per_op:
        Energy spent on the timing reference per gate operation (J).
    logic_energy_per_op:
        Energy spent in the logic/detection path per operation (J).
    """

    name: str
    timing_energy_per_op: float
    logic_energy_per_op: float

    @property
    def total_per_op(self) -> float:
        """Total energy per gate operation (J)."""
        return self.timing_energy_per_op + self.logic_energy_per_op

    def landauer_multiple(self, temperature: float = ROOM_TEMPERATURE) -> float:
        """Total energy as a multiple of kT·ln2."""
        return self.total_per_op / landauer_limit(temperature)


def noise_scheme_energy(
    error_target: float = 1e-12,
    gate_capacitance: float = 1e-15,
    noise_rms_voltage: float = 1e-3,
    spikes_per_operation: float = 1.0,
    chain: Optional[AmplifierChain] = None,
) -> SchemeEnergy:
    """Energy per gate operation for the noise-spike scheme.

    Timing is free (thermal-noise clock); the per-operation cost is the
    amplifier chain (amortised per spike) plus the coincidence detector
    switching at a supply of ``margin × noise_rms``.  Only
    ``spikes_per_operation`` spikes are processed per logic operation —
    the first coincidence decides.
    """
    if spikes_per_operation <= 0:
        raise ConfigurationError("spikes_per_operation must be positive")
    margin = margin_for_error(error_target)
    supply = margin * noise_rms_voltage
    detector = switching_energy(gate_capacitance, supply) * spikes_per_operation
    if chain is None:
        chain = AmplifierChain(
            input_rms=noise_rms_voltage / 100.0,
            target_rms=noise_rms_voltage,
            stage_capacitance=gate_capacitance,
        )
    amplifier = chain.energy_per_event() * spikes_per_operation
    return SchemeEnergy(
        name="noise-spike",
        timing_energy_per_op=0.0,
        logic_energy_per_op=detector + amplifier,
    )


def clocked_scheme_energy(
    error_target: float = 1e-12,
    gate_capacitance: float = 1e-15,
    noise_rms_voltage: float = 1e-3,
    clock_fanout: float = 10.0,
    variation_guard_band: float = 2.0,
    cycles_per_operation: float = 1.0,
) -> SchemeEnergy:
    """Energy per gate operation for a periodic-clock scheme.

    The clock network toggles ``clock_fanout`` × the gate capacitance
    every cycle at full swing; the supply carries an extra
    ``variation_guard_band`` factor because periodic timing must absorb
    delay variations with margin (Section 6: it cannot tolerate them
    logically).  Logic switches once per cycle at the same guarded
    supply.
    """
    if clock_fanout <= 0:
        raise ConfigurationError("clock_fanout must be positive")
    if variation_guard_band < 1.0:
        raise ConfigurationError("variation_guard_band must be >= 1")
    if cycles_per_operation <= 0:
        raise ConfigurationError("cycles_per_operation must be positive")
    margin = margin_for_error(error_target)
    supply = margin * noise_rms_voltage * variation_guard_band
    clock = (
        switching_energy(gate_capacitance * clock_fanout, supply)
        * cycles_per_operation
    )
    logic = switching_energy(gate_capacitance, supply) * cycles_per_operation
    return SchemeEnergy(
        name="periodic-clock",
        timing_energy_per_op=clock,
        logic_energy_per_op=logic,
    )


def compare_schemes(
    error_target: float = 1e-12,
    gate_capacitance: float = 1e-15,
    noise_rms_voltage: float = 1e-3,
) -> List[SchemeEnergy]:
    """The two schemes side by side at a common operating point."""
    return [
        noise_scheme_energy(
            error_target=error_target,
            gate_capacitance=gate_capacitance,
            noise_rms_voltage=noise_rms_voltage,
        ),
        clocked_scheme_energy(
            error_target=error_target,
            gate_capacitance=gate_capacitance,
            noise_rms_voltage=noise_rms_voltage,
        ),
    ]
