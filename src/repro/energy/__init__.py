"""Energy models for the low-power argument (Sections 1–2, ref [4]).

* physical layer: :func:`landauer_limit`, :func:`johnson_noise_rms`,
  :func:`error_probability`, :func:`margin_for_error`,
  :func:`switching_energy`, :func:`thermal_voltage`;
* scheme layer: :class:`AmplifierChain`, :func:`noise_scheme_energy`,
  :func:`clocked_scheme_energy`, :func:`compare_schemes`.
"""

from .power import (
    AmplifierChain,
    SchemeEnergy,
    clocked_scheme_energy,
    compare_schemes,
    noise_scheme_energy,
)
from .thermal import (
    BOLTZMANN,
    ROOM_TEMPERATURE,
    error_probability,
    johnson_noise_rms,
    landauer_limit,
    margin_for_error,
    switching_energy,
    thermal_voltage,
)

__all__ = [
    "BOLTZMANN",
    "ROOM_TEMPERATURE",
    "landauer_limit",
    "johnson_noise_rms",
    "error_probability",
    "margin_for_error",
    "switching_energy",
    "thermal_voltage",
    "AmplifierChain",
    "SchemeEnergy",
    "noise_scheme_energy",
    "clocked_scheme_energy",
    "compare_schemes",
]
