"""Thermal-noise energetics: bounds and device-level noise figures.

The paper's low-power argument (Sections 1–2) rests on the
thermal-noise-driven computing analysis of its reference [4]: the "noise
clock" costs nothing because it *is* the thermal noise of a resistor in
a dispersion-free line, while a periodic clock must be generated and
distributed at full swing.  This module provides the physical quantities
that analysis is built from:

* :func:`landauer_limit` — kT·ln2, the floor for erasing one bit;
* :func:`johnson_noise_rms` — the open-circuit thermal noise of a
  resistor over a bandwidth, the free signal source;
* :func:`error_probability` / :func:`margin_for_error` — the Gaussian
  threshold-crossing error rate for a given supply margin, connecting
  supply voltage to logic reliability;
* :func:`switching_energy` — CV² dynamic energy of charging a node.

All quantities are SI.  The models are deliberately first-order — the
paper argues orders of magnitude, not percent.
"""

from __future__ import annotations

import math

from scipy.special import erfc, erfcinv

from ..errors import ConfigurationError

__all__ = [
    "BOLTZMANN",
    "ROOM_TEMPERATURE",
    "landauer_limit",
    "johnson_noise_rms",
    "error_probability",
    "margin_for_error",
    "switching_energy",
    "thermal_voltage",
]

#: Boltzmann constant, J/K.
BOLTZMANN = 1.380649e-23

#: Convention for "room temperature", K.
ROOM_TEMPERATURE = 300.0


def landauer_limit(temperature: float = ROOM_TEMPERATURE) -> float:
    """kT·ln2 — the minimum energy to erase one bit (J)."""
    if temperature <= 0:
        raise ConfigurationError(f"temperature must be positive, got {temperature}")
    return BOLTZMANN * temperature * math.log(2.0)


def thermal_voltage(temperature: float = ROOM_TEMPERATURE) -> float:
    """kT/q — the thermal voltage (V), the sub-threshold design scale."""
    if temperature <= 0:
        raise ConfigurationError(f"temperature must be positive, got {temperature}")
    elementary_charge = 1.602176634e-19
    return BOLTZMANN * temperature / elementary_charge


def johnson_noise_rms(
    resistance: float,
    bandwidth: float,
    temperature: float = ROOM_TEMPERATURE,
) -> float:
    """RMS open-circuit Johnson noise voltage ``sqrt(4kTRB)`` (V).

    This is the free, dissipation-less "clock" signal of the
    noise-driven scheme: observing it costs nothing until it is
    amplified.
    """
    if resistance <= 0:
        raise ConfigurationError(f"resistance must be positive, got {resistance}")
    if bandwidth <= 0:
        raise ConfigurationError(f"bandwidth must be positive, got {bandwidth}")
    if temperature <= 0:
        raise ConfigurationError(f"temperature must be positive, got {temperature}")
    return math.sqrt(4.0 * BOLTZMANN * temperature * resistance * bandwidth)


def error_probability(margin: float) -> float:
    """Gaussian threshold-crossing error for a supply margin in noise-σ.

    A logic level separated from the decision threshold by ``margin``
    standard deviations of the superimposed Gaussian noise is misread
    with probability ``0.5 · erfc(margin / sqrt(2))``.
    """
    if margin < 0:
        raise ConfigurationError(f"margin must be non-negative, got {margin}")
    return 0.5 * float(erfc(margin / math.sqrt(2.0)))


def margin_for_error(probability: float) -> float:
    """Inverse of :func:`error_probability`: required margin in noise-σ."""
    if not (0.0 < probability < 0.5):
        raise ConfigurationError(
            f"probability must lie in (0, 0.5), got {probability}"
        )
    return math.sqrt(2.0) * float(erfcinv(2.0 * probability))


def switching_energy(capacitance: float, voltage: float) -> float:
    """Dynamic energy to charge a node: ``C·V²`` per full cycle (J).

    (½CV² is drawn per edge; the full cycle dissipates CV² in the
    switching network.)
    """
    if capacitance <= 0:
        raise ConfigurationError(f"capacitance must be positive, got {capacitance}")
    if voltage < 0:
        raise ConfigurationError(f"voltage must be non-negative, got {voltage}")
    return capacitance * voltage * voltage
