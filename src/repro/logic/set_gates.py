"""Set-valued gates: evaluating a function on superposed inputs.

The hyperspace's headline feature (abstract, ref [2]) is carrying "the
superposition of 2^N states in a single wire".  The computational
pay-off is *parallel evaluation*: feeding a gate superposition wires
computes the function's **image** over every combination of the input
member sets in one pass — the deterministic analogue of quantum
parallelism (without interference: the output is the set of reachable
values, not an amplitude distribution).

:class:`SetValuedGate` wraps any :class:`~repro.logic.gates.TruthTableGate`:

* symbolically, it maps member sets to the image set;
* physically, it decodes each input wire, evaluates the underlying
  truth table over the member product, and emits the union of the
  output values' reference trains — a superposition wire again, so
  set-valued gates compose.

The inverse problem ("which inputs produce output y?") is
:meth:`SetValuedGate.preimage` — the building block of the search-style
applications.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from ..errors import LogicError
from ..hyperspace.superposition import decode_superposition
from ..spikes.train import SpikeTrain
from .gates import TruthTableGate

__all__ = ["SetTransmission", "SetValuedGate"]


@dataclass(frozen=True)
class SetTransmission:
    """Result of a physical set-valued evaluation.

    Attributes
    ----------
    members:
        The image set (output superposition value).
    output:
        The output wire (union of the image's reference trains).
    combinations_evaluated:
        Size of the input member-set product.
    """

    members: FrozenSet[int]
    output: SpikeTrain
    combinations_evaluated: int


class SetValuedGate:
    """Lift a truth-table gate to set-valued (superposition) operation."""

    def __init__(self, gate: TruthTableGate) -> None:
        self.gate = gate

    @property
    def arity(self) -> int:
        """Number of inputs of the underlying gate."""
        return self.gate.arity

    # ------------------------------------------------------------------
    # Symbolic level
    # ------------------------------------------------------------------

    def image(self, *input_sets: FrozenSet[int]) -> FrozenSet[int]:
        """The set of outputs reachable from the input member sets.

        Empty input sets propagate: the image of nothing is nothing
        (a silent wire stays silent through a gate).
        """
        if len(input_sets) != self.arity:
            raise LogicError(
                f"gate {self.gate.name!r} takes {self.arity} inputs, "
                f"got {len(input_sets)}"
            )
        sets = [frozenset(s) for s in input_sets]
        for position, members in enumerate(sets):
            size = self.gate.input_bases[position].size
            for member in members:
                if not (0 <= member < size):
                    raise LogicError(
                        f"input {position} member {member} outside [0, {size})"
                    )
        if any(not members for members in sets):
            return frozenset()
        return frozenset(
            self.gate.evaluate(*combo) for combo in itertools.product(*sets)
        )

    def preimage(self, output_value: int) -> FrozenSet[Tuple[int, ...]]:
        """All input combinations mapping to ``output_value``."""
        if not (0 <= output_value < self.gate.output_basis.size):
            raise LogicError(
                f"output value {output_value} outside "
                f"[0, {self.gate.output_basis.size})"
            )
        return frozenset(
            combo
            for combo, value in self.gate.table.items()
            if value == output_value
        )

    # ------------------------------------------------------------------
    # Physical level
    # ------------------------------------------------------------------

    def transmit(self, *wires: SpikeTrain) -> SetTransmission:
        """Evaluate on superposition wires; returns a superposition wire."""
        if len(wires) != self.arity:
            raise LogicError(
                f"gate {self.gate.name!r} takes {self.arity} wires, "
                f"got {len(wires)}"
            )
        member_sets: List[FrozenSet[int]] = []
        for position, wire in enumerate(wires):
            basis = self.gate.input_bases[position]
            member_sets.append(
                decode_superposition(basis, wire, strict=True).members
            )
        image = self.image(*member_sets)
        combinations = 1
        for members in member_sets:
            combinations *= max(1, len(members))
        output = self.gate.output_basis.encode_set(sorted(image))
        return SetTransmission(
            members=image,
            output=output,
            combinations_evaluated=(
                combinations if all(member_sets) else 0
            ),
        )
