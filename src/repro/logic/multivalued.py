"""Multi-valued logic families over an M-element hyperspace.

"The logic approach described in this paper makes it easy to implement
multi-valued logic functions, something that traditional digital VLSI
design simply cannot achieve in practice" (Section 1).  This module
provides the standard multi-valued logic (MVL) operator families over a
radix-M alphabet carried by an M-element hyperspace basis:

* Post algebra: :func:`min_gate` (MVL AND), :func:`max_gate` (MVL OR),
  :func:`negation_gate` (value reflection ``M−1−v``);
* modular arithmetic: :func:`mod_sum_gate`, :func:`mod_product_gate`;
* :func:`literal_gate` (window literal, the MVL analogue of a decoded
  minterm) and :func:`successor_gate` (cyclic increment);
* :class:`MultiValuedAlphabet` — bidirectional mapping between semantic
  symbols and basis elements.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence, Tuple

from ..errors import LogicError
from ..hyperspace.basis import HyperspaceBasis
from .gates import TruthTableGate, gate_from_function

__all__ = [
    "MultiValuedAlphabet",
    "min_gate",
    "max_gate",
    "negation_gate",
    "mod_sum_gate",
    "mod_product_gate",
    "successor_gate",
    "literal_gate",
]


class MultiValuedAlphabet:
    """Maps semantic symbols (digits, names) onto basis elements.

    The basis element index is the *physical* value; the alphabet gives
    it meaning.  The default alphabet is the radix-M digit set 0..M−1
    mapped onto elements in order.
    """

    def __init__(
        self,
        basis: HyperspaceBasis,
        symbols: Optional[Sequence[Hashable]] = None,
    ) -> None:
        if symbols is None:
            symbols = list(range(basis.size))
        if len(symbols) != basis.size:
            raise LogicError(
                f"{len(symbols)} symbols for a basis of size {basis.size}"
            )
        if len(set(symbols)) != len(symbols):
            raise LogicError(f"duplicate symbols: {symbols}")
        self.basis = basis
        self._symbols: Tuple[Hashable, ...] = tuple(symbols)
        self._to_element: Dict[Hashable, int] = {
            s: i for i, s in enumerate(self._symbols)
        }

    @property
    def radix(self) -> int:
        """Alphabet size (the basis size M)."""
        return self.basis.size

    @property
    def symbols(self) -> Tuple[Hashable, ...]:
        """Symbols in element order."""
        return self._symbols

    def element_of(self, symbol: Hashable) -> int:
        """Basis element carrying ``symbol``."""
        try:
            return self._to_element[symbol]
        except KeyError:
            raise LogicError(
                f"symbol {symbol!r} not in alphabet {self._symbols}"
            ) from None

    def symbol_of(self, element: int) -> Hashable:
        """Symbol carried by basis element ``element``."""
        if not (0 <= element < self.radix):
            raise LogicError(f"element {element} outside [0, {self.radix})")
        return self._symbols[element]

    def encode(self, symbol: Hashable):
        """Wire signal (reference train) for ``symbol``."""
        return self.basis.encode(self.element_of(symbol))


def _common_radix(name: str, *bases: HyperspaceBasis) -> int:
    radix = bases[0].size
    for b in bases[1:]:
        if b.size != radix:
            raise LogicError(
                f"gate {name!r}: mixed alphabet sizes "
                f"{[basis.size for basis in bases]}"
            )
    return radix


def min_gate(basis_a: HyperspaceBasis, basis_b: Optional[HyperspaceBasis] = None,
             output_basis: Optional[HyperspaceBasis] = None) -> TruthTableGate:
    """Post-algebra MIN — the multi-valued generalisation of AND."""
    basis_b = basis_b if basis_b is not None else basis_a
    output_basis = output_basis if output_basis is not None else basis_a
    _common_radix("MIN", basis_a, basis_b, output_basis)
    return gate_from_function("MIN", [basis_a, basis_b], output_basis, min)


def max_gate(basis_a: HyperspaceBasis, basis_b: Optional[HyperspaceBasis] = None,
             output_basis: Optional[HyperspaceBasis] = None) -> TruthTableGate:
    """Post-algebra MAX — the multi-valued generalisation of OR."""
    basis_b = basis_b if basis_b is not None else basis_a
    output_basis = output_basis if output_basis is not None else basis_a
    _common_radix("MAX", basis_a, basis_b, output_basis)
    return gate_from_function("MAX", [basis_a, basis_b], output_basis, max)


def negation_gate(basis: HyperspaceBasis,
                  output_basis: Optional[HyperspaceBasis] = None) -> TruthTableGate:
    """Value reflection ``v → M−1−v`` — the multi-valued complement."""
    output_basis = output_basis if output_basis is not None else basis
    radix = _common_radix("NEG", basis, output_basis)
    return gate_from_function("NEG", [basis], output_basis,
                              lambda v: radix - 1 - v)


def mod_sum_gate(basis_a: HyperspaceBasis, basis_b: Optional[HyperspaceBasis] = None,
                 output_basis: Optional[HyperspaceBasis] = None) -> TruthTableGate:
    """Modular addition ``(a + b) mod M`` — the radix-M sum digit."""
    basis_b = basis_b if basis_b is not None else basis_a
    output_basis = output_basis if output_basis is not None else basis_a
    radix = _common_radix("MODSUM", basis_a, basis_b, output_basis)
    return gate_from_function("MODSUM", [basis_a, basis_b], output_basis,
                              lambda a, b: (a + b) % radix)


def mod_product_gate(basis_a: HyperspaceBasis,
                     basis_b: Optional[HyperspaceBasis] = None,
                     output_basis: Optional[HyperspaceBasis] = None) -> TruthTableGate:
    """Modular multiplication ``(a · b) mod M``."""
    basis_b = basis_b if basis_b is not None else basis_a
    output_basis = output_basis if output_basis is not None else basis_a
    radix = _common_radix("MODPROD", basis_a, basis_b, output_basis)
    return gate_from_function("MODPROD", [basis_a, basis_b], output_basis,
                              lambda a, b: (a * b) % radix)


def successor_gate(basis: HyperspaceBasis,
                   output_basis: Optional[HyperspaceBasis] = None) -> TruthTableGate:
    """Cyclic increment ``v → (v + 1) mod M``."""
    output_basis = output_basis if output_basis is not None else basis
    radix = _common_radix("SUCC", basis, output_basis)
    return gate_from_function("SUCC", [basis], output_basis,
                              lambda v: (v + 1) % radix)


def literal_gate(basis: HyperspaceBasis, low: int, high: int,
                 output_basis: Optional[HyperspaceBasis] = None) -> TruthTableGate:
    """Window literal: outputs M−1 (TRUE) when ``low <= v <= high``, else 0.

    The MVL building block for sum-of-products synthesis; with
    ``low == high`` it is a decoded minterm for one value.
    """
    output_basis = output_basis if output_basis is not None else basis
    radix = _common_radix("LITERAL", basis, output_basis)
    if not (0 <= low <= high < radix):
        raise LogicError(
            f"literal window [{low}, {high}] invalid for radix {radix}"
        )
    return gate_from_function(
        f"LIT[{low},{high}]", [basis], output_basis,
        lambda v: (radix - 1) if low <= v <= high else 0,
    )
