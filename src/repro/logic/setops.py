"""Elementary set operations on superposition wires.

Section 5: "elementary set operations (membership tests, set union or
intersection) can be done extremely fast even though the hyperspace is
extremely large".  A superposition wire carries the union of its member
elements' reference trains; because the basis is orthogonal, each of the
following operations has a direct physical realisation:

* **union** — merge the two wires' spikes (a passive OR of pulses);
* **intersection** — pass a wire's spike iff the slot's owner also
  appears on the other wire (a coincidence-gated pass);
* **difference / complement** — the same with the pass condition
  inverted;
* **membership** — coincidence between the wire and one reference train.

Every operation is provided both *physically* (train in, train out) and
*symbolically* (decode → set algebra → encode); tests assert the two
levels agree, which is the correctness argument of the physical circuit.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

import numpy as np

from ..hyperspace.basis import HyperspaceBasis
from ..hyperspace.superposition import Superposition, decode_superposition
from ..spikes.train import SpikeTrain

__all__ = [
    "wire_union",
    "wire_intersection",
    "wire_difference",
    "wire_complement",
    "wire_membership",
    "symbolic_union",
    "symbolic_intersection",
    "symbolic_difference",
]


def _member_elements(basis: HyperspaceBasis, wire: SpikeTrain) -> FrozenSet[int]:
    """The element set carried by a wire (foreign spikes rejected)."""
    return decode_superposition(basis, wire, strict=True).members


def wire_union(basis: HyperspaceBasis, a: SpikeTrain, b: SpikeTrain) -> SpikeTrain:
    """Physical set union: merge the spike trains.

    The result carries exactly the union of the two member sets; no
    decoding is involved, which is why union is the cheapest operation.
    """
    return a.union(b)


def wire_intersection(
    basis: HyperspaceBasis, a: SpikeTrain, b: SpikeTrain
) -> SpikeTrain:
    """Physical set intersection of two superposition wires.

    A spike of ``a`` passes iff its slot's owning element is also present
    on ``b``.  Note this is *not* the slot-wise train intersection: two
    wires carrying the same member emit that member's full reference
    train, not just the slots both happen to contain (both contain all of
    them here, but the distinction matters once wires are windowed).
    """
    members = _member_elements(basis, a) & _member_elements(basis, b)
    return basis.encode_set(sorted(members))


def wire_difference(
    basis: HyperspaceBasis, a: SpikeTrain, b: SpikeTrain
) -> SpikeTrain:
    """Physical set difference ``a \\ b`` on superposition wires."""
    members = _member_elements(basis, a) - _member_elements(basis, b)
    return basis.encode_set(sorted(members))


def wire_complement(basis: HyperspaceBasis, a: SpikeTrain) -> SpikeTrain:
    """Physical set complement of a superposition wire within its basis."""
    members = frozenset(range(basis.size)) - _member_elements(basis, a)
    return basis.encode_set(sorted(members))


def wire_membership(
    basis: HyperspaceBasis,
    wire: SpikeTrain,
    element,
    until_slot: Optional[int] = None,
) -> bool:
    """Membership test by coincidence with one reference train.

    With ``until_slot`` the test models a finite observation window: the
    element counts as present only if a coincidence occurs before the
    deadline.  The false-negative probability decays exponentially with
    the window length (measured by the detection benchmarks).
    """
    index = basis.index_of(element)
    shared = wire.intersection(basis.trains[index])
    first = shared.first_spike_index()
    if first is None:
        return False
    return until_slot is None or first < until_slot


def symbolic_union(a: Superposition, b: Superposition) -> Superposition:
    """Golden-model union of two superposition values."""
    return a | b


def symbolic_intersection(a: Superposition, b: Superposition) -> Superposition:
    """Golden-model intersection of two superposition values."""
    return a & b


def symbolic_difference(a: Superposition, b: Superposition) -> Superposition:
    """Golden-model difference of two superposition values."""
    return a - b
