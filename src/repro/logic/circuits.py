"""Combinational circuits: netlists of truth-table gates.

Section 7: "In the future, we plan to design digital circuits using this
approach" — this module is that step.  A :class:`Circuit` is a DAG whose
nodes are :class:`~repro.logic.gates.TruthTableGate` instances and whose
edges carry neuro-bit values.  Evaluation runs on two levels:

* :meth:`Circuit.evaluate` — symbolic golden model (integers);
* :meth:`Circuit.transmit` — physical: every primary input is a spike
  train, every gate identifies its inputs by coincidence and emits its
  output's reference train.  Gate decision slots accumulate along paths,
  so the returned :class:`CircuitTransmission` reports the physical
  critical-path latency in samples — the quantity the paper's speed
  claims are about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from ..errors import LogicError
from ..hyperspace.basis import HyperspaceBasis
from ..spikes.train import SpikeTrain
from .gates import GateTransmission, TruthTableGate

__all__ = ["Circuit", "CircuitTransmission", "Node"]


@dataclass(frozen=True)
class Node:
    """One gate instance in a circuit.

    ``inputs`` name either primary inputs (``"in:<name>"`` is not used;
    plain names refer to primary inputs or other node outputs — each
    name must be unique across both namespaces).
    """

    name: str
    gate: TruthTableGate
    inputs: Tuple[str, ...]


@dataclass(frozen=True)
class CircuitTransmission:
    """Physical evaluation result of a circuit.

    Attributes
    ----------
    values:
        Symbolic value of every named signal (inputs and node outputs).
    wires:
        Physical train of every named signal.
    decision_slots:
        Slot at which each node's output became valid (primary inputs
        are valid at their observation start).
    critical_path_slot:
        Largest decision slot among the circuit outputs.
    """

    values: Mapping[str, int]
    wires: Mapping[str, SpikeTrain]
    decision_slots: Mapping[str, int]
    critical_path_slot: int


class Circuit:
    """A named combinational netlist over hyperspace-typed signals.

    Parameters
    ----------
    name:
        Circuit name for diagnostics.
    input_bases:
        Mapping from primary-input name to its hyperspace.
    """

    def __init__(self, name: str, input_bases: Mapping[str, HyperspaceBasis]) -> None:
        if not input_bases:
            raise LogicError(f"circuit {name!r} needs at least one primary input")
        self.name = name
        self.input_bases: Dict[str, HyperspaceBasis] = dict(input_bases)
        self._nodes: Dict[str, Node] = {}
        self._order: List[str] = []
        self._outputs: List[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_gate(self, name: str, gate: TruthTableGate, inputs: Sequence[str]) -> str:
        """Append a gate fed by the named signals; returns the node name."""
        if name in self._nodes or name in self.input_bases:
            raise LogicError(f"signal name {name!r} already used")
        if len(inputs) != gate.arity:
            raise LogicError(
                f"node {name!r}: gate {gate.name!r} takes {gate.arity} inputs, "
                f"got {len(inputs)}"
            )
        for position, source in enumerate(inputs):
            source_basis = self._basis_of(source)
            expected = gate.input_bases[position]
            if source_basis is not expected and source_basis.size != expected.size:
                raise LogicError(
                    f"node {name!r}: input {position} ({source!r}) has alphabet "
                    f"size {source_basis.size}, gate expects {expected.size}"
                )
        self._nodes[name] = Node(name=name, gate=gate, inputs=tuple(inputs))
        self._order.append(name)
        return name

    def mark_output(self, name: str) -> None:
        """Declare a signal as a circuit output."""
        self._basis_of(name)  # validates existence
        if name not in self._outputs:
            self._outputs.append(name)

    def _basis_of(self, signal: str) -> HyperspaceBasis:
        if signal in self.input_bases:
            return self.input_bases[signal]
        if signal in self._nodes:
            return self._nodes[signal].gate.output_basis
        raise LogicError(
            f"circuit {self.name!r}: unknown signal {signal!r}"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def outputs(self) -> Tuple[str, ...]:
        """Declared output signal names."""
        return tuple(self._outputs)

    @property
    def node_names(self) -> Tuple[str, ...]:
        """Node names in topological (insertion) order."""
        return tuple(self._order)

    def n_gates(self) -> int:
        """Number of gate instances."""
        return len(self._nodes)

    def depth(self) -> int:
        """Longest input-to-output path length in gates."""
        level: Dict[str, int] = {name: 0 for name in self.input_bases}
        deepest = 0
        for name in self._order:
            node = self._nodes[name]
            level[name] = 1 + max(level[src] for src in node.inputs)
            deepest = max(deepest, level[name])
        return deepest

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Symbolic evaluation; returns the value of every signal."""
        values: Dict[str, int] = {}
        for name, basis in self.input_bases.items():
            if name not in inputs:
                raise LogicError(f"missing value for primary input {name!r}")
            value = inputs[name]
            if not (0 <= value < basis.size):
                raise LogicError(
                    f"input {name!r} value {value} outside [0, {basis.size})"
                )
            values[name] = value
        extra = set(inputs) - set(self.input_bases)
        if extra:
            raise LogicError(f"unknown primary inputs: {sorted(extra)}")
        for name in self._order:
            node = self._nodes[name]
            values[name] = node.gate.evaluate(*(values[s] for s in node.inputs))
        return values

    def transmit(
        self,
        wires: Mapping[str, SpikeTrain],
        start_slot: int = 0,
        votes: int = 1,
    ) -> CircuitTransmission:
        """Physical evaluation on spike-train primary inputs.

        Each gate identifies its inputs starting no earlier than the slot
        at which *those inputs became valid* (its predecessors' decision
        slots), modelling a self-timed spike pipeline.
        """
        missing = set(self.input_bases) - set(wires)
        if missing:
            raise LogicError(f"missing wires for primary inputs: {sorted(missing)}")

        signal_wire: Dict[str, SpikeTrain] = dict(wires)
        values: Dict[str, int] = {}
        ready: Dict[str, int] = {name: start_slot for name in self.input_bases}

        for name in self._order:
            node = self._nodes[name]
            gate_start = max(ready[source] for source in node.inputs)
            transmission: GateTransmission = node.gate.transmit(
                *(signal_wire[source] for source in node.inputs),
                start_slot=gate_start,
                votes=votes,
            )
            signal_wire[name] = transmission.output
            values[name] = transmission.value
            ready[name] = transmission.decision_slot

        for name, basis in self.input_bases.items():
            # Primary-input symbolic values are recovered for reporting.
            counts = basis.classify_train(signal_wire[name])
            owners = [k for k in counts if k >= 0]
            values[name] = owners[0] if len(owners) == 1 else -1

        outputs = self._outputs or list(self._order[-1:])
        critical = max(ready[name] for name in outputs) if outputs else start_slot
        return CircuitTransmission(
            values=values,
            wires=signal_wire,
            decision_slots=ready,
            critical_path_slot=critical,
        )
