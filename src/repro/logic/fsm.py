"""General finite-state machines over the package clock.

Extends :mod:`repro.logic.sequential` from fixed Moore machines to a
general table-driven FSM layer — the sequential counterpart of the
truth-table gate:

* :class:`FiniteStateMachine` — explicit transition/output tables
  (Mealy semantics: the emitted symbol may depend on both state and
  input), validated for totality;
* :func:`shift_register_fsm` — an M-ary shift register of given length
  (the paper's "sequential logic operations and networks" primitive);
* :func:`lfsr_fsm` — a linear-feedback shift register over GF(M),
  turning the scheme into a self-clocked pseudo-random symbol source;
* :meth:`FiniteStateMachine.run_stream` — physical execution: decode a
  wire's symbol stream, advance, re-encode the outputs in the same
  packages.

Determinism at the symbolic level plus the exactness of the symbol codec
gives deterministic sequential circuits clocked entirely by noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import LogicError
from ..spikes.train import SpikeTrain
from .sequential import SymbolStream

__all__ = ["FiniteStateMachine", "shift_register_fsm", "lfsr_fsm"]


class FiniteStateMachine:
    """A table-driven Mealy machine over finite state and symbol sets.

    Parameters
    ----------
    n_states:
        Number of states (states are 0..n_states−1).
    n_symbols:
        Input/output alphabet size (symbols are 0..n_symbols−1).
    transitions:
        ``(state, symbol) → next state``; must be total.
    outputs:
        ``(state, symbol) → emitted symbol``; must be total.  The
        emitted symbol must fit the wire alphabet when run physically.
    initial_state:
        Starting state.
    """

    def __init__(
        self,
        n_states: int,
        n_symbols: int,
        transitions: Dict[Tuple[int, int], int],
        outputs: Dict[Tuple[int, int], int],
        initial_state: int = 0,
    ) -> None:
        if n_states < 1:
            raise LogicError(f"n_states must be >= 1, got {n_states}")
        if n_symbols < 1:
            raise LogicError(f"n_symbols must be >= 1, got {n_symbols}")
        if not (0 <= initial_state < n_states):
            raise LogicError(
                f"initial_state {initial_state} outside [0, {n_states})"
            )
        for state in range(n_states):
            for symbol in range(n_symbols):
                key = (state, symbol)
                if key not in transitions:
                    raise LogicError(f"transition table misses {key}")
                if key not in outputs:
                    raise LogicError(f"output table misses {key}")
                target = transitions[key]
                if not (0 <= target < n_states):
                    raise LogicError(
                        f"transition {key} -> {target} outside [0, {n_states})"
                    )
                emitted = outputs[key]
                if not (0 <= emitted < n_symbols):
                    raise LogicError(
                        f"output {key} -> {emitted} outside [0, {n_symbols})"
                    )
        self.n_states = n_states
        self.n_symbols = n_symbols
        self.transitions = dict(transitions)
        self.outputs = dict(outputs)
        self.initial_state = initial_state

    def run(self, symbols: Sequence[Optional[int]]) -> List[Optional[int]]:
        """Symbolic execution; ``None`` ticks hold the state silently."""
        state = self.initial_state
        emitted: List[Optional[int]] = []
        for symbol in symbols:
            if symbol is None:
                emitted.append(None)
                continue
            if not (0 <= symbol < self.n_symbols):
                raise LogicError(
                    f"input symbol {symbol} outside [0, {self.n_symbols})"
                )
            emitted.append(self.outputs[(state, symbol)])
            state = self.transitions[(state, symbol)]
        return emitted

    def run_stream(self, stream: SymbolStream, wire: SpikeTrain) -> SpikeTrain:
        """Physical execution over a symbol stream's packages."""
        if self.n_symbols > stream.clock.n_wires:
            raise LogicError(
                f"machine alphabet ({self.n_symbols}) exceeds the wire "
                f"alphabet ({stream.clock.n_wires})"
            )
        emitted = self.run(stream.decode(wire))
        slots = []
        for tick, symbol in enumerate(emitted):
            if symbol is None:
                continue
            slots.append(stream.clock.slot_of(tick, symbol))
        grid = wire.grid
        return SpikeTrain(np.asarray(slots, dtype=np.int64), grid)


def shift_register_fsm(length: int, radix: int) -> FiniteStateMachine:
    """An M-ary shift register of the given length.

    The state is the register contents encoded base-M (oldest symbol in
    the highest digit); each tick shifts the input symbol in and emits
    the symbol falling out (zeros until the register fills).
    """
    if length < 1:
        raise LogicError(f"length must be >= 1, got {length}")
    if radix < 2:
        raise LogicError(f"radix must be >= 2, got {radix}")
    n_states = radix**length
    high = radix ** (length - 1)
    transitions: Dict[Tuple[int, int], int] = {}
    outputs: Dict[Tuple[int, int], int] = {}
    for state in range(n_states):
        oldest = state // high
        rest = state % high
        for symbol in range(radix):
            transitions[(state, symbol)] = rest * radix + symbol
            outputs[(state, symbol)] = oldest
    return FiniteStateMachine(
        n_states=n_states,
        n_symbols=radix,
        transitions=transitions,
        outputs=outputs,
        initial_state=0,
    )


def lfsr_fsm(taps: Sequence[int], radix: int) -> FiniteStateMachine:
    """A Fibonacci LFSR over GF(radix) with the given tap positions.

    ``taps`` index register cells (0 = the cell shifted out next); the
    feedback symbol is the sum of tapped cells modulo ``radix``.  The
    input symbol is *added* to the feedback, so driving the machine with
    zeros yields the autonomous LFSR sequence while any input perturbs
    it — a simple scrambler.
    """
    if radix < 2:
        raise LogicError(f"radix must be >= 2, got {radix}")
    if not taps:
        raise LogicError("at least one tap is required")
    length = max(taps) + 1
    for tap in taps:
        if tap < 0:
            raise LogicError(f"tap positions must be >= 0, got {tap}")
    n_states = radix**length
    transitions: Dict[Tuple[int, int], int] = {}
    outputs: Dict[Tuple[int, int], int] = {}

    def cells_of(state: int) -> List[int]:
        cells = []
        value = state
        for _position in range(length):
            cells.append(value % radix)
            value //= radix
        return cells  # cells[0] is shifted out next

    for state in range(n_states):
        cells = cells_of(state)
        feedback = sum(cells[tap] for tap in taps) % radix
        for symbol in range(radix):
            incoming = (feedback + symbol) % radix
            new_cells = cells[1:] + [incoming]
            new_state = 0
            for position, cell in enumerate(new_cells):
                new_state += cell * radix**position
            transitions[(state, symbol)] = new_state
            outputs[(state, symbol)] = cells[0]
    # Seed with all-ones so the autonomous sequence is non-trivial.
    seed = sum(1 * radix**position for position in range(length))
    return FiniteStateMachine(
        n_states=n_states,
        n_symbols=radix,
        transitions=transitions,
        outputs=outputs,
        initial_state=seed,
    )
