"""Deterministic logic gates over neuro-bit values.

Section 5: gates carry a correlator per input that identifies the input
value within the hyperspace, then "drive out an appropriate output,
possibly from a different hyperspace than the hyperspace of the inputs".

:class:`TruthTableGate` is the universal building block — any K-input
function over finite alphabets.  It operates on two levels:

* **symbolic** (:meth:`evaluate`) — integer values in, integer value out;
  this is the golden-model semantics;
* **physical** (:meth:`transmit`) — spike-train wires in, spike-train
  wire out.  Each input is identified by first coincidence against its
  hyperspace; the output is the reference train of the computed value in
  the gate's output hyperspace.  The gate's decision latency is the
  latest input identification slot, which the speed benchmarks measure.

Binary Boolean gate factories (:func:`not_gate`, :func:`and_gate`, ...)
are provided on top; multi-valued families live in
:mod:`repro.logic.multivalued`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..errors import LogicError
from ..hyperspace.basis import HyperspaceBasis
from ..spikes.train import SpikeTrain
from .correlator import CoincidenceCorrelator, IdentificationResult

__all__ = [
    "GateTransmission",
    "TruthTableGate",
    "gate_from_function",
    "not_gate",
    "and_gate",
    "or_gate",
    "xor_gate",
    "nand_gate",
    "nor_gate",
    "buffer_gate",
]


@dataclass(frozen=True)
class GateTransmission:
    """Result of a physical gate evaluation.

    Attributes
    ----------
    value:
        The symbolic output value.
    output:
        The output wire (reference train of ``value``).
    decision_slot:
        Slot at which the slowest input identification completed; the
        gate's output is valid from this point on.
    input_results:
        Per-input identification details.
    """

    value: int
    output: SpikeTrain
    decision_slot: int
    input_results: Tuple[IdentificationResult, ...]


class TruthTableGate:
    """A K-input gate defined by an explicit truth table.

    Parameters
    ----------
    name:
        Gate name for diagnostics.
    input_bases:
        One :class:`HyperspaceBasis` per input; the basis size is the
        input's alphabet size M_i.
    output_basis:
        Hyperspace the output value is emitted in (its size bounds the
        output alphabet).
    table:
        Mapping from input value tuples to output values.  Must be total
        over the input alphabet product and must only produce values
        representable in the output basis.
    """

    def __init__(
        self,
        name: str,
        input_bases: Sequence[HyperspaceBasis],
        output_basis: HyperspaceBasis,
        table: Dict[Tuple[int, ...], int],
    ) -> None:
        if not input_bases:
            raise LogicError(f"gate {name!r} needs at least one input")
        self.name = name
        self.input_bases = tuple(input_bases)
        self.output_basis = output_basis
        self._correlators = tuple(CoincidenceCorrelator(b) for b in self.input_bases)

        alphabet_sizes = tuple(b.size for b in self.input_bases)
        expected = 1
        for size in alphabet_sizes:
            expected *= size
        if len(table) != expected:
            raise LogicError(
                f"gate {name!r}: truth table has {len(table)} entries, "
                f"expected {expected} for alphabet sizes {alphabet_sizes}"
            )
        for combo in itertools.product(*(range(s) for s in alphabet_sizes)):
            if combo not in table:
                raise LogicError(f"gate {name!r}: truth table misses input {combo}")
            out = table[combo]
            if not (0 <= out < output_basis.size):
                raise LogicError(
                    f"gate {name!r}: output {out} for input {combo} is outside "
                    f"the output alphabet [0, {output_basis.size})"
                )
        self.table = dict(table)

    @property
    def arity(self) -> int:
        """Number of inputs K."""
        return len(self.input_bases)

    @property
    def input_sizes(self) -> Tuple[int, ...]:
        """Alphabet size of each input."""
        return tuple(b.size for b in self.input_bases)

    # ------------------------------------------------------------------
    # Symbolic level
    # ------------------------------------------------------------------

    def evaluate(self, *values: int) -> int:
        """Golden-model evaluation on integer values."""
        if len(values) != self.arity:
            raise LogicError(
                f"gate {self.name!r} takes {self.arity} inputs, got {len(values)}"
            )
        for i, (value, basis) in enumerate(zip(values, self.input_bases)):
            if not (0 <= value < basis.size):
                raise LogicError(
                    f"gate {self.name!r}: input {i} value {value} outside "
                    f"[0, {basis.size})"
                )
        return self.table[tuple(values)]

    # ------------------------------------------------------------------
    # Physical level
    # ------------------------------------------------------------------

    def transmit(
        self,
        *wires: SpikeTrain,
        start_slot: int = 0,
        votes: int = 1,
    ) -> GateTransmission:
        """Physical evaluation on spike-train wires.

        Each wire is identified against its input hyperspace (first
        coincidence, or ``votes``-way majority for robustness); the
        output wire is the reference train of the computed value.
        """
        if len(wires) != self.arity:
            raise LogicError(
                f"gate {self.name!r} takes {self.arity} wires, got {len(wires)}"
            )
        results = []
        for correlator, wire in zip(self._correlators, wires):
            if votes == 1:
                results.append(correlator.identify(wire, start_slot=start_slot))
            else:
                results.append(
                    correlator.identify_robust(wire, votes=votes, start_slot=start_slot)
                )
        values = tuple(r.element for r in results)
        out_value = self.table[values]
        return GateTransmission(
            value=out_value,
            output=self.output_basis.encode(out_value),
            decision_slot=max(r.decision_slot for r in results),
            input_results=tuple(results),
        )


def gate_from_function(
    name: str,
    input_bases: Sequence[HyperspaceBasis],
    output_basis: HyperspaceBasis,
    function: Callable[..., int],
) -> TruthTableGate:
    """Build a :class:`TruthTableGate` by tabulating ``function``."""
    sizes = [b.size for b in input_bases]
    table = {
        combo: int(function(*combo))
        for combo in itertools.product(*(range(s) for s in sizes))
    }
    return TruthTableGate(name, input_bases, output_basis, table)


def _require_binary(basis: HyperspaceBasis, role: str, name: str) -> None:
    if basis.size != 2:
        raise LogicError(
            f"gate {name!r}: {role} basis must have exactly 2 elements "
            f"(got {basis.size}); binary logic uses elements 0 (FALSE) and "
            "1 (TRUE) — use a buffer gate to translate from a larger "
            "hyperspace, or the multi-valued families in repro.logic.multivalued"
        )


def buffer_gate(basis: HyperspaceBasis, output_basis: Optional[HyperspaceBasis] = None):
    """Identity gate; with a distinct output basis it is a hyperspace translator."""
    out = output_basis if output_basis is not None else basis
    if out.size < basis.size:
        raise LogicError(
            f"buffer output basis ({out.size}) smaller than input ({basis.size})"
        )
    return gate_from_function("BUF", [basis], out, lambda a: a)


def not_gate(basis: HyperspaceBasis, output_basis: Optional[HyperspaceBasis] = None):
    """Boolean complement over a 2-element basis."""
    out = output_basis if output_basis is not None else basis
    _require_binary(basis, "input", "NOT")
    _require_binary(out, "output", "NOT")
    return gate_from_function("NOT", [basis], out, lambda a: 1 - a)


def _binary_pair(name, basis_a, basis_b, output_basis, function):
    bases = [basis_a, basis_b]
    for b in bases:
        _require_binary(b, "input", name)
    _require_binary(output_basis, "output", name)
    return gate_from_function(name, bases, output_basis, function)


def and_gate(basis_a, basis_b=None, output_basis=None):
    """Boolean AND over elements {0, 1} (bases may differ per input)."""
    basis_b = basis_b if basis_b is not None else basis_a
    output_basis = output_basis if output_basis is not None else basis_a
    return _binary_pair("AND", basis_a, basis_b, output_basis, lambda a, b: a & b)


def or_gate(basis_a, basis_b=None, output_basis=None):
    """Boolean OR over elements {0, 1}."""
    basis_b = basis_b if basis_b is not None else basis_a
    output_basis = output_basis if output_basis is not None else basis_a
    return _binary_pair("OR", basis_a, basis_b, output_basis, lambda a, b: a | b)


def xor_gate(basis_a, basis_b=None, output_basis=None):
    """Boolean XOR over elements {0, 1}."""
    basis_b = basis_b if basis_b is not None else basis_a
    output_basis = output_basis if output_basis is not None else basis_a
    return _binary_pair("XOR", basis_a, basis_b, output_basis, lambda a, b: a ^ b)


def nand_gate(basis_a, basis_b=None, output_basis=None):
    """Boolean NAND over elements {0, 1}."""
    basis_b = basis_b if basis_b is not None else basis_a
    output_basis = output_basis if output_basis is not None else basis_a
    return _binary_pair("NAND", basis_a, basis_b, output_basis, lambda a, b: 1 - (a & b))


def nor_gate(basis_a, basis_b=None, output_basis=None):
    """Boolean NOR over elements {0, 1}."""
    basis_b = basis_b if basis_b is not None else basis_a
    output_basis = output_basis if output_basis is not None else basis_a
    return _binary_pair("NOR", basis_a, basis_b, output_basis, lambda a, b: 1 - (a | b))
