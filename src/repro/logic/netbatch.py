"""Batched random logic networks evaluated on packed words.

:class:`LogicNetBatch` holds N same-shaped feed-forward networks of
2-input truth-table gates — per-gate 16-way op ids plus fixed random
wiring — and evaluates all of them at once, layer by layer, directly on
the packed uint64 substrate (:mod:`repro.backend.packed`).  This is the
SNIPPETS ``LogicLayer`` model lifted onto the bitset backend: where the
exemplar evaluates one network's layer as 16 masked tensor ops, here a
whole layer of G gates across N networks × T slots is one
:func:`~repro.backend.packed.gate_table_words` call — a handful of wide
word-ops plus a gather on the wiring — and the dense ``(N, G, T)``
boolean raster is never materialised.

Evaluation follows the simulator's phase structure:

* **phase 0 — input write**: the shared input lines arrive as a clean
  packed ``(n_inputs, n_words)`` array (typically a
  :class:`~repro.backend.batch.SpikeTrainBatch`'s ``packed_words()``);
* **phase 1 — wiring lookup**: each gate gathers its two fan-in rows
  (layer 0 indexes the shared inputs, deeper layers the previous
  layer's G gate outputs);
* **phase 2 — gate eval**: one ``gate_table_words`` call per layer
  evaluates every gate's truth table in parallel;
* **phase 3 — output collection**: the final layer's words are the
  network outputs, reduced to per-gate spike counts and per-network
  checksums without unpacking.

Determinism.  :meth:`LogicNetBatch.random` draws network ``i``'s tables
from ``spawn_rng(seed, i)`` — the per-key `SeedSequence` spawn streams
of :mod:`repro.noise.synthesis` — so any contiguous network range can
be rebuilt bit-identically by any process from ``(seed, shape)`` alone.
That property is what lets the ``logicnet`` experiment shard over the
network axis (serial ≡ sharded) and lets serving workers rebuild their
shard's networks from a 20-byte request instead of shipping tables.

The correctness contract for all of this is
:mod:`repro.testing.differential`: the batched path must be
bit-identical to the obvious single-gate reference evaluator built on
:mod:`repro.logic.gates`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..backend import packed
from ..backend.shared import SharedArena, SharedArraySpec, attach_array
from ..noise.synthesis import spawn_rng

__all__ = [
    "LogicNetBatch",
    "LogicNetHandle",
    "evaluate_outputs",
    "output_summary",
]


@dataclass(frozen=True)
class LogicNetHandle:
    """Picklable shared-memory locator of one exported batch.

    The gate tables live in two arena segments; the handle carries
    their specs plus the input arity.  Workers attach with
    :meth:`LogicNetBatch.from_shared` — the networks are shipped once
    through the run arena, never per shard.
    """

    op_ids: SharedArraySpec
    wiring: SharedArraySpec
    n_inputs: int


class LogicNetBatch:
    """N fixed random logic networks with identical shape.

    ``op_ids`` is ``(N, depth, G)`` uint8 in ``[0, 16)`` — per-gate
    truth-table ids in the conventional enumeration
    (:func:`~repro.backend.packed.gate_table_words`).  ``wiring`` is
    ``(N, depth, G, 2)`` int32 fan-in indices: layer 0 entries index
    the ``n_inputs`` shared input lines, deeper layers index the
    previous layer's ``G`` gate outputs.
    """

    def __init__(
        self, op_ids: np.ndarray, wiring: np.ndarray, n_inputs: int
    ) -> None:
        op_ids = np.asarray(op_ids, dtype=np.uint8)
        wiring = np.asarray(wiring, dtype=np.int32)
        if op_ids.ndim != 3:
            raise ValueError("op_ids must be (n_networks, depth, n_gates)")
        if wiring.shape != op_ids.shape + (2,):
            raise ValueError(
                f"wiring shape {wiring.shape} does not match op_ids "
                f"{op_ids.shape} + (2,)"
            )
        if int(n_inputs) < 1:
            raise ValueError("a network needs at least one input line")
        if op_ids.size and int(op_ids.max()) > 15:
            raise ValueError("op ids must be < 16")
        self.op_ids = op_ids
        self.wiring = wiring
        self.n_inputs = int(n_inputs)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def random(
        cls,
        n_networks: int,
        n_gates: int,
        depth: int,
        n_inputs: int,
        seed: int,
        *,
        net_start: int = 0,
    ) -> "LogicNetBatch":
        """Networks ``net_start .. net_start + n_networks`` of a family.

        Network ``i`` (absolute index) draws from ``spawn_rng(seed, i)``
        in one fixed order — ops, then layer-0 wiring, then deep
        wiring — so the family is a pure function of
        ``(seed, n_gates, depth, n_inputs)`` and any contiguous range
        of it rebuilds bit-identically anywhere.
        """
        if n_gates < 1 or depth < 1:
            raise ValueError("networks need n_gates >= 1 and depth >= 1")
        n_networks = int(n_networks)
        op_ids = np.empty((n_networks, depth, n_gates), dtype=np.uint8)
        wiring = np.empty((n_networks, depth, n_gates, 2), dtype=np.int32)
        for row, index in enumerate(
            range(int(net_start), int(net_start) + n_networks)
        ):
            rng = spawn_rng(seed, index)
            op_ids[row] = rng.integers(
                0, 16, size=(depth, n_gates), dtype=np.uint8
            )
            wiring[row, 0] = rng.integers(
                0, n_inputs, size=(n_gates, 2), dtype=np.int32
            )
            if depth > 1:
                wiring[row, 1:] = rng.integers(
                    0, n_gates, size=(depth - 1, n_gates, 2), dtype=np.int32
                )
        return cls(op_ids, wiring, n_inputs)

    # ------------------------------------------------------------------
    # Shape and slicing
    # ------------------------------------------------------------------

    @property
    def n_networks(self) -> int:
        return self.op_ids.shape[0]

    @property
    def depth(self) -> int:
        return self.op_ids.shape[1]

    @property
    def n_gates(self) -> int:
        return self.op_ids.shape[2]

    def select_networks(self, start: int, stop: int) -> "LogicNetBatch":
        """The sub-batch of networks ``[start, stop)`` (views, no copy)."""
        return LogicNetBatch(
            self.op_ids[start:stop], self.wiring[start:stop], self.n_inputs
        )

    # ------------------------------------------------------------------
    # Shared-memory transport
    # ------------------------------------------------------------------

    def to_shared(self, arena: SharedArena) -> LogicNetHandle:
        """Export the gate tables into ``arena``; returns the handle."""
        return LogicNetHandle(
            op_ids=arena.share_array(self.op_ids),
            wiring=arena.share_array(self.wiring),
            n_inputs=self.n_inputs,
        )

    @classmethod
    def from_shared(
        cls,
        handle: LogicNetHandle,
        *,
        networks: Optional[Tuple[int, int]] = None,
    ) -> "LogicNetBatch":
        """Attach an exported batch (optionally one network range)."""
        op_ids = attach_array(handle.op_ids)
        wiring = attach_array(handle.wiring)
        if networks is not None:
            start, stop = networks
            op_ids = op_ids[start:stop]
            wiring = wiring[start:stop]
        return cls(op_ids, wiring, handle.n_inputs)

    # ------------------------------------------------------------------
    # Evaluation (phases 0-3)
    # ------------------------------------------------------------------

    #: Target bytes of one word-column block's layer state.  The whole
    #: depth runs on each block while it is cache-resident, so the
    #: per-layer gathers and word-ops read warm lines instead of
    #: streaming the full ``(N, G, n_words)`` state from DRAM once per
    #: layer.  Purely a traversal order: results are bit-identical for
    #: any value.
    _BLOCK_BYTES = 1 << 22

    def evaluate_words(
        self, input_words: np.ndarray, n_samples: int
    ) -> np.ndarray:
        """Final-layer outputs as packed words, ``(N, G, n_words)``.

        ``input_words`` is the clean packed ``(n_inputs, n_words)``
        form of the shared input lines; every network reads the same
        lines.  Layer ``l`` gathers its fan-in rows (phase 1) and
        evaluates all ``N × G`` gates in one
        :func:`~repro.backend.packed.gate_table_words` call (phase 2);
        the loop carries only the packed ``(N, G, n_words)`` state —
        no raster exists at any point.

        The wiring is identical for every word column, so the word
        axis is blocked: each column block runs all ``depth`` layers
        while its state fits in cache (``_BLOCK_BYTES``), then the
        final layer's block lands in the output.  Tail masking applies
        exactly once, to the block holding the last word.
        """
        input_words = np.ascontiguousarray(input_words, dtype=np.uint64)
        if input_words.shape[0] != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} input lines, "
                f"got {input_words.shape[0]}"
            )
        n_nets, depth, n_gates = self.op_ids.shape
        n_words = input_words.shape[1]
        out = np.empty((n_nets, n_gates, n_words), dtype=np.uint64)
        net_rows = np.arange(n_nets)[:, None]
        ops = [self.op_ids[:, layer].reshape(-1) for layer in range(depth)]
        block = max(1, self._BLOCK_BYTES // (8 * max(1, n_nets * n_gates)))
        for w_lo in range(0, n_words, block):
            w_hi = min(w_lo + block, n_words)
            # Samples covered by this block — full words except in the
            # block holding the overall tail, where the real sample
            # count drives the one tail mask.
            block_samples = min((w_hi - w_lo) * 64, n_samples - w_lo * 64)
            inputs = input_words[:, w_lo:w_hi]
            state = np.empty((0, n_gates, 0), dtype=np.uint64)
            for layer in range(depth):
                fan_in = self.wiring[:, layer]  # (N, G, 2)
                if layer == 0:
                    a = inputs[fan_in[:, :, 0]]
                    b = inputs[fan_in[:, :, 1]]
                else:
                    a = state[net_rows, fan_in[:, :, 0]]
                    b = state[net_rows, fan_in[:, :, 1]]
                flat = packed.gate_table_words(
                    ops[layer],
                    a.reshape(n_nets * n_gates, w_hi - w_lo),
                    b.reshape(n_nets * n_gates, w_hi - w_lo),
                    block_samples,
                )
                state = flat.reshape(n_nets, n_gates, w_hi - w_lo)
            out[:, :, w_lo:w_hi] = state
        return out

    def evaluate(
        self, input_words: np.ndarray, n_samples: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate and collect outputs (phase 3).

        Returns ``(popcounts, checksums)``: per-gate output spike
        counts ``(N, G)`` int64 and per-network uint64 checksums —
        the XOR fold of the final layer's words, a whole-output
        fingerprint that any bit flip perturbs.  Both reductions read
        the packed words directly.
        """
        outputs = self.evaluate_words(input_words, n_samples)
        return output_summary(outputs)


def evaluate_outputs(
    nets: LogicNetBatch, input_words: np.ndarray, n_samples: int
) -> np.ndarray:
    """Module-level alias of :meth:`LogicNetBatch.evaluate_words`."""
    return nets.evaluate_words(input_words, n_samples)


def output_summary(outputs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(popcounts (N, G) int64, checksums (N,) uint64)`` of outputs."""
    popcounts = packed.popcount(outputs).sum(axis=-1, dtype=np.int64)
    checksums = np.bitwise_xor.reduce(
        outputs.reshape(outputs.shape[0], -1), axis=-1
    ) if outputs.shape[0] and outputs.size else np.zeros(
        outputs.shape[0], dtype=np.uint64
    )
    return popcounts, np.asarray(checksums, dtype=np.uint64)
