"""Sum-of-products synthesis for arbitrary multi-valued functions.

Section 7 of the paper: "we plan to design digital circuits using this
approach".  This module closes that loop for combinational logic: any
function over radix-M digit wires is realised as the standard MVL
sum-of-products form

    ``f(x) = MAX over minterms m [ MIN( lit_m1(x1), ..., lit_mk(xk), f(m) ) ]``

where ``lit_v(x)`` is the window literal that outputs M−1 when ``x == v``
and 0 otherwise, and ``f(m)`` enters as a constant.  Minterms with
``f(m) = 0`` are dropped (0 is the MAX identity), and the MIN/MAX
reductions are balanced trees, so the synthesised circuit's depth grows
logarithmically in the number of inputs and surviving minterms.

This is deliberately the *naive canonical* form — the point is a
correct, fully spike-realisable netlist for any truth table, not area
optimality.  :func:`sop_statistics` reports the gate count and depth so
ablations can quantify the cost.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..errors import SynthesisError
from ..hyperspace.basis import HyperspaceBasis
from .circuits import Circuit
from .gates import TruthTableGate, gate_from_function
from .multivalued import literal_gate, max_gate, min_gate

__all__ = ["synthesize_sop", "SopStatistics", "sop_statistics"]


@dataclass(frozen=True)
class SopStatistics:
    """Size summary of a synthesised SOP circuit."""

    n_inputs: int
    radix: int
    n_minterms_total: int
    n_minterms_used: int
    n_gates: int
    depth: int


def _constant_gate(
    value: int,
    input_basis: HyperspaceBasis,
    output_basis: HyperspaceBasis,
) -> TruthTableGate:
    """Unary gate emitting ``value`` regardless of its input.

    Physically this is a source of the constant's reference train,
    gated by the presence of the input (which keeps the netlist a DAG
    rooted at primary inputs).
    """
    return gate_from_function(
        f"CONST{value}", [input_basis], output_basis, lambda _v: value
    )


def _reduce_tree(
    circuit: Circuit,
    gate: TruthTableGate,
    signals: List[str],
    prefix: str,
) -> str:
    """Balanced binary reduction of ``signals`` with a 2-input gate."""
    level = 0
    frontier = list(signals)
    while len(frontier) > 1:
        next_frontier: List[str] = []
        for pair in range(0, len(frontier) - 1, 2):
            name = circuit.add_gate(
                f"{prefix}_{level}_{pair // 2}",
                gate,
                [frontier[pair], frontier[pair + 1]],
            )
            next_frontier.append(name)
        if len(frontier) % 2 == 1:
            next_frontier.append(frontier[-1])
        frontier = next_frontier
        level += 1
    return frontier[0]


def synthesize_sop(
    name: str,
    input_bases: Sequence[HyperspaceBasis],
    output_basis: HyperspaceBasis,
    function: Callable[..., int],
) -> Circuit:
    """Synthesise ``function`` as a spike-logic SOP circuit.

    All input bases and the output basis must share one radix M (the
    Post-algebra operators require it).  Inputs are named ``x0..x{k-1}``;
    the single output is marked on the circuit.
    """
    if not input_bases:
        raise SynthesisError("SOP synthesis needs at least one input")
    radix = output_basis.size
    for i, basis in enumerate(input_bases):
        if basis.size != radix:
            raise SynthesisError(
                f"input {i} has radix {basis.size}, output has {radix}; "
                "SOP synthesis requires a uniform radix"
            )
    if radix < 2:
        raise SynthesisError("radix must be at least 2")

    inputs = {f"x{i}": basis for i, basis in enumerate(input_bases)}
    circuit = Circuit(name, inputs)
    lo = min_gate(output_basis)
    hi = max_gate(output_basis)

    product_terms: List[str] = []
    for index, minterm in enumerate(
        itertools.product(range(radix), repeat=len(input_bases))
    ):
        value = int(function(*minterm))
        if not (0 <= value < radix):
            raise SynthesisError(
                f"function value {value} at {minterm} outside [0, {radix})"
            )
        if value == 0:
            continue  # 0 is the MAX identity

        # One literal per input, selecting this minterm's digit.
        literal_signals = []
        for position, digit in enumerate(minterm):
            gate = literal_gate(
                input_bases[position], digit, digit, output_basis
            )
            literal_signals.append(
                circuit.add_gate(
                    f"m{index}_l{position}", gate, [f"x{position}"]
                )
            )
        term = _reduce_tree(circuit, lo, literal_signals, f"m{index}_and")

        if value != radix - 1:
            # Clamp the term to the function value via MIN with a constant.
            const = circuit.add_gate(
                f"m{index}_c",
                _constant_gate(value, input_bases[0], output_basis),
                ["x0"],
            )
            term = circuit.add_gate(f"m{index}_v", lo, [term, const])
        product_terms.append(term)

    if not product_terms:
        # The constant-zero function: a single constant gate suffices.
        zero = circuit.add_gate(
            "const0", _constant_gate(0, input_bases[0], output_basis), ["x0"]
        )
        circuit.mark_output(zero)
        return circuit

    output = _reduce_tree(circuit, hi, product_terms, "or")
    circuit.mark_output(output)
    return circuit


def sop_statistics(
    circuit: Circuit,
    n_inputs: int,
    radix: int,
    n_minterms_used: int,
) -> SopStatistics:
    """Package the size numbers of a synthesised SOP circuit."""
    return SopStatistics(
        n_inputs=n_inputs,
        radix=radix,
        n_minterms_total=radix**n_inputs,
        n_minterms_used=n_minterms_used,
        n_gates=circuit.n_gates(),
        depth=circuit.depth(),
    )
