"""Synthesis of arithmetic blocks in neuro-bit logic.

Builders that assemble :class:`~repro.logic.circuits.Circuit` instances
for standard datapath blocks, in both binary and general radix-M
(multi-valued) form — the "significantly increasing the complexity of
computer circuits" promise of the abstract made concrete:

* :func:`ripple_adder` — radix-M ripple-carry adder over D digits;
* :func:`comparator` — radix-M magnitude comparator;
* :func:`multiplexer` — 2-way mux with a binary select;
* :func:`parity_circuit` — XOR reduction over D binary inputs.

Every builder needs hyperspace bases to type the signals; callers
usually pass one shared basis per alphabet size (reference bases can be
reused freely across wires because values are *which* train a wire
carries, not *when*).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import SynthesisError
from ..hyperspace.basis import HyperspaceBasis
from .circuits import Circuit
from .gates import TruthTableGate, gate_from_function, xor_gate

__all__ = [
    "ripple_adder",
    "comparator",
    "multiplexer",
    "parity_circuit",
    "digit_sum_gate",
    "digit_carry_gate",
]


def digit_sum_gate(
    digit_basis: HyperspaceBasis,
    carry_basis: HyperspaceBasis,
) -> TruthTableGate:
    """Radix-M sum digit: ``(a + b + c_in) mod M`` with a binary carry in."""
    radix = digit_basis.size
    if carry_basis.size < 2:
        raise SynthesisError("carry basis needs at least 2 elements")
    return gate_from_function(
        "SUMDIGIT",
        [digit_basis, digit_basis, carry_basis],
        digit_basis,
        lambda a, b, c: (a + b + c) % radix,
    )


def digit_carry_gate(
    digit_basis: HyperspaceBasis,
    carry_basis: HyperspaceBasis,
) -> TruthTableGate:
    """Radix-M carry out: ``(a + b + c_in) >= M`` as a binary value."""
    radix = digit_basis.size
    if carry_basis.size < 2:
        raise SynthesisError("carry basis needs at least 2 elements")
    return gate_from_function(
        "CARRYDIGIT",
        [digit_basis, digit_basis, carry_basis],
        carry_basis,
        lambda a, b, c: 1 if (a + b + c) >= radix else 0,
    )


def ripple_adder(
    n_digits: int,
    digit_basis: HyperspaceBasis,
    carry_basis: Optional[HyperspaceBasis] = None,
) -> Circuit:
    """D-digit radix-M ripple-carry adder.

    Primary inputs: ``a0..a{D-1}``, ``b0..b{D-1}`` (digit 0 least
    significant) and ``cin``.  Outputs: ``s0..s{D-1}`` and ``cout``.
    With ``digit_basis.size == 2`` this is the classic binary
    ripple-carry adder; with larger bases each wire carries a full
    radix-M digit — one neuro-bit wire replacing log2(M) binary wires.
    """
    if n_digits < 1:
        raise SynthesisError(f"n_digits must be >= 1, got {n_digits}")
    carry_basis = carry_basis if carry_basis is not None else digit_basis
    if carry_basis.size < 2:
        raise SynthesisError("carry basis needs at least 2 elements")

    inputs: Dict[str, HyperspaceBasis] = {}
    for d in range(n_digits):
        inputs[f"a{d}"] = digit_basis
        inputs[f"b{d}"] = digit_basis
    inputs["cin"] = carry_basis

    circuit = Circuit(f"ripple_adder_r{digit_basis.size}_d{n_digits}", inputs)
    sum_gate = digit_sum_gate(digit_basis, carry_basis)
    carry_gate = digit_carry_gate(digit_basis, carry_basis)

    carry_signal = "cin"
    for d in range(n_digits):
        s = circuit.add_gate(f"s{d}", sum_gate, [f"a{d}", f"b{d}", carry_signal])
        carry_signal = circuit.add_gate(
            f"c{d + 1}", carry_gate, [f"a{d}", f"b{d}", carry_signal]
        )
        circuit.mark_output(s)
    # The final carry is renamed conceptually to cout; keep the node name.
    circuit.mark_output(carry_signal)
    return circuit


def adder_reference(n_digits: int, radix: int, a: int, b: int, cin: int) -> Dict[str, int]:
    """Golden model for :func:`ripple_adder`: digit map of ``a + b + cin``."""
    total = a + b + cin
    result: Dict[str, int] = {}
    for d in range(n_digits):
        result[f"s{d}"] = total % radix
        total //= radix
    result["cout"] = total
    return result


def comparator(
    n_digits: int,
    digit_basis: HyperspaceBasis,
    verdict_basis: Optional[HyperspaceBasis] = None,
) -> Circuit:
    """D-digit radix-M magnitude comparator.

    Output ``cmp`` is 0 for ``a < b``, 1 for ``a == b``, 2 for ``a > b``
    (the verdict basis therefore needs at least 3 elements).  Built as a
    most-significant-first chain of per-digit verdict gates combined with
    a "first difference wins" merge gate.
    """
    if n_digits < 1:
        raise SynthesisError(f"n_digits must be >= 1, got {n_digits}")
    verdict_basis = verdict_basis if verdict_basis is not None else digit_basis
    if verdict_basis.size < 3:
        raise SynthesisError(
            f"verdict basis needs >= 3 elements, got {verdict_basis.size}"
        )

    inputs: Dict[str, HyperspaceBasis] = {}
    for d in range(n_digits):
        inputs[f"a{d}"] = digit_basis
        inputs[f"b{d}"] = digit_basis

    circuit = Circuit(f"comparator_r{digit_basis.size}_d{n_digits}", inputs)

    digit_verdict = gate_from_function(
        "DIGCMP",
        [digit_basis, digit_basis],
        verdict_basis,
        lambda a, b: 0 if a < b else (1 if a == b else 2),
    )
    merge = gate_from_function(
        "CMPMERGE",
        [verdict_basis, verdict_basis],
        verdict_basis,
        # High-digit verdict dominates unless it is "equal".
        lambda high, low: low if high == 1 else high,
    )

    # Most significant digit first.
    verdict = circuit.add_gate(
        f"v{n_digits - 1}", digit_verdict, [f"a{n_digits - 1}", f"b{n_digits - 1}"]
    )
    for d in range(n_digits - 2, -1, -1):
        digit = circuit.add_gate(f"v{d}", digit_verdict, [f"a{d}", f"b{d}"])
        verdict = circuit.add_gate(f"m{d}", merge, [verdict, digit])
    circuit.mark_output(verdict)
    return circuit


def comparator_reference(a: int, b: int) -> int:
    """Golden model for :func:`comparator` verdicts."""
    if a < b:
        return 0
    if a == b:
        return 1
    return 2


def multiplexer(
    data_basis: HyperspaceBasis,
    select_basis: HyperspaceBasis,
) -> Circuit:
    """2-way multiplexer: output = ``d0`` when select is 0, else ``d1``."""
    if select_basis.size < 2:
        raise SynthesisError("select basis needs at least 2 elements")
    radix = data_basis.size
    inputs = {"d0": data_basis, "d1": data_basis, "sel": select_basis}
    circuit = Circuit(f"mux2_r{radix}", inputs)
    mux = gate_from_function(
        "MUX2",
        [data_basis, data_basis, select_basis],
        data_basis,
        lambda d0, d1, sel: d1 if sel else d0,
    )
    out = circuit.add_gate("y", mux, ["d0", "d1", "sel"])
    circuit.mark_output(out)
    return circuit


def parity_circuit(
    n_inputs: int,
    bit_basis: HyperspaceBasis,
) -> Circuit:
    """XOR reduction over ``n_inputs`` binary inputs (balanced tree)."""
    if n_inputs < 2:
        raise SynthesisError(f"n_inputs must be >= 2, got {n_inputs}")
    if bit_basis.size < 2:
        raise SynthesisError("bit basis needs at least 2 elements")

    inputs = {f"x{i}": bit_basis for i in range(n_inputs)}
    circuit = Circuit(f"parity_{n_inputs}", inputs)
    gate = xor_gate(bit_basis)

    frontier: List[str] = [f"x{i}" for i in range(n_inputs)]
    level = 0
    while len(frontier) > 1:
        next_frontier: List[str] = []
        for pair_index in range(0, len(frontier) - 1, 2):
            name = circuit.add_gate(
                f"p{level}_{pair_index // 2}",
                gate,
                [frontier[pair_index], frontier[pair_index + 1]],
            )
            next_frontier.append(name)
        if len(frontier) % 2 == 1:
            next_frontier.append(frontier[-1])
        frontier = next_frontier
        level += 1
    circuit.mark_output(frontier[0])
    return circuit
