"""Coincidence correlators: identifying neuro-bits by spike coincidence.

Section 5: "the gates have correlators for each input, which determine
the value of the input in a multi-variable space", and Section 2: "simple
coincidence detection of a single spike can identify any reference spike
train uniquely" — no time averaging, hence the scheme's speed.

:class:`CoincidenceCorrelator` implements that receiver against a
:class:`~repro.hyperspace.basis.HyperspaceBasis`:

* :meth:`identify` — classify a single-valued wire by its first spike;
* :meth:`identify_robust` — majority vote over the first k spikes, the
  defence against injected/foreign spikes;
* :meth:`detect_members` — set-membership readout of a superposition;
* :func:`detection_latency_samples` — the latency distribution of
  first-coincidence identification, used by the speed benchmarks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..errors import IdentificationError
from ..hyperspace.basis import HyperspaceBasis
from ..spikes.train import SpikeTrain

__all__ = [
    "IdentificationResult",
    "CoincidenceCorrelator",
    "detection_latency_samples",
]


@dataclass(frozen=True)
class IdentificationResult:
    """Outcome of identifying a wire against a basis.

    Attributes
    ----------
    element:
        Index of the identified basis element.
    label:
        Its label.
    decision_slot:
        Sample index of the spike that decided the identification.
    spikes_inspected:
        How many wire spikes were examined before deciding.
    """

    element: int
    label: str
    decision_slot: int
    spikes_inspected: int

    def decision_time(self, dt: float) -> float:
        """Decision latency in seconds from the observation start."""
        return self.decision_slot * dt


class CoincidenceCorrelator:
    """Identifies spike trains against one hyperspace basis."""

    def __init__(self, basis: HyperspaceBasis) -> None:
        self.basis = basis

    def identify(self, wire: SpikeTrain, start_slot: int = 0) -> IdentificationResult:
        """First-coincidence identification of a single-valued wire.

        Scans the wire's spikes from ``start_slot`` onward; the first
        spike landing in a slot owned by a basis element decides.  Spikes
        owned by no element (foreign/noise) are skipped.  Raises
        :class:`IdentificationError` if no spike ever coincides — for a
        clean wire that means it belongs to a different hyperspace.
        """
        inspected = 0
        for slot in wire.indices[np.searchsorted(wire.indices, start_slot) :].tolist():
            inspected += 1
            owner = self.basis.owner_of_slot(slot)
            if owner is not None:
                return IdentificationResult(
                    element=owner,
                    label=self.basis.labels[owner],
                    decision_slot=slot,
                    spikes_inspected=inspected,
                )
        raise IdentificationError(
            f"no coincidence between the wire ({len(wire)} spikes from slot "
            f"{start_slot}) and any of the {self.basis.size} basis elements"
        )

    def identify_robust(
        self,
        wire: SpikeTrain,
        votes: int = 3,
        start_slot: int = 0,
    ) -> IdentificationResult:
        """Majority-vote identification over the first ``votes`` coincidences.

        A single foreign spike cannot flip the decision: the element
        owning the most of the first ``votes`` coinciding spikes wins
        (ties broken by earliest decisive spike).  Falls back to plain
        first-coincidence behaviour when ``votes == 1``.
        """
        if votes < 1:
            raise IdentificationError(f"votes must be >= 1, got {votes}")
        tally: Counter = Counter()
        first_slot: Dict[int, int] = {}
        inspected = 0
        for slot in wire.indices[np.searchsorted(wire.indices, start_slot) :].tolist():
            inspected += 1
            owner = self.basis.owner_of_slot(slot)
            if owner is None:
                continue
            tally[owner] += 1
            first_slot.setdefault(owner, slot)
            if sum(tally.values()) >= votes:
                break
        if not tally:
            raise IdentificationError(
                f"no coincidence between the wire and any of the "
                f"{self.basis.size} basis elements"
            )
        best = max(tally.items(), key=lambda kv: (kv[1], -first_slot[kv[0]]))[0]
        return IdentificationResult(
            element=best,
            label=self.basis.labels[best],
            decision_slot=first_slot[best],
            spikes_inspected=inspected,
        )

    def detect_members(
        self,
        wire: SpikeTrain,
        until_slot: Optional[int] = None,
    ) -> Dict[int, int]:
        """Set-membership readout: element index → first detection slot.

        Observes the wire up to ``until_slot`` (exclusive; default: the
        whole record).  Elements absent from the result were never seen —
        for a clean superposition wire that means they are not members.
        """
        limit = self.basis.grid.n_samples if until_slot is None else until_slot
        earliest: Dict[int, int] = {}
        for slot in wire.indices.tolist():
            if slot >= limit:
                break
            owner = self.basis.owner_of_slot(slot)
            if owner is not None and owner not in earliest:
                earliest[owner] = slot
        return earliest

    def contains(
        self,
        wire: SpikeTrain,
        element,
        until_slot: Optional[int] = None,
    ) -> bool:
        """Membership test: does ``element`` appear on ``wire``?

        Physically this is a coincidence check between the wire and one
        reference train, the cheapest of the paper's set operations.
        """
        index = self.basis.index_of(element)
        reference = self.basis.trains[index]
        shared = wire.intersection(reference)
        if until_slot is None:
            return len(shared) > 0
        first = shared.first_spike_index()
        return first is not None and first < until_slot


def detection_latency_samples(
    basis: HyperspaceBasis,
    element,
    n_trials: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Latency (samples) from a random start to the element's next spike.

    Draws ``n_trials`` uniform observation-start slots and measures how
    long a correlator waits for the first spike of the element's
    reference train — the paper's "first coincident spike" delay.  Starts
    falling after the element's last spike are redrawn (censored), so the
    returned array always holds ``n_trials`` finite latencies.
    """
    index = basis.index_of(element)
    spikes = basis.trains[index].indices
    if spikes.size == 0:
        raise IdentificationError(
            f"element {basis.labels[index]!r} has no spikes; latency undefined"
        )
    latencies = np.empty(n_trials, dtype=np.int64)
    filled = 0
    last = spikes[-1]
    while filled < n_trials:
        starts = rng.integers(0, basis.grid.n_samples, size=n_trials - filled)
        starts = starts[starts <= last]
        if starts.size == 0:
            continue
        positions = np.searchsorted(spikes, starts)
        hits = spikes[positions] - starts
        take = min(hits.size, n_trials - filled)
        latencies[filled : filled + take] = hits[:take]
        filled += take
    return latencies
