"""Coincidence correlators: identifying neuro-bits by spike coincidence.

Section 5: "the gates have correlators for each input, which determine
the value of the input in a multi-variable space", and Section 2: "simple
coincidence detection of a single spike can identify any reference spike
train uniquely" — no time averaging, hence the scheme's speed.

:class:`CoincidenceCorrelator` implements that receiver against a
:class:`~repro.hyperspace.basis.HyperspaceBasis`:

* :meth:`identify` — classify a single-valued wire by its first spike;
* :meth:`identify_robust` — majority vote over the first k spikes, the
  defence against injected/foreign spikes;
* :meth:`detect_members` — set-membership readout of a superposition;
* :meth:`identify_batch` / :meth:`detect_members_batch` — the same
  receivers over a whole :class:`~repro.backend.batch.SpikeTrainBatch`
  in one vectorised pass against the basis;
* :func:`detection_latency_samples` — the latency distribution of
  first-coincidence identification, used by the speed benchmarks.

Every scalar method gathers the wire's slots through the basis's dense
``owner_vector`` instead of looping spike by spike in Python; the batch
methods additionally amortise the per-call overhead across all wires
via the batch's CSR layout (one gather over the concatenated slots of
every wire).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..backend import packed as packed_kernels
from ..backend.batch import SpikeTrainBatch
from ..errors import IdentificationError
from ..hyperspace.basis import HyperspaceBasis
from ..hyperspace.superposition import first_detection_slots
from ..spikes.train import SpikeTrain

__all__ = [
    "IdentificationResult",
    "BatchDetection",
    "BatchIdentification",
    "CoincidenceCorrelator",
    "detection_latency_samples",
]


@dataclass(frozen=True)
class IdentificationResult:
    """Outcome of identifying a wire against a basis.

    Attributes
    ----------
    element:
        Index of the identified basis element.
    label:
        Its label.
    decision_slot:
        Sample index of the spike that decided the identification.
    spikes_inspected:
        How many wire spikes were examined before deciding.
    """

    element: int
    label: str
    decision_slot: int
    spikes_inspected: int

    def decision_time(self, dt: float) -> float:
        """Decision latency in seconds from the observation start."""
        return self.decision_slot * dt


@dataclass(frozen=True)
class BatchIdentification:
    """Vectorised identification of a whole batch of wires.

    Array-of-structs form of N :class:`IdentificationResult` values so
    batch consumers never pay per-wire object construction; use
    :meth:`results` to materialise the per-wire dataclasses (bit
    identical to :meth:`CoincidenceCorrelator.identify` on each row).

    Attributes
    ----------
    elements:
        ``(N,)`` identified element per wire (-1: no coincidence).
    decision_slots:
        ``(N,)`` slot of the deciding spike (-1: no coincidence).
    spikes_inspected:
        ``(N,)`` wire spikes examined before deciding (0: no
        coincidence).
    labels:
        The basis labels, for materialisation.
    """

    elements: np.ndarray
    decision_slots: np.ndarray
    spikes_inspected: np.ndarray
    labels: tuple

    def __len__(self) -> int:
        return int(self.elements.size)

    def results(self) -> List[Optional[IdentificationResult]]:
        """Per-wire :class:`IdentificationResult` objects (None = no hit)."""
        return [
            None
            if element < 0
            else IdentificationResult(
                element=int(element),
                label=self.labels[int(element)],
                decision_slot=int(slot),
                spikes_inspected=int(inspected),
            )
            for element, slot, inspected in zip(
                self.elements.tolist(),
                self.decision_slots.tolist(),
                self.spikes_inspected.tolist(),
            )
        ]


@dataclass(frozen=True)
class BatchDetection:
    """Vectorised set-membership readout of a whole batch of wires.

    Attributes
    ----------
    membership:
        ``(N, M)`` boolean matrix: wire n carries element m.
    first_slots:
        ``(N, M)`` int64 matrix of earliest detection slots (-1 where
        the element was never seen on that wire).
    """

    membership: np.ndarray
    first_slots: np.ndarray

    def as_dicts(self) -> List[Dict[int, int]]:
        """Per-wire ``element → earliest slot`` mappings, ordered by slot.

        Row n matches :meth:`CoincidenceCorrelator.detect_members` on
        the same wire exactly.
        """
        results: List[Dict[int, int]] = []
        for row_present, row_slots in zip(self.membership, self.first_slots):
            elements = np.flatnonzero(row_present)
            order = np.argsort(row_slots[elements], kind="stable")
            results.append(
                {int(e): int(row_slots[e]) for e in elements[order]}
            )
        return results


class CoincidenceCorrelator:
    """Identifies spike trains against one hyperspace basis."""

    def __init__(self, basis: HyperspaceBasis) -> None:
        self.basis = basis

    # ------------------------------------------------------------------
    # Scalar receivers (single wire, vectorised over its spikes)
    # ------------------------------------------------------------------

    def _owned_spikes(self, wire: SpikeTrain, start_slot: int):
        """Wire slots from ``start_slot`` and their owning elements."""
        slots = wire.indices[np.searchsorted(wire.indices, start_slot) :]
        return slots, self.basis.owners_of(slots)

    def identify(self, wire: SpikeTrain, start_slot: int = 0) -> IdentificationResult:
        """First-coincidence identification of a single-valued wire.

        Scans the wire's spikes from ``start_slot`` onward; the first
        spike landing in a slot owned by a basis element decides.  Spikes
        owned by no element (foreign/noise) are skipped.  Raises
        :class:`IdentificationError` if no spike ever coincides — for a
        clean wire that means it belongs to a different hyperspace.
        """
        slots, owners = self._owned_spikes(wire, start_slot)
        hits = np.flatnonzero(owners >= 0)
        if not hits.size:
            raise IdentificationError(
                f"no coincidence between the wire ({len(wire)} spikes from slot "
                f"{start_slot}) and any of the {self.basis.size} basis elements"
            )
        first = int(hits[0])
        element = int(owners[first])
        return IdentificationResult(
            element=element,
            label=self.basis.labels[element],
            decision_slot=int(slots[first]),
            spikes_inspected=first + 1,
        )

    def identify_robust(
        self,
        wire: SpikeTrain,
        votes: int = 3,
        start_slot: int = 0,
    ) -> IdentificationResult:
        """Majority-vote identification over the first ``votes`` coincidences.

        A single foreign spike cannot flip the decision: the element
        owning the most of the first ``votes`` coinciding spikes wins
        (ties broken by earliest decisive spike).  Falls back to plain
        first-coincidence behaviour when ``votes == 1``.
        """
        if votes < 1:
            raise IdentificationError(f"votes must be >= 1, got {votes}")
        slots, owners = self._owned_spikes(wire, start_slot)
        hits = np.flatnonzero(owners >= 0)
        if not hits.size:
            raise IdentificationError(
                f"no coincidence between the wire and any of the "
                f"{self.basis.size} basis elements"
            )
        decisive = hits[:votes]
        # The per-spike scan stopped at the votes-th coincidence (or ran
        # off the end of the wire when fewer exist).
        inspected = int(decisive[-1]) + 1 if decisive.size >= votes else slots.size
        voting_owners = owners[decisive]
        tally = np.bincount(voting_owners, minlength=self.basis.size)
        first_seen = np.full(self.basis.size, -1, dtype=np.int64)
        first_seen[voting_owners[::-1]] = slots[decisive[::-1]]
        # Winner: most votes, earliest decisive spike on ties.
        candidates = np.flatnonzero(tally == tally.max())
        best = int(candidates[np.argmin(first_seen[candidates])])
        return IdentificationResult(
            element=best,
            label=self.basis.labels[best],
            decision_slot=int(first_seen[best]),
            spikes_inspected=inspected,
        )

    def detect_members(
        self,
        wire: SpikeTrain,
        until_slot: Optional[int] = None,
    ) -> Dict[int, int]:
        """Set-membership readout: element index → first detection slot.

        Observes the wire up to ``until_slot`` (exclusive; default: the
        whole record).  Elements absent from the result were never seen —
        for a clean superposition wire that means they are not members.
        Insertion order follows detection order (earliest slot first).
        """
        limit = self.basis.grid.n_samples if until_slot is None else until_slot
        trimmed = SpikeTrain._from_sorted_unique(
            wire.indices[: np.searchsorted(wire.indices, limit)], wire.grid
        )
        return first_detection_slots(self.basis, trimmed)

    def contains(
        self,
        wire: SpikeTrain,
        element,
        until_slot: Optional[int] = None,
    ) -> bool:
        """Membership test: does ``element`` appear on ``wire``?

        Physically this is a coincidence check between the wire and one
        reference train, the cheapest of the paper's set operations.
        """
        index = self.basis.index_of(element)
        reference = self.basis.trains[index]
        shared = wire.intersection(reference)
        if until_slot is None:
            return len(shared) > 0
        first = shared.first_spike_index()
        return first is not None and first < until_slot

    # ------------------------------------------------------------------
    # Batched receivers (one vectorised pass over the whole batch)
    # ------------------------------------------------------------------

    def identify_batch(
        self,
        batch: SpikeTrainBatch,
        start_slot: int = 0,
        missing: str = "raise",
    ) -> BatchIdentification:
        """First-coincidence identification of every wire in ``batch``.

        One gather through the basis's ``owner_vector`` over the batch's
        concatenated spike slots classifies all N wires at once —
        O(total spikes) work with no per-wire Python overhead and no
        sorting.  :meth:`BatchIdentification.results` matches
        :meth:`identify` on each row bit for bit.

        ``missing`` selects what happens to wires with no coincidence:
        ``"raise"`` (default) raises :class:`IdentificationError` naming
        the rows, ``"none"`` marks them -1 in the result arrays.

        Packed-primary batches (shared-memory attachments, packed
        set-op results) never decode: the scan runs on the bitset
        itself (:meth:`_identify_batch_packed`), bit-identical by
        contract.
        """
        if missing not in ("raise", "none"):
            raise IdentificationError(
                f"missing must be 'raise' or 'none', got {missing!r}"
            )
        self._check_batch_grid(batch)
        if batch.receiver_backend() == "bitset":
            return self._identify_batch_packed(batch, start_slot, missing)
        values, ptr = batch.csr()
        n = batch.n_trains
        owners = self.basis.owner_vector[values]
        live = owners >= 0
        if start_slot > 0:
            live &= values >= start_slot
        hit_positions = np.flatnonzero(live)
        row_of = np.repeat(np.arange(n), np.diff(ptr))
        # First hit per row without sorting: scatter positions in
        # reverse so the earliest (hit positions ascend within each
        # row) lands last and wins.
        first_position = np.full(n, -1, dtype=np.int64)
        hit_rows = row_of[hit_positions]
        first_position[hit_rows[::-1]] = hit_positions[::-1]
        missed = first_position < 0

        if missing == "raise" and missed.any():
            raise IdentificationError(
                f"no coincidence between wire(s) "
                f"{np.flatnonzero(missed).tolist()} and any of the "
                f"{self.basis.size} basis elements"
            )

        # Spikes inspected = wire spikes from start_slot up to and
        # including the decisive one; the row's scan start is found by
        # the same reverse-scatter trick over values >= start_slot.
        if start_slot > 0:
            starts = ptr[1:].astype(np.int64, copy=True)
            in_window = np.flatnonzero(values >= start_slot)
            window_rows = row_of[in_window]
            starts[window_rows[::-1]] = in_window[::-1]
        else:
            starts = ptr[:-1]

        if values.size:
            safe_first = np.where(missed, 0, first_position)
            elements = np.where(missed, -1, owners[safe_first].astype(np.int64))
            decision_slots = np.where(missed, -1, values[safe_first])
            spikes_inspected = np.where(missed, 0, safe_first - starts + 1)
        else:
            elements = np.full(n, -1, dtype=np.int64)
            decision_slots = np.full(n, -1, dtype=np.int64)
            spikes_inspected = np.zeros(n, dtype=np.int64)
        return BatchIdentification(
            elements=elements,
            decision_slots=decision_slots,
            spikes_inspected=spikes_inspected,
            labels=self.basis.labels,
        )

    def _identify_batch_packed(
        self, batch: SpikeTrainBatch, start_slot: int, missing: str
    ) -> BatchIdentification:
        """First-coincidence identification straight on the packed words.

        ``wire & owned_words`` keeps exactly the coinciding spikes (the
        basis rows are disjoint), the decision slot is the first set
        bit per row, and ``spikes_inspected`` is a popcount prefix sum
        over the observation window — no CSR decode, no raster, O(N ×
        n_words) touched bytes.  Bit-identical to the CSR path row for
        row, including the ``missing``/``start_slot`` semantics.
        """
        words = batch.packed_words()
        n = batch.n_trains
        decision = packed_kernels.first_and_slots(
            words, self.basis.owned_words, start=start_slot
        )
        missed = decision < 0
        if missing == "raise" and missed.any():
            raise IdentificationError(
                f"no coincidence between wire(s) "
                f"{np.flatnonzero(missed).tolist()} and any of the "
                f"{self.basis.size} basis elements"
            )
        # Spikes inspected = wire spikes in [start_slot, decision] =
        # bits≤decision − bits≤start−1, both from one popcount prefix
        # sum over the *unmodified* words (int32: row totals are
        # bounded by the grid length) — no windowed copy of the batch.
        # The prefix sum stops at the last word any row indexes into
        # (decisions come early on the serving path; the grid tail
        # would be popcounted for nothing).
        safe = np.where(missed, 0, decision)
        rows = np.arange(n)
        last_word = int(safe.max(initial=0)) >> 6
        if start_slot > 0:
            last_word = max(
                last_word,
                (min(start_slot, self.basis.grid.n_samples) - 1) >> 6,
            )
        cumulative = np.cumsum(
            packed_kernels.popcount(words[:, : last_word + 1]),
            axis=1,
            dtype=np.int32,
        )

        def bits_through(slots):
            """Per-row count of wire spikes in ``[0, slots]`` (int64)."""
            word_index = slots >> 6
            whole = np.where(
                word_index > 0,
                cumulative[rows, np.maximum(word_index - 1, 0)],
                0,
            ).astype(np.int64)
            partial = words[rows, word_index] & packed_kernels.le_word_masks(
                slots
            )
            return whole + packed_kernels.popcount(partial)

        inspected = bits_through(safe)
        if start_slot > 0:
            inspected -= bits_through(
                np.full(n, min(start_slot, self.basis.grid.n_samples) - 1)
            )
        elements = np.where(
            missed, -1, self.basis.owner_vector[safe].astype(np.int64)
        )
        return BatchIdentification(
            elements=elements,
            decision_slots=np.where(missed, -1, safe),
            spikes_inspected=np.where(missed, 0, inspected),
            labels=self.basis.labels,
        )

    def detect_members_batch(
        self,
        batch: SpikeTrainBatch,
        until_slot: Optional[int] = None,
    ) -> BatchDetection:
        """Set-membership readout of every wire in ``batch`` at once.

        Returns the full ``(N, M)`` membership matrix plus earliest
        detection slots; :meth:`BatchDetection.as_dicts` recovers the
        per-wire mappings of :meth:`detect_members` exactly.  Packed-
        primary batches route through the packed kernels
        (:meth:`_detect_members_batch_packed`) and never decode the
        non-coinciding spikes.
        """
        self._check_batch_grid(batch)
        limit = self.basis.grid.n_samples if until_slot is None else until_slot
        if batch.receiver_backend() == "bitset":
            return self._detect_members_batch_packed(batch, limit)
        values, ptr = batch.csr()
        n, m = batch.n_trains, self.basis.size
        owners = self.basis.owner_vector[values]
        live = (owners >= 0) & (values < limit)
        positions = np.flatnonzero(live)
        row_of = np.repeat(np.arange(n), np.diff(ptr))

        first_slots = np.full((n, m), -1, dtype=np.int64)
        # Scatter in reverse slot order so the earliest occurrence of
        # each (wire, element) pair lands last and wins.
        reverse = positions[::-1]
        first_slots[row_of[reverse], owners[reverse]] = values[reverse]
        return BatchDetection(
            membership=first_slots >= 0, first_slots=first_slots
        )

    def _detect_members_batch_packed(
        self, batch: SpikeTrainBatch, limit: int
    ) -> BatchDetection:
        """Membership readout straight on the packed words.

        ``wire & owned_words`` (windowed to ``[0, limit)``) isolates
        the coinciding spikes on the bitset; only *those* decode —
        O(coincident spikes), never the full wires — and feed the same
        earliest-wins reverse scatter as the CSR path, so the result is
        bit-identical.  The rows are processed in chunks, bounding the
        decode intermediates to a fixed byte budget however large the
        batch.
        """
        n, m = batch.n_trains, self.basis.size
        words = batch.packed_words()
        first_slots = np.full((n, m), -1, dtype=np.int64)
        step = max(1, (1 << 18) // max(1, words.shape[1] * 8))
        for lo in range(0, n, step):
            hits = words[lo : lo + step] & self.basis.owned_words
            if limit < self.basis.grid.n_samples:
                packed_kernels.clear_slots_from(hits, limit)
            row_of, values = packed_kernels.unpack_coords(hits)
            owners = self.basis.owner_vector[values]
            # Scatter in reverse slot order so the earliest occurrence
            # of each (wire, element) pair lands last and wins.  The
            # reversed operands must be materialised: fancy assignment
            # through negative-stride views may iterate in memory order.
            reverse = np.arange(values.size - 1, -1, -1)
            first_slots[row_of[reverse] + lo, owners[reverse]] = values[reverse]
        return BatchDetection(
            membership=first_slots >= 0, first_slots=first_slots
        )

    def _check_batch_grid(self, batch: SpikeTrainBatch) -> None:
        if not isinstance(batch, SpikeTrainBatch):
            raise IdentificationError(
                f"expected SpikeTrainBatch, got {type(batch).__name__}"
            )
        if batch.grid != self.basis.grid:
            raise IdentificationError(
                "batch lives on a different grid than the basis: "
                f"{batch.grid.describe()} vs {self.basis.grid.describe()}"
            )


def detection_latency_samples(
    basis: HyperspaceBasis,
    element,
    n_trials: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Latency (samples) from a random start to the element's next spike.

    Draws ``n_trials`` uniform observation-start slots and measures how
    long a correlator waits for the first spike of the element's
    reference train — the paper's "first coincident spike" delay.  Starts
    falling after the element's last spike are redrawn (censored), so the
    returned array always holds ``n_trials`` finite latencies.
    """
    index = basis.index_of(element)
    spikes = basis.trains[index].indices
    if spikes.size == 0:
        raise IdentificationError(
            f"element {basis.labels[index]!r} has no spikes; latency undefined"
        )
    latencies = np.empty(n_trials, dtype=np.int64)
    filled = 0
    last = spikes[-1]
    while filled < n_trials:
        starts = rng.integers(0, basis.grid.n_samples, size=n_trials - filled)
        starts = starts[starts <= last]
        if starts.size == 0:
            continue
        positions = np.searchsorted(spikes, starts)
        hits = spikes[positions] - starts
        take = min(hits.size, n_trials - filled)
        latencies[filled : filled + take] = hits[:take]
        filled += take
    return latencies
