"""Address-based spike routing over neuro-bit addresses.

The paper's foundational reference (Bezrukov & Kish, "Deterministic
multivalued logic scheme for information processing and *routing* in the
brain") frames the spike scheme as a routing fabric: an address carried
as a neuro-bit selects where a payload goes, and the first coincident
address spike is enough to switch the route.

* :class:`SpikeRouter` — one M-way switch: identifies the address wire
  against an M-element hyperspace and forwards the payload wire to that
  port, reporting when the route was established;
* :class:`RoutingFabric` — a tree of routers using one address *digit*
  per stage (radix-M hierarchical addressing), delivering a payload to
  one of ``M^depth`` leaves with per-stage decision times.

Everything is exact: a wrong delivery is impossible on clean wires
because addresses are orthogonal reference trains (tests assert this
exhaustively), and injected noise is handled by the correlator's
majority vote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import LogicError
from ..hyperspace.basis import HyperspaceBasis
from ..spikes.train import SpikeTrain
from .correlator import CoincidenceCorrelator

__all__ = ["RouteDecision", "SpikeRouter", "RoutingFabric", "FabricDelivery"]


@dataclass(frozen=True)
class RouteDecision:
    """Outcome of one routing step.

    Attributes
    ----------
    port:
        Output port index (= identified address element).
    payload:
        The forwarded payload wire.
    decision_slot:
        Slot at which the route was established (the first coincident
        address spike — the switch's latency).
    """

    port: int
    payload: SpikeTrain
    decision_slot: int


class SpikeRouter:
    """An M-way payload switch addressed by a neuro-bit.

    Parameters
    ----------
    address_basis:
        Hyperspace whose M elements name the M output ports.
    """

    def __init__(self, address_basis: HyperspaceBasis) -> None:
        self.address_basis = address_basis
        self._correlator = CoincidenceCorrelator(address_basis)

    @property
    def n_ports(self) -> int:
        """Number of output ports M."""
        return self.address_basis.size

    def route(
        self,
        address: SpikeTrain,
        payload: SpikeTrain,
        start_slot: int = 0,
        votes: int = 1,
    ) -> RouteDecision:
        """Forward ``payload`` to the port named by ``address``.

        The payload is gated: only its spikes *after* the routing
        decision are forwarded (a real switch cannot forward what passed
        before it knew the route).  With ``votes > 1`` the address is
        identified by majority, resisting injected spikes.
        """
        if votes == 1:
            result = self._correlator.identify(address, start_slot=start_slot)
        else:
            result = self._correlator.identify_robust(
                address, votes=votes, start_slot=start_slot
            )
        forwarded = payload.window(
            result.decision_slot, payload.grid.n_samples
        )
        return RouteDecision(
            port=result.element,
            payload=forwarded,
            decision_slot=result.decision_slot,
        )


@dataclass(frozen=True)
class FabricDelivery:
    """Outcome of routing through a fabric.

    Attributes
    ----------
    leaf:
        Delivered leaf index in ``[0, M^depth)``.
    payload:
        The payload as it arrives at the leaf (gated by every stage).
    stage_slots:
        Decision slot of each stage, in routing order.
    """

    leaf: int
    payload: SpikeTrain
    stage_slots: Tuple[int, ...]

    @property
    def total_latency_slot(self) -> int:
        """Slot at which the final stage settled."""
        return self.stage_slots[-1]


class RoutingFabric:
    """A radix-M routing tree of the given depth.

    Stage d consumes address digit d (most significant first).  All
    stages share one address hyperspace; each stage has its own address
    wire, so a full destination address is ``depth`` neuro-bit wires —
    or, equivalently, one wire per stage of a packet's header.
    """

    def __init__(self, address_basis: HyperspaceBasis, depth: int) -> None:
        if depth < 1:
            raise LogicError(f"depth must be >= 1, got {depth}")
        self.depth = depth
        self.router = SpikeRouter(address_basis)

    @property
    def n_leaves(self) -> int:
        """Number of deliverable leaves, ``M^depth``."""
        return self.router.n_ports**self.depth

    def leaf_of_digits(self, digits: Sequence[int]) -> int:
        """Leaf index addressed by the digit sequence (MSD first)."""
        if len(digits) != self.depth:
            raise LogicError(
                f"expected {self.depth} address digits, got {len(digits)}"
            )
        leaf = 0
        for digit in digits:
            if not (0 <= digit < self.router.n_ports):
                raise LogicError(
                    f"address digit {digit} outside [0, {self.router.n_ports})"
                )
            leaf = leaf * self.router.n_ports + digit
        return leaf

    def deliver(
        self,
        address_wires: Sequence[SpikeTrain],
        payload: SpikeTrain,
        votes: int = 1,
    ) -> FabricDelivery:
        """Route ``payload`` through all stages.

        ``address_wires[d]`` carries stage d's digit.  Each stage starts
        identifying only after the previous stage settled (the packet
        physically arrives there later), so stage slots are
        non-decreasing.
        """
        if len(address_wires) != self.depth:
            raise LogicError(
                f"expected {self.depth} address wires, got {len(address_wires)}"
            )
        slots: List[int] = []
        digits: List[int] = []
        current_payload = payload
        start = 0
        for wire in address_wires:
            decision = self.router.route(
                wire, current_payload, start_slot=start, votes=votes
            )
            slots.append(decision.decision_slot)
            digits.append(decision.port)
            current_payload = decision.payload
            start = decision.decision_slot
        return FabricDelivery(
            leaf=self.leaf_of_digits(digits),
            payload=current_payload,
            stage_slots=tuple(slots),
        )
