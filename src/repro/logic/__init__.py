"""Deterministic logic over neuro-bit spike trains.

* :class:`CoincidenceCorrelator` — first-coincidence identification;
* :class:`TruthTableGate` + Boolean factories — elementary gates;
* multi-valued families (:func:`min_gate`, :func:`max_gate`,
  :func:`mod_sum_gate`, :func:`literal_gate`, ...);
* set operations on superposition wires (:func:`wire_union`, ...);
* sequential logic on spike packages (:class:`PackageClock`,
  :class:`SymbolStream`, :class:`MooreMachine`);
* netlists and synthesis (:class:`Circuit`, :func:`ripple_adder`,
  :func:`comparator`, :func:`multiplexer`, :func:`parity_circuit`).
"""

from .circuits import Circuit, CircuitTransmission, Node
from .correlator import (
    BatchDetection,
    BatchIdentification,
    CoincidenceCorrelator,
    IdentificationResult,
    detection_latency_samples,
)
from .fsm import FiniteStateMachine, lfsr_fsm, shift_register_fsm
from .gates import (
    GateTransmission,
    TruthTableGate,
    and_gate,
    buffer_gate,
    gate_from_function,
    nand_gate,
    nor_gate,
    not_gate,
    or_gate,
    xor_gate,
)
from .multivalued import (
    MultiValuedAlphabet,
    literal_gate,
    max_gate,
    min_gate,
    mod_product_gate,
    mod_sum_gate,
    negation_gate,
    successor_gate,
)
from .set_gates import SetTransmission, SetValuedGate
from .sequential import (
    MooreMachine,
    PackageClock,
    SymbolStream,
    accumulator_machine,
    counter_machine,
)
from .setops import (
    symbolic_difference,
    symbolic_intersection,
    symbolic_union,
    wire_complement,
    wire_difference,
    wire_intersection,
    wire_membership,
    wire_union,
)
from .routing import FabricDelivery, RouteDecision, RoutingFabric, SpikeRouter
from .sop import SopStatistics, sop_statistics, synthesize_sop
from .synthesis import (
    comparator,
    comparator_reference,
    digit_carry_gate,
    digit_sum_gate,
    multiplexer,
    parity_circuit,
    ripple_adder,
)
from .synthesis import adder_reference

__all__ = [
    "CoincidenceCorrelator",
    "BatchDetection",
    "BatchIdentification",
    "IdentificationResult",
    "detection_latency_samples",
    "TruthTableGate",
    "GateTransmission",
    "gate_from_function",
    "buffer_gate",
    "not_gate",
    "and_gate",
    "or_gate",
    "xor_gate",
    "nand_gate",
    "nor_gate",
    "MultiValuedAlphabet",
    "min_gate",
    "max_gate",
    "negation_gate",
    "mod_sum_gate",
    "mod_product_gate",
    "successor_gate",
    "literal_gate",
    "wire_union",
    "wire_intersection",
    "wire_difference",
    "wire_complement",
    "wire_membership",
    "symbolic_union",
    "symbolic_intersection",
    "symbolic_difference",
    "PackageClock",
    "SymbolStream",
    "MooreMachine",
    "counter_machine",
    "accumulator_machine",
    "Circuit",
    "CircuitTransmission",
    "Node",
    "ripple_adder",
    "adder_reference",
    "comparator",
    "comparator_reference",
    "multiplexer",
    "parity_circuit",
    "digit_sum_gate",
    "digit_carry_gate",
    "synthesize_sop",
    "SopStatistics",
    "sop_statistics",
    "SpikeRouter",
    "RouteDecision",
    "RoutingFabric",
    "FabricDelivery",
    "FiniteStateMachine",
    "shift_register_fsm",
    "lfsr_fsm",
    "SetValuedGate",
    "SetTransmission",
]
