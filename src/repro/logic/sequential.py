"""Sequential logic on the demultiplexer's spike packages.

Section 3(i): the demux orthogonator's outputs arrive in *packages* — M
consecutive input spikes, one per wire — and "when the M-th wire
outputted its k-th spike, we know that the previous M−1 spikes were
outputted on the other M−1 wires".  The package ordinal k is a discrete
*computer time* t_k, which "makes easy/natural to construct sequential
logic operations and networks".

This module realises that idea:

* :class:`PackageClock` — extracts the package timeline from a demux
  basis and maps slots to computer time;
* :class:`SymbolStream` — a time-division value stream: in package k the
  wire carries exactly the package-k spike of reference wire v_k, so a
  receiver recovers one symbol per package;
* :class:`MooreMachine` — a clocked state machine advancing once per
  package, plus ready-made :func:`counter_machine` and
  :func:`accumulator_machine` examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import LogicError
from ..orthogonator.base import OrthogonatorOutput
from ..orthogonator.demux import SpikePackage, spike_packages
from ..spikes.train import SpikeTrain

__all__ = [
    "PackageClock",
    "SymbolStream",
    "MooreMachine",
    "counter_machine",
    "accumulator_machine",
]


class PackageClock:
    """Computer time derived from a demux orthogonator's packages.

    Wraps the package list of a demux output and answers "which computer
    time does this slot belong to?" and "when is value v's slot in
    package k?".
    """

    def __init__(self, output: OrthogonatorOutput) -> None:
        self._output = output
        self._packages: List[SpikePackage] = spike_packages(output)
        if not self._packages:
            raise LogicError(
                "demux output contains no complete package; the source train "
                "is shorter than one package"
            )
        self._starts = np.asarray([p.start for p in self._packages], dtype=np.int64)
        self._ends = np.asarray([p.end for p in self._packages], dtype=np.int64)

    @property
    def n_packages(self) -> int:
        """Number of complete packages (ticks of computer time)."""
        return len(self._packages)

    @property
    def n_wires(self) -> int:
        """Number of demux wires M (symbols per package)."""
        return len(self._output.trains)

    @property
    def packages(self) -> Tuple[SpikePackage, ...]:
        """The package records in computer-time order."""
        return tuple(self._packages)

    def package_of_slot(self, slot: int) -> Optional[int]:
        """Computer time whose package spans ``slot`` (None outside all)."""
        position = int(np.searchsorted(self._starts, slot, side="right")) - 1
        if position < 0:
            return None
        if slot > self._ends[position]:
            return None
        return position

    def slot_of(self, package: int, wire: int) -> int:
        """Slot of wire ``wire`` (0-based) inside package ``package``."""
        if not (0 <= package < self.n_packages):
            raise LogicError(
                f"package {package} out of range [0, {self.n_packages})"
            )
        slots = self._packages[package].slots
        if not (0 <= wire < len(slots)):
            raise LogicError(f"wire {wire} out of range [0, {len(slots)})")
        return slots[wire]

    def tick_duration_samples(self) -> np.ndarray:
        """Span (samples) of each package — the variable clock period."""
        return self._ends - self._starts


class SymbolStream:
    """A sequence of values transmitted one per package on a single wire.

    Encoding: in package k, the wire carries *only* the spike that
    reference wire ``values[k]`` contributes to package k.  Decoding
    inverts this by locating, for each package, which wire's slot is
    occupied.  Packages beyond ``len(values)`` are left silent.
    """

    def __init__(self, clock: PackageClock) -> None:
        self.clock = clock

    def encode(self, values: Sequence[int]) -> SpikeTrain:
        """Wire signal carrying ``values[k]`` in package k."""
        if len(values) > self.clock.n_packages:
            raise LogicError(
                f"{len(values)} symbols but only {self.clock.n_packages} packages"
            )
        slots = []
        for k, value in enumerate(values):
            if not (0 <= value < self.clock.n_wires):
                raise LogicError(
                    f"symbol {value} at tick {k} outside alphabet "
                    f"[0, {self.clock.n_wires})"
                )
            slots.append(self.clock.slot_of(k, value))
        grid = self.clock._output.trains[0].grid
        return SpikeTrain(np.asarray(slots, dtype=np.int64), grid)

    def decode(self, wire: SpikeTrain) -> List[Optional[int]]:
        """Per-package symbols carried by ``wire`` (None for silent ticks).

        Raises :class:`LogicError` if a package contains spikes in more
        than one wire slot (a malformed stream) or if a spike falls in no
        package (foreign spike).
        """
        symbols: List[Optional[int]] = [None] * self.clock.n_packages
        for slot in wire.indices.tolist():
            package = self.clock.package_of_slot(slot)
            if package is None:
                raise LogicError(f"spike at slot {slot} falls outside every package")
            slots = self.clock.packages[package].slots
            try:
                wire_index = slots.index(slot)
            except ValueError:
                raise LogicError(
                    f"spike at slot {slot} is not any wire's package-"
                    f"{package} slot"
                ) from None
            if symbols[package] is not None and symbols[package] != wire_index:
                raise LogicError(
                    f"package {package} carries two symbols "
                    f"({symbols[package]} and {wire_index})"
                )
            symbols[package] = wire_index
        return symbols


@dataclass
class MooreMachine:
    """A Moore machine clocked by the package clock.

    ``transition(state, symbol) → state`` advances once per package;
    ``output(state) → symbol`` produces the emitted symbol *after* the
    tick.  Both state and symbols are integers in the wire alphabet so
    the machine's output can itself be re-encoded as a
    :class:`SymbolStream` (closing the loop for sequential networks).
    """

    transition: Callable[[int, int], int]
    output: Callable[[int], int]
    initial_state: int

    def run(self, symbols: Sequence[Optional[int]]) -> List[Optional[int]]:
        """Feed decoded symbols; silent ticks (None) hold the state."""
        state = self.initial_state
        emitted: List[Optional[int]] = []
        for symbol in symbols:
            if symbol is None:
                emitted.append(None)
                continue
            state = self.transition(state, symbol)
            emitted.append(self.output(state))
        return emitted

    def run_stream(self, stream: SymbolStream, wire: SpikeTrain) -> SpikeTrain:
        """Decode → run → re-encode: a physical sequential stage.

        Silent input ticks stay silent on the output.  The output symbol
        of tick k is emitted in package k (zero re-encode latency at the
        package granularity; within the package the output spike is the
        selected wire's slot, which always lies inside the package).
        """
        symbols = self.run(stream.decode(wire))
        slots = []
        for k, symbol in enumerate(symbols):
            if symbol is None:
                continue
            if not (0 <= symbol < stream.clock.n_wires):
                raise LogicError(
                    f"machine emitted symbol {symbol} outside the wire alphabet"
                )
            slots.append(stream.clock.slot_of(k, symbol))
        grid = stream.clock._output.trains[0].grid
        return SpikeTrain(np.asarray(slots, dtype=np.int64), grid)


def counter_machine(modulus: int) -> MooreMachine:
    """Counts non-silent ticks modulo ``modulus`` and emits the count."""
    if modulus < 1:
        raise LogicError(f"modulus must be >= 1, got {modulus}")
    return MooreMachine(
        transition=lambda state, _symbol: (state + 1) % modulus,
        output=lambda state: state,
        initial_state=0,
    )


def accumulator_machine(modulus: int) -> MooreMachine:
    """Accumulates input symbols modulo ``modulus`` and emits the sum."""
    if modulus < 1:
        raise LogicError(f"modulus must be >= 1, got {modulus}")
    return MooreMachine(
        transition=lambda state, symbol: (state + symbol) % modulus,
        output=lambda state: state,
        initial_state=0,
    )
