"""Inter-spike-interval and rate statistics.

Tables 1 and 2 of the paper report, for each spike train, the mean
inter-spike interval τ and its rms fluctuation Δτ, both as raw sample
counts and scaled to picoseconds.  :class:`IsiStatistics` packages those
numbers (plus a few extras used by the analysis layer) and knows how to
render itself in either unit system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import SpikeTrainError
from ..units import format_time
from .train import SpikeTrain

__all__ = [
    "IsiStatistics",
    "isi_statistics",
    "coincidence_count",
    "coincidence_rate",
    "cross_coincidence_matrix",
    "fano_factor",
    "rate_in_windows",
]


@dataclass(frozen=True)
class IsiStatistics:
    """Summary statistics of a spike train's inter-spike intervals.

    Attributes
    ----------
    n_spikes:
        Number of spikes in the record.
    mean_isi_samples / rms_isi_samples:
        τ and Δτ in sample counts (the paper's raw simulation numbers).
        Δτ is the *standard deviation* of the intervals ("rms fluctuation
        value" in the paper's wording).
    dt:
        Sample period, used to scale to seconds.
    """

    n_spikes: int
    mean_isi_samples: float
    rms_isi_samples: float
    dt: float

    @property
    def mean_isi_seconds(self) -> float:
        """τ in seconds."""
        return self.mean_isi_samples * self.dt

    @property
    def rms_isi_seconds(self) -> float:
        """Δτ in seconds."""
        return self.rms_isi_samples * self.dt

    @property
    def coefficient_of_variation(self) -> float:
        """Δτ / τ — 1 for a Poisson train, 0 for a periodic one."""
        if self.mean_isi_samples == 0:
            return math.nan
        return self.rms_isi_samples / self.mean_isi_samples

    @property
    def mean_rate(self) -> float:
        """1 / τ in spikes per second (NaN for fewer than two spikes)."""
        if self.mean_isi_seconds == 0 or math.isnan(self.mean_isi_seconds):
            return math.nan
        return 1.0 / self.mean_isi_seconds

    def format_row(self, label: str) -> str:
        """Render ``label  τ  Δτ`` the way the paper's tables do."""
        return (
            f"{label:<12s} τ = {self.mean_isi_samples:7.1f} samples "
            f"({format_time(self.mean_isi_seconds)})   "
            f"Δτ = {self.rms_isi_samples:7.1f} samples "
            f"({format_time(self.rms_isi_seconds)})"
        )


def isi_statistics(train: SpikeTrain) -> IsiStatistics:
    """Compute :class:`IsiStatistics` for a train (NaN τ if < 2 spikes)."""
    intervals = train.interspike_intervals().astype(float)
    if intervals.size == 0:
        return IsiStatistics(
            n_spikes=len(train),
            mean_isi_samples=math.nan,
            rms_isi_samples=math.nan,
            dt=train.grid.dt,
        )
    return IsiStatistics(
        n_spikes=len(train),
        mean_isi_samples=float(intervals.mean()),
        rms_isi_samples=float(intervals.std()),
        dt=train.grid.dt,
    )


def coincidence_count(a: SpikeTrain, b: SpikeTrain, window: int = 0) -> int:
    """Number of spikes of ``a`` within ``window`` samples of a ``b`` spike.

    With ``window = 0`` this is exact slot coincidence (the paper's
    notion).  A positive window models a physical coincidence detector
    with finite resolution.
    """
    if window < 0:
        raise SpikeTrainError(f"window must be non-negative, got {window}")
    if window == 0:
        return a.overlap_count(b)
    if len(a) == 0 or len(b) == 0:
        return 0
    b_idx = b.indices
    positions = np.searchsorted(b_idx, a.indices)
    count = 0
    for spike, pos in zip(a.indices, positions):
        left_ok = pos > 0 and spike - b_idx[pos - 1] <= window
        right_ok = pos < b_idx.size and b_idx[pos] - spike <= window
        if left_ok or right_ok:
            count += 1
    return count


def coincidence_rate(a: SpikeTrain, b: SpikeTrain, window: int = 0) -> float:
    """Fraction of ``a``'s spikes that coincide with ``b`` (NaN if empty)."""
    if len(a) == 0:
        return math.nan
    return coincidence_count(a, b, window=window) / len(a)


def cross_coincidence_matrix(trains: Sequence[SpikeTrain]) -> np.ndarray:
    """Pairwise exact-coincidence counts; diagonal holds spike counts.

    A basis is orthogonal iff this matrix is diagonal — the invariant the
    property-based tests assert for both orthogonator types.
    """
    n = len(trains)
    matrix = np.zeros((n, n), dtype=np.int64)
    for i in range(n):
        matrix[i, i] = len(trains[i])
        for j in range(i + 1, n):
            c = trains[i].overlap_count(trains[j])
            matrix[i, j] = c
            matrix[j, i] = c
    return matrix


def fano_factor(train: SpikeTrain, window_samples: int) -> float:
    """Variance-to-mean ratio of spike counts in fixed windows.

    1 for a Poisson process, < 1 for more regular trains (e.g. the
    demultiplexer outputs, which cannot fire twice within a package).
    """
    if window_samples <= 0:
        raise SpikeTrainError(f"window_samples must be positive, got {window_samples}")
    counts = rate_in_windows(train, window_samples)
    if counts.size == 0:
        return math.nan
    mean = counts.mean()
    if mean == 0:
        return math.nan
    return float(counts.var() / mean)


def rate_in_windows(train: SpikeTrain, window_samples: int) -> np.ndarray:
    """Spike counts in consecutive windows of ``window_samples`` samples."""
    if window_samples <= 0:
        raise SpikeTrainError(f"window_samples must be positive, got {window_samples}")
    n_windows = train.grid.n_samples // window_samples
    if n_windows == 0:
        return np.empty(0, dtype=np.int64)
    edges = np.arange(0, (n_windows + 1) * window_samples, window_samples)
    counts, _unused = np.histogram(train.indices, bins=edges)
    return counts.astype(np.int64)
