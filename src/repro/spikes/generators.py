"""Synthetic spike-train generators (Poisson, periodic, jittered).

These generators are the *comparison points* for the paper's
noise-derived trains:

* periodic trains are the Section 6 baseline whose time-shifted copies
  alias onto each other;
* Poisson trains are the memoryless ideal against which the
  zero-crossing trains' regularity is measured (zero crossings of
  band-limited noise are *not* Poisson — successive intervals are
  correlated through the autocorrelation of the noise);
* jittered periodic trains interpolate between the two regimes.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..units import SimulationGrid
from .train import SpikeTrain

__all__ = [
    "poisson_train",
    "periodic_train",
    "jittered_periodic_train",
    "bernoulli_train",
    "renewal_train",
]


def poisson_train(
    rate_hz: float,
    grid: SimulationGrid,
    rng: np.random.Generator,
) -> SpikeTrain:
    """Homogeneous Poisson spike train of the given rate on ``grid``.

    Implemented as a per-slot Bernoulli draw with probability
    ``rate_hz * dt`` (requires ``rate_hz * dt <= 1``), which converges to
    Poisson statistics for small per-slot probability and keeps at most
    one spike per slot — the representation's invariant.
    """
    p = rate_hz * grid.dt
    if not (0.0 <= p <= 1.0):
        raise ConfigurationError(
            f"rate {rate_hz} Hz gives per-slot probability {p:.3g} outside [0, 1]"
        )
    hits = rng.random(grid.n_samples) < p
    return SpikeTrain(np.flatnonzero(hits), grid)


def bernoulli_train(
    per_slot_probability: float,
    grid: SimulationGrid,
    rng: np.random.Generator,
) -> SpikeTrain:
    """Per-slot Bernoulli train with explicit slot probability."""
    if not (0.0 <= per_slot_probability <= 1.0):
        raise ConfigurationError(
            f"per_slot_probability must lie in [0, 1], got {per_slot_probability}"
        )
    hits = rng.random(grid.n_samples) < per_slot_probability
    return SpikeTrain(np.flatnonzero(hits), grid)


def periodic_train(
    period_samples: int,
    grid: SimulationGrid,
    phase_samples: int = 0,
) -> SpikeTrain:
    """Strictly periodic train: spikes at ``phase + k * period``.

    The phase is reduced modulo the period, so any two trains with the
    same period are time-shifted copies of each other — the aliasing
    hazard of Section 6.
    """
    if period_samples <= 0:
        raise ConfigurationError(
            f"period_samples must be positive, got {period_samples}"
        )
    phase = phase_samples % period_samples
    return SpikeTrain(np.arange(phase, grid.n_samples, period_samples), grid)


def jittered_periodic_train(
    period_samples: int,
    max_jitter: int,
    grid: SimulationGrid,
    rng: np.random.Generator,
    phase_samples: int = 0,
) -> SpikeTrain:
    """Periodic train with per-spike uniform jitter in ±``max_jitter``."""
    base = periodic_train(period_samples, grid, phase_samples=phase_samples)
    return base.jittered(max_jitter, rng)


def renewal_train(
    mean_isi_samples: float,
    cv: float,
    grid: SimulationGrid,
    rng: np.random.Generator,
) -> SpikeTrain:
    """Gamma-renewal train with the given mean ISI and coefficient of variation.

    ``cv = 1`` reproduces exponential (Poisson-like) intervals, ``cv < 1``
    regular trains, ``cv > 1`` bursty ones.  Useful for sweeping the
    identification layer's sensitivity to interval statistics.
    """
    if mean_isi_samples <= 0:
        raise ConfigurationError(
            f"mean_isi_samples must be positive, got {mean_isi_samples}"
        )
    if cv <= 0:
        raise ConfigurationError(f"cv must be positive, got {cv}")
    shape = 1.0 / (cv * cv)
    scale = mean_isi_samples / shape
    # Draw enough intervals to cover the record with margin.
    expected = int(grid.n_samples / mean_isi_samples) + 16
    indices = []
    position = 0.0
    while True:
        intervals = rng.gamma(shape, scale, size=expected)
        for interval in intervals:
            position += max(interval, 1.0)
            if position >= grid.n_samples:
                return SpikeTrain(np.asarray(indices, dtype=np.int64), grid)
            indices.append(int(position))
