"""Zero-crossing spike generation from analog noise records.

The paper derives its random spike trains from "the zero-crossing events
of uncorrelated Gaussian electrical noises": each time the noise signal
crosses zero, a comparator emits a spike.  Three detector variants are
provided:

* :class:`AllCrossingDetector` — a spike at every sign change (the
  paper's generator: its white-noise rate matches Rice's formula for all
  crossings, ~90 ps mean ISI for the 5 MHz–10 GHz band);
* :class:`UpCrossingDetector` — only negative-to-positive crossings
  (half the rate);
* :class:`HysteresisDetector` — a Schmitt-trigger comparator that
  suppresses rapid re-crossings caused by small-amplitude chatter, the
  realistic circuit implementation.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..units import SimulationGrid
from .train import SpikeTrain

__all__ = [
    "ZeroCrossingDetector",
    "AllCrossingDetector",
    "UpCrossingDetector",
    "DownCrossingDetector",
    "HysteresisDetector",
    "zero_crossings",
]


class ZeroCrossingDetector:
    """Base class: turns an analog record into a :class:`SpikeTrain`."""

    def detect(self, record: np.ndarray, grid: SimulationGrid) -> SpikeTrain:
        """Return the spike train extracted from ``record`` on ``grid``."""
        record = np.asarray(record, dtype=float)
        if record.shape != (grid.n_samples,):
            raise ConfigurationError(
                f"record shape {record.shape} does not match grid "
                f"({grid.n_samples} samples)"
            )
        return SpikeTrain(self._crossing_indices(record), grid)

    def _crossing_indices(self, record: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _signs(record: np.ndarray) -> np.ndarray:
        """Sign sequence with exact zeros attached to the preceding sign.

        Treating a zero sample as belonging to the previous polarity
        prevents a single touching-zero sample from being counted as two
        crossings.
        """
        signs = np.sign(record)
        # Propagate the last non-zero sign forward over exact zeros.
        if np.any(signs == 0):
            nonzero = signs != 0
            idx = np.where(nonzero, np.arange(signs.size), -1)
            np.maximum.accumulate(idx, out=idx)
            filled = np.where(idx >= 0, signs[np.maximum(idx, 0)], 1.0)
            signs = filled
        return signs


class AllCrossingDetector(ZeroCrossingDetector):
    """A spike at every sign change (both crossing directions).

    The spike is assigned to the *first sample after* the crossing, i.e.
    index ``i`` such that ``sign(x[i]) != sign(x[i-1])``.
    """

    def _crossing_indices(self, record: np.ndarray) -> np.ndarray:
        signs = self._signs(record)
        return np.flatnonzero(signs[1:] != signs[:-1]) + 1


class UpCrossingDetector(ZeroCrossingDetector):
    """A spike at each negative-to-positive crossing only."""

    def _crossing_indices(self, record: np.ndarray) -> np.ndarray:
        signs = self._signs(record)
        return np.flatnonzero((signs[:-1] < 0) & (signs[1:] > 0)) + 1


class DownCrossingDetector(ZeroCrossingDetector):
    """A spike at each positive-to-negative crossing only."""

    def _crossing_indices(self, record: np.ndarray) -> np.ndarray:
        signs = self._signs(record)
        return np.flatnonzero((signs[:-1] > 0) & (signs[1:] < 0)) + 1


class HysteresisDetector(ZeroCrossingDetector):
    """Schmitt-trigger comparator with symmetric thresholds ``±threshold``.

    The detector keeps an internal binary state.  It flips high when the
    signal exceeds ``+threshold`` and low when it drops below
    ``-threshold``; each flip emits a spike.  With ``threshold = 0`` it
    reduces to :class:`AllCrossingDetector` (up to zero-sample handling).
    Hysteresis suppresses spurious double spikes from noise riding near
    zero — the behaviour a physical comparator would show.
    """

    def __init__(self, threshold: float) -> None:
        if threshold < 0:
            raise ConfigurationError(f"threshold must be non-negative, got {threshold}")
        self.threshold = float(threshold)

    def _crossing_indices(self, record: np.ndarray) -> np.ndarray:
        if self.threshold == 0.0:
            return AllCrossingDetector()._crossing_indices(record)
        high = record >= self.threshold
        low = record <= -self.threshold
        # State machine: +1 after exceeding +T, -1 after dropping below -T.
        # Vectorised via a forward fill over the event sequence.
        events = np.zeros(record.size, dtype=np.int8)
        events[high] = 1
        events[low] = -1
        nonzero = events != 0
        if not nonzero.any():
            return np.empty(0, dtype=np.int64)
        pos = np.where(nonzero, np.arange(record.size), -1)
        np.maximum.accumulate(pos, out=pos)
        state = np.where(pos >= 0, events[np.maximum(pos, 0)], 0)
        flips = np.flatnonzero((state[1:] != state[:-1]) & (state[1:] != 0)) + 1
        # Drop the initial arming transition from the unknown (0) state:
        # a flip only counts when the previous state was the opposite level.
        valid = state[flips - 1] == -state[flips]
        return flips[valid].astype(np.int64)


def zero_crossings(
    record: np.ndarray,
    grid: SimulationGrid,
    direction: str = "both",
) -> SpikeTrain:
    """Functional shortcut: extract zero-crossing spikes from a record.

    ``direction`` is one of ``"both"`` (paper default), ``"up"`` or
    ``"down"``.
    """
    detectors = {
        "both": AllCrossingDetector,
        "up": UpCrossingDetector,
        "down": DownCrossingDetector,
    }
    if direction not in detectors:
        raise ConfigurationError(
            f"direction must be one of {sorted(detectors)}, got {direction!r}"
        )
    return detectors[direction]().detect(record, grid)
