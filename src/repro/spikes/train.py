"""The :class:`SpikeTrain` data structure.

A spike train is a set of spike *slots*: integer sample indices on a
:class:`~repro.units.SimulationGrid`.  The paper's logic identifies basis
elements by exact spike coincidence, so the natural representation is a
sorted, duplicate-free integer array plus the grid that maps indices to
physical time.  Set algebra (union, intersection, difference) over slots
is what the intersection-based orthogonator computes, and orthogonality
("non-overlapping") is simply an empty slot intersection.

The scalar type is the sparse end of the backend layer: set operations
route through :func:`~repro.backend.core.select_backend` (merge when
sparse, a dense pass when the operands occupy enough of the grid), and
:meth:`SpikeTrain.to_batch` lifts a train into a
:class:`~repro.backend.batch.SpikeTrainBatch` when whole-record
vectorised work is wanted.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..backend.core import select_backend
from ..errors import SpikeTrainError
from ..units import SimulationGrid

__all__ = ["SpikeTrain"]


class SpikeTrain:
    """An immutable set of spike slots on a simulation grid.

    Parameters
    ----------
    indices:
        Sample indices of the spikes.  They are validated (integral,
        sorted after normalisation, unique, within ``[0, n_samples)``).
    grid:
        The grid giving each index a physical time ``index * dt``.

    Notes
    -----
    Instances behave like immutable ordered sets: they support ``len``,
    iteration, ``in`` (O(log n)), equality, and the set operators ``|``
    (union), ``&`` (intersection), ``-`` (difference) and ``^``
    (symmetric difference), all of which require matching grids.
    """

    __slots__ = ("_indices", "_grid")

    def __init__(self, indices, grid: SimulationGrid) -> None:
        arr = np.asarray(indices)
        if arr.size and not np.issubdtype(arr.dtype, np.integer):
            float_arr = np.asarray(indices, dtype=float)
            if not np.all(float_arr == np.round(float_arr)):
                raise SpikeTrainError("spike indices must be integral")
            arr = float_arr.astype(np.int64)
        arr = np.unique(arr.astype(np.int64, copy=False))
        if arr.size:
            if arr[0] < 0:
                raise SpikeTrainError(f"negative spike index: {arr[0]}")
            if arr[-1] >= grid.n_samples:
                raise SpikeTrainError(
                    f"spike index {arr[-1]} outside grid of {grid.n_samples} samples"
                )
        arr.setflags(write=False)
        self._indices = arr
        self._grid = grid

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def _from_sorted_unique(cls, indices: np.ndarray, grid: SimulationGrid) -> "SpikeTrain":
        """Wrap an already sorted, unique, in-range int64 array unchecked.

        Fast path for the set-algebra backends and
        :class:`~repro.backend.batch.SpikeTrainBatch` rows, whose
        outputs satisfy the invariants by construction.
        """
        train = cls.__new__(cls)
        indices = np.asarray(indices, dtype=np.int64)
        indices.setflags(write=False)
        train._indices = indices
        train._grid = grid
        return train

    @classmethod
    def empty(cls, grid: SimulationGrid) -> "SpikeTrain":
        """A train with no spikes."""
        return cls(np.empty(0, dtype=np.int64), grid)

    @classmethod
    def from_times(cls, times, grid: SimulationGrid) -> "SpikeTrain":
        """Build from physical times (seconds), rounding to grid slots.

        Times are validated up front: anything that would round to a
        slot outside ``[0, n_samples)`` — including slightly negative
        times — raises :class:`SpikeTrainError` naming the offending
        time and the grid, instead of surfacing as a cryptic
        "negative spike index" error downstream.
        """
        times = np.asarray(times, dtype=float)
        if times.size and not np.all(np.isfinite(times)):
            bad = times[~np.isfinite(times)][0]
            raise SpikeTrainError(f"non-finite spike time: {bad}")
        indices = np.round(times / grid.dt).astype(np.int64)
        if times.size:
            out_of_range = (indices < 0) | (indices >= grid.n_samples)
            if np.any(out_of_range):
                offender = times[out_of_range][0]
                raise SpikeTrainError(
                    f"spike time {offender:g} s falls outside "
                    f"[0, {grid.duration:g}) s on {grid.describe()}"
                )
        return cls(indices, grid)

    @classmethod
    def from_raster(cls, raster: np.ndarray, grid: SimulationGrid) -> "SpikeTrain":
        """Build from a dense boolean occupancy array of length n_samples."""
        raster = np.asarray(raster, dtype=bool)
        if raster.shape != (grid.n_samples,):
            raise SpikeTrainError(
                f"raster shape {raster.shape} does not match grid "
                f"({grid.n_samples} samples)"
            )
        return cls(np.flatnonzero(raster), grid)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def indices(self) -> np.ndarray:
        """Read-only sorted array of spike slots."""
        return self._indices

    @property
    def grid(self) -> SimulationGrid:
        """The grid this train lives on."""
        return self._grid

    @property
    def times(self) -> np.ndarray:
        """Physical spike times in seconds."""
        return self._indices * self._grid.dt

    def to_batch(self) -> "object":
        """This train as a one-row :class:`~repro.backend.batch.SpikeTrainBatch`.

        Thin adapter onto the vectorised backend layer; the import is
        deferred because the batch module builds on this one.
        """
        from ..backend.batch import SpikeTrainBatch

        return SpikeTrainBatch.from_train(self)

    def to_raster(self) -> np.ndarray:
        """Dense boolean occupancy array of length ``grid.n_samples``."""
        raster = np.zeros(self._grid.n_samples, dtype=bool)
        raster[self._indices] = True
        return raster

    def __len__(self) -> int:
        return int(self._indices.size)

    def __iter__(self) -> Iterator[int]:
        return iter(self._indices.tolist())

    def __contains__(self, index) -> bool:
        idx = int(index)
        pos = np.searchsorted(self._indices, idx)
        return bool(pos < self._indices.size and self._indices[pos] == idx)

    def __eq__(self, other) -> bool:
        if not isinstance(other, SpikeTrain):
            return NotImplemented
        return self._grid == other._grid and np.array_equal(
            self._indices, other._indices
        )

    def __hash__(self) -> int:
        return hash((self._grid, self._indices.tobytes()))

    def __repr__(self) -> str:
        return f"SpikeTrain(n={len(self)}, grid={self._grid.describe()})"

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------

    def _check_same_grid(self, other: "SpikeTrain") -> None:
        if not isinstance(other, SpikeTrain):
            raise SpikeTrainError(f"expected SpikeTrain, got {type(other).__name__}")
        if other._grid != self._grid:
            raise SpikeTrainError(
                "set operations require both trains on the same grid: "
                f"{self._grid.describe()} vs {other._grid.describe()}"
            )

    def _backend_for(self, other: "SpikeTrain"):
        return select_backend(
            self._indices.size + other._indices.size, self._grid.n_samples
        )

    def union(self, other: "SpikeTrain") -> "SpikeTrain":
        """Spikes present in either train (the OR / set-union wire)."""
        self._check_same_grid(other)
        merged = self._backend_for(other).union(
            self._indices, other._indices, self._grid.n_samples
        )
        return SpikeTrain._from_sorted_unique(merged, self._grid)

    def intersection(self, other: "SpikeTrain") -> "SpikeTrain":
        """Spikes present in both trains (the coincidence product)."""
        self._check_same_grid(other)
        shared = self._backend_for(other).intersection(
            self._indices, other._indices, self._grid.n_samples
        )
        return SpikeTrain._from_sorted_unique(shared, self._grid)

    def difference(self, other: "SpikeTrain") -> "SpikeTrain":
        """Spikes of this train not coinciding with ``other``."""
        self._check_same_grid(other)
        kept = self._backend_for(other).difference(
            self._indices, other._indices, self._grid.n_samples
        )
        return SpikeTrain._from_sorted_unique(kept, self._grid)

    def symmetric_difference(self, other: "SpikeTrain") -> "SpikeTrain":
        """Spikes present in exactly one of the two trains."""
        self._check_same_grid(other)
        exclusive = self._backend_for(other).symmetric_difference(
            self._indices, other._indices, self._grid.n_samples
        )
        return SpikeTrain._from_sorted_unique(exclusive, self._grid)

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __xor__ = symmetric_difference

    def overlap_count(self, other: "SpikeTrain") -> int:
        """Number of coincident slots shared with ``other``."""
        return len(self.intersection(other))

    def is_orthogonal_to(self, other: "SpikeTrain") -> bool:
        """True when the trains never share a spike slot."""
        return self.overlap_count(other) == 0

    def is_subset_of(self, other: "SpikeTrain") -> bool:
        """True when every spike of this train coincides with ``other``."""
        self._check_same_grid(other)
        return self.overlap_count(other) == len(self)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def shifted(self, offset: int, wrap: bool = False) -> "SpikeTrain":
        """Delay (positive offset) or advance (negative) all spikes.

        Without ``wrap``, spikes shifted off the grid are dropped — the
        physical behaviour of a delay line observed over a finite window.
        With ``wrap``, indices wrap modulo the record length, which keeps
        spike counts constant and is the right model for the periodic
        aliasing study of Section 6.
        """
        if not self._indices.size:
            return self
        shifted = self._indices + int(offset)
        if wrap:
            shifted = np.mod(shifted, self._grid.n_samples)
        else:
            shifted = shifted[(shifted >= 0) & (shifted < self._grid.n_samples)]
        return SpikeTrain(shifted, self._grid)

    def window(self, start: int, stop: int) -> "SpikeTrain":
        """Restrict to spikes with ``start <= index < stop`` (same grid)."""
        if start > stop:
            raise SpikeTrainError(f"empty window bounds: [{start}, {stop})")
        lo = np.searchsorted(self._indices, start, side="left")
        hi = np.searchsorted(self._indices, stop, side="left")
        return SpikeTrain(self._indices[lo:hi], self._grid)

    def first_spike_index(self) -> Optional[int]:
        """Index of the earliest spike, or None for an empty train."""
        if not self._indices.size:
            return None
        return int(self._indices[0])

    def first_spike_time(self) -> Optional[float]:
        """Time (seconds) of the earliest spike, or None if empty."""
        first = self.first_spike_index()
        if first is None:
            return None
        return first * self._grid.dt

    def jittered(self, max_jitter: int, rng: np.random.Generator) -> "SpikeTrain":
        """Displace each spike by a uniform integer in ``[-max_jitter, max_jitter]``.

        Spikes jittered off the grid are dropped; colliding spikes merge.
        Models timing noise from processing/environmental variations.
        """
        if max_jitter < 0:
            raise SpikeTrainError(f"max_jitter must be non-negative, got {max_jitter}")
        if max_jitter == 0 or not self._indices.size:
            return self
        jitter = rng.integers(-max_jitter, max_jitter + 1, size=self._indices.size)
        moved = self._indices + jitter
        moved = moved[(moved >= 0) & (moved < self._grid.n_samples)]
        return SpikeTrain(moved, self._grid)

    def thinned(self, keep_probability: float, rng: np.random.Generator) -> "SpikeTrain":
        """Randomly keep each spike with probability ``keep_probability``.

        Models missed detections; used by robustness/failure-injection
        tests on the identification layer.
        """
        if not (0.0 <= keep_probability <= 1.0):
            raise SpikeTrainError(
                f"keep_probability must lie in [0, 1], got {keep_probability}"
            )
        if keep_probability == 1.0 or not self._indices.size:
            return self
        keep = rng.random(self._indices.size) < keep_probability
        return SpikeTrain(self._indices[keep], self._grid)

    # ------------------------------------------------------------------
    # Statistics shortcuts (full versions in repro.spikes.statistics)
    # ------------------------------------------------------------------

    def interspike_intervals(self) -> np.ndarray:
        """Inter-spike intervals in *samples* (length ``len(self) - 1``)."""
        return np.diff(self._indices)

    def mean_rate(self) -> float:
        """Mean spike rate in spikes per second over the full record."""
        return len(self) / self._grid.duration
