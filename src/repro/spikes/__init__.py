"""Spike-train substrate: data structures, detectors, statistics.

Public surface:

* :class:`SpikeTrain` — immutable set of spike slots with set algebra;
* zero-crossing detectors (:func:`zero_crossings`,
  :class:`AllCrossingDetector`, :class:`UpCrossingDetector`,
  :class:`HysteresisDetector`);
* statistics (:func:`isi_statistics`, :func:`coincidence_count`,
  :func:`cross_coincidence_matrix`, :func:`fano_factor`);
* synthetic generators (:func:`poisson_train`, :func:`periodic_train`,
  :func:`jittered_periodic_train`, :func:`renewal_train`).
"""

from .generators import (
    bernoulli_train,
    jittered_periodic_train,
    periodic_train,
    poisson_train,
    renewal_train,
)
from .statistics import (
    IsiStatistics,
    coincidence_count,
    coincidence_rate,
    cross_coincidence_matrix,
    fano_factor,
    isi_statistics,
    rate_in_windows,
)
from .train import SpikeTrain
from .zero_crossing import (
    AllCrossingDetector,
    DownCrossingDetector,
    HysteresisDetector,
    UpCrossingDetector,
    ZeroCrossingDetector,
    zero_crossings,
)

__all__ = [
    "SpikeTrain",
    "ZeroCrossingDetector",
    "AllCrossingDetector",
    "UpCrossingDetector",
    "DownCrossingDetector",
    "HysteresisDetector",
    "zero_crossings",
    "IsiStatistics",
    "isi_statistics",
    "coincidence_count",
    "coincidence_rate",
    "cross_coincidence_matrix",
    "fano_factor",
    "rate_in_windows",
    "poisson_train",
    "periodic_train",
    "jittered_periodic_train",
    "bernoulli_train",
    "renewal_train",
]
