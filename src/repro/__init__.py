"""repro — noise-based neuro-bit spike logic.

A full reproduction of *"Towards Brain-inspired Computing"* (Gingl,
Khatri, Kish): deterministic multi-valued logic whose values are
orthogonal random spike trains ("neuro-bits") derived from the
zero-crossing events of band-limited Gaussian noises.

Layers (bottom-up):

* :mod:`repro.noise` — band-limited Gaussian noise synthesis, correlated
  sources, PSD estimation;
* :mod:`repro.spikes` — spike-train data structures, zero-crossing
  detectors, statistics, synthetic generators;
* :mod:`repro.backend` — vectorised batch execution: ``SpikeTrainBatch``
  (N trains × T slots with CSR, word-aligned packed-bitset and raster
  forms, the bitset compute-primary), the bit-parallel packed kernels,
  the pluggable set-algebra backends (sorted-merge, raster, bitset —
  auto-selected by density and residency) behind ``SpikeTrain`` and
  the hot paths, and the zero-copy shared-memory arenas sharded runs
  dispatch through;
* :mod:`repro.orthogonator` — the paper's core circuits (demultiplexer-
  based and intersection-based orthogonators, rate homogenization);
* :mod:`repro.hyperspace` — orthogonal reference bases, superpositions;
* :mod:`repro.logic` — coincidence correlators, Boolean and multi-valued
  gates, set operations, sequential logic, circuits and synthesis;
* :mod:`repro.simulator` — event-driven spike-circuit simulation;
* :mod:`repro.baselines` — continuum-noise, sinusoidal and periodic
  comparison schemes;
* :mod:`repro.energy` — thermal-noise energy models;
* :mod:`repro.experiments` — drivers reproducing every table, figure
  and quantitative claim of the paper;
* :mod:`repro.pipeline` — the execution layer: the experiment registry,
  the sharded parallel :class:`~repro.pipeline.runner.Runner` and the
  JSON/text :class:`~repro.pipeline.store.ArtifactStore` behind
  ``repro run``;
* :mod:`repro.serving` — the packed-bitset RPC boundary behind
  ``repro serve``: a versioned binary protocol whose payload is the
  bitset itself, an asyncio front-end sharding requests onto the
  runner's pool, and the reference client (``docs/serving.md``).

Quickstart::

    from repro import build_demux_basis, CoincidenceCorrelator

    basis = build_demux_basis(4, rng=42)        # 4-valued hyperspace
    wire = basis.encode(2)                      # transmit value 2
    result = CoincidenceCorrelator(basis).identify(wire)
    assert result.element == 2                  # first spike decides
"""

from .backend import (
    SpikeTrainBatch,
    available_backends,
    get_backend,
    select_backend,
    set_default_backend,
    use_backend,
)
from .errors import (
    ConfigurationError,
    HyperspaceError,
    IdentificationError,
    LogicError,
    OrthogonalityError,
    PipelineError,
    ReproError,
    SimulationError,
    SpectrumError,
    SpikeTrainError,
    SynthesisError,
)
from .pipeline import ArtifactStore, Runner
from .hyperspace import (
    HyperspaceBasis,
    Superposition,
    build_demux_basis,
    build_intersection_basis,
    decode_superposition,
)
from .logic import (
    Circuit,
    CoincidenceCorrelator,
    IdentificationResult,
    MooreMachine,
    PackageClock,
    SymbolStream,
    TruthTableGate,
    and_gate,
    gate_from_function,
    max_gate,
    min_gate,
    mod_sum_gate,
    not_gate,
    or_gate,
    ripple_adder,
    xor_gate,
)
from .noise import (
    Band,
    NoiseSource,
    NoiseSynthesizer,
    PinkSpectrum,
    WhiteSpectrum,
    paper_pink_source,
    paper_white_source,
)
from .orthogonator import (
    DemuxOrthogonator,
    IntersectionOrthogonator,
    OrthogonatorOutput,
    spike_packages,
)
from .hyperspace.codec import NeuroBitCodec
from .logic.routing import RoutingFabric, SpikeRouter
from .search import (
    SuperpositionDatabase,
    grover_search,
    linear_scan,
    linear_scan_batch,
    verify_equality,
    verify_subset,
)
from .spikes import SpikeTrain, isi_statistics, zero_crossings
from .units import SimulationGrid, paper_pink_grid, paper_white_grid

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "SpectrumError",
    "SpikeTrainError",
    "OrthogonalityError",
    "HyperspaceError",
    "LogicError",
    "IdentificationError",
    "SimulationError",
    "SynthesisError",
    "PipelineError",
    # units
    "SimulationGrid",
    "paper_white_grid",
    "paper_pink_grid",
    # noise
    "Band",
    "WhiteSpectrum",
    "PinkSpectrum",
    "NoiseSynthesizer",
    "NoiseSource",
    "paper_white_source",
    "paper_pink_source",
    # spikes
    "SpikeTrain",
    "zero_crossings",
    "isi_statistics",
    # backend
    "SpikeTrainBatch",
    "available_backends",
    "get_backend",
    "select_backend",
    "set_default_backend",
    "use_backend",
    # orthogonators
    "DemuxOrthogonator",
    "IntersectionOrthogonator",
    "OrthogonatorOutput",
    "spike_packages",
    # hyperspace
    "HyperspaceBasis",
    "Superposition",
    "decode_superposition",
    "build_demux_basis",
    "build_intersection_basis",
    # logic
    "CoincidenceCorrelator",
    "IdentificationResult",
    "TruthTableGate",
    "gate_from_function",
    "not_gate",
    "and_gate",
    "or_gate",
    "xor_gate",
    "min_gate",
    "max_gate",
    "mod_sum_gate",
    "PackageClock",
    "SymbolStream",
    "MooreMachine",
    "Circuit",
    "ripple_adder",
    # applications
    "NeuroBitCodec",
    "SpikeRouter",
    "RoutingFabric",
    "SuperpositionDatabase",
    "linear_scan",
    "linear_scan_batch",
    "grover_search",
    "verify_equality",
    "verify_subset",
    # pipeline
    "Runner",
    "ArtifactStore",
]
