"""Hyperspace layer: orthogonal bases, neuro-bit values, superpositions.

* :class:`HyperspaceBasis` — M orthogonal reference trains with slot
  classification; :class:`BasisArtifact` is its zero-copy shared-memory
  export (pool workers attach instead of rebuilding);
* :class:`Superposition` / :func:`decode_superposition` — several
  neuro-bits on a single wire;
* :func:`build_demux_basis` / :func:`build_intersection_basis` —
  end-to-end pipelines from noise to basis.
"""

from .basis import BasisArtifact, HyperspaceBasis
from .builders import (
    build_demux_basis,
    build_intersection_basis,
    paper_default_synthesizer,
)
from .superposition import (
    Superposition,
    decode_superposition,
    decode_superposition_batch,
    encode_superpositions,
    first_detection_slots,
)

__all__ = [
    "HyperspaceBasis",
    "BasisArtifact",
    "Superposition",
    "decode_superposition",
    "decode_superposition_batch",
    "encode_superpositions",
    "first_detection_slots",
    "build_demux_basis",
    "build_intersection_basis",
    "paper_default_synthesizer",
]
