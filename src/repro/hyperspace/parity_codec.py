"""Error-detecting link layer: parity digits over the neuro-bit codec.

The plain :class:`~repro.hyperspace.codec.NeuroBitCodec` detects a *lost*
symbol (a silent package inside the message) but cannot detect a
*corrupted* one — a spike landing on the wrong wire slot of its package
decodes as a different digit.  :class:`ParityNeuroBitCodec` adds a
mod-M checksum digit after every ``block_digits`` payload digits:

* any single corrupted digit in a block changes the block sum and is
  detected;
* a lost digit is already detected positionally by the base codec;
* overhead is ``1 / (block_digits + 1)`` of the link capacity.

This mirrors how a real deployment of the paper's link would harden the
paper's "resilient" physical layer into an end-to-end reliable one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import LogicError
from ..orthogonator.base import OrthogonatorOutput
from ..spikes.train import SpikeTrain
from .codec import NeuroBitCodec

__all__ = ["ParityNeuroBitCodec", "ParityError"]


class ParityError(LogicError):
    """A parity block's checksum did not match its payload digits."""


class ParityNeuroBitCodec:
    """A :class:`NeuroBitCodec` with per-block mod-M checksum digits.

    Parameters
    ----------
    output:
        Demux output providing the package clock (as for the base codec).
    block_digits:
        Payload digits per checksum digit (≥ 1).  Smaller blocks detect
        more corruption patterns at higher overhead.
    """

    def __init__(self, output: OrthogonatorOutput, block_digits: int = 4) -> None:
        if block_digits < 1:
            raise LogicError(f"block_digits must be >= 1, got {block_digits}")
        self._codec = NeuroBitCodec(output)
        self.block_digits = block_digits

    @property
    def radix(self) -> int:
        """Symbols per package (demux width M)."""
        return self._codec.radix

    @property
    def overhead(self) -> float:
        """Fraction of link capacity spent on checksums."""
        return 1.0 / (self.block_digits + 1)

    # ------------------------------------------------------------------
    # Framing
    # ------------------------------------------------------------------

    def frame(self, digits: List[int]) -> List[int]:
        """Insert a mod-M checksum digit after every block.

        The final (possibly short) block also gets a checksum, so any
        non-empty digit stream gains at least one check digit.
        """
        framed: List[int] = []
        for start in range(0, len(digits), self.block_digits):
            block = digits[start : start + self.block_digits]
            framed.extend(block)
            framed.append(sum(block) % self.radix)
        return framed

    def deframe(self, framed: List[int]) -> List[int]:
        """Validate and strip the checksum digits.

        Raises :class:`ParityError` on any checksum mismatch and
        :class:`LogicError` on impossible framing lengths.
        """
        span = self.block_digits + 1
        if len(framed) % span not in (0, *range(2, span)):
            # A lone checksum digit without payload cannot occur.
            raise LogicError(f"framed length {len(framed)} is not a valid framing")
        digits: List[int] = []
        for start in range(0, len(framed), span):
            chunk = framed[start : start + span]
            if len(chunk) < 2:
                raise LogicError("dangling checksum digit without payload")
            block, checksum = chunk[:-1], chunk[-1]
            if sum(block) % self.radix != checksum:
                raise ParityError(
                    f"checksum mismatch in block starting at digit {start}"
                )
            digits.extend(block)
        return digits

    # ------------------------------------------------------------------
    # Wire level
    # ------------------------------------------------------------------

    def encode(self, payload: bytes) -> SpikeTrain:
        """The wire signal carrying ``payload`` with checksums."""
        digits = self._codec.bytes_to_digits(payload)
        framed = self.frame(digits)
        if framed and len(framed) > self._codec.clock.n_packages:
            raise LogicError(
                f"framed payload needs {len(framed)} packages, link has "
                f"{self._codec.clock.n_packages}"
            )
        return self._codec.stream.encode(framed)

    def decode(self, wire: SpikeTrain) -> bytes:
        """Recover and verify the payload; raises on corruption."""
        symbols = self._codec.stream.decode(wire)
        last = -1
        for index, symbol in enumerate(symbols):
            if symbol is not None:
                last = index
        message = symbols[: last + 1]
        if any(symbol is None for symbol in message):
            raise LogicError("lost symbol inside the message body")
        digits = self.deframe([int(s) for s in message])
        return self._codec.digits_to_bytes(digits)
