"""Superpositions: several neuro-bits on one wire.

The abstract of the paper highlights "allowing several neuro-bits to be
transmitted on a single wire".  Physically a superposition is the union
of the selected reference trains; because the basis is orthogonal, the
receiving end can recover the member set exactly by classifying each
spike's slot.  :class:`Superposition` is the symbolic value (a frozenset
of element indices) paired with codec helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

import numpy as np

from ..backend import packed as packed_kernels
from ..backend.batch import SpikeTrainBatch
from ..errors import HyperspaceError
from ..spikes.train import SpikeTrain
from .basis import ElementKey, HyperspaceBasis

__all__ = [
    "Superposition",
    "decode_superposition",
    "decode_superposition_batch",
    "encode_superpositions",
    "first_detection_slots",
]


@dataclass(frozen=True)
class Superposition:
    """A set of basis elements riding one wire.

    Immutable and hashable; supports the set operators ``|``, ``&``,
    ``-``, ``^`` which correspond to the paper's set-theoretical logic
    operations on superposed values.
    """

    members: FrozenSet[int]

    @classmethod
    def of(cls, basis: HyperspaceBasis, keys: Iterable[ElementKey]) -> "Superposition":
        """Build from element keys (indices or labels) of ``basis``."""
        return cls(frozenset(basis.index_of(k) for k in keys))

    @classmethod
    def empty(cls) -> "Superposition":
        """The zero vector (no members, silent wire)."""
        return cls(frozenset())

    @classmethod
    def full(cls, basis: HyperspaceBasis) -> "Superposition":
        """The all-ones superposition (every element present)."""
        return cls(frozenset(range(basis.size)))

    def __contains__(self, element: int) -> bool:
        return element in self.members

    def __len__(self) -> int:
        return len(self.members)

    def __or__(self, other: "Superposition") -> "Superposition":
        return Superposition(self.members | other.members)

    def __and__(self, other: "Superposition") -> "Superposition":
        return Superposition(self.members & other.members)

    def __sub__(self, other: "Superposition") -> "Superposition":
        return Superposition(self.members - other.members)

    def __xor__(self, other: "Superposition") -> "Superposition":
        return Superposition(self.members ^ other.members)

    def complement(self, basis: HyperspaceBasis) -> "Superposition":
        """Set complement within the basis ("invert" in the paper's terms)."""
        return Superposition(frozenset(range(basis.size)) - self.members)

    def encode(self, basis: HyperspaceBasis) -> SpikeTrain:
        """The physical wire signal: union of the member trains."""
        return basis.encode_set(sorted(self.members))

    def labels(self, basis: HyperspaceBasis) -> Tuple[str, ...]:
        """Member labels in basis order."""
        return tuple(basis.labels[i] for i in sorted(self.members))


def decode_superposition(
    basis: HyperspaceBasis,
    wire: SpikeTrain,
    strict: bool = True,
) -> Superposition:
    """Recover the member set carried by ``wire``.

    Each spike is classified by its slot's owner.  With ``strict``
    (default) a spike in a slot no reference train owns raises
    :class:`HyperspaceError` — on a clean wire that can only mean the
    wire belongs to a different hyperspace.  Non-strict mode ignores
    foreign spikes, modelling a receiver that tolerates injected noise.
    """
    owners = basis.owners_of(wire.indices)
    if strict:
        foreign = int(np.count_nonzero(owners < 0))
        if foreign:
            raise HyperspaceError(
                f"wire carries {foreign} spike(s) in slots owned by no basis element"
            )
    members = frozenset(np.unique(owners[owners >= 0]).tolist())
    return Superposition(members)


def encode_superpositions(
    basis: HyperspaceBasis,
    values: Sequence[Superposition],
) -> SpikeTrainBatch:
    """Encode many superposition values as one batch of wires.

    The batched counterpart of :meth:`Superposition.encode`: row ``k``
    carries ``values[k]``, built by one member-mask × element-raster
    product in :meth:`HyperspaceBasis.encode_batch`.
    """
    return basis.encode_batch([sorted(v.members) for v in values])


def decode_superposition_batch(
    basis: HyperspaceBasis,
    batch: SpikeTrainBatch,
    strict: bool = True,
) -> List[Superposition]:
    """Recover the member set of every wire in ``batch`` in one pass.

    Vectorised counterpart of :func:`decode_superposition`: one gather
    through the basis owner vector classifies the concatenated spikes
    of all wires.  With ``strict`` any foreign spike raises, naming the
    offending wires.  Packed-primary batches decode on the bitset
    (:func:`_decode_batch_packed`) — the foreign-spike check and the
    member readout are word-parallel and never unpack the wires.
    """
    if batch.grid != basis.grid:
        raise HyperspaceError(
            "batch lives on a different grid than the basis: "
            f"{batch.grid.describe()} vs {basis.grid.describe()}"
        )
    if batch.receiver_backend() == "bitset":
        return _decode_batch_packed(basis, batch, strict)
    values, ptr = batch.csr()
    owners = basis.owners_of(values)
    row_of = np.repeat(np.arange(batch.n_trains), np.diff(ptr))
    if strict:
        foreign_rows = np.unique(row_of[owners < 0])
        if foreign_rows.size:
            raise HyperspaceError(
                f"wire(s) {foreign_rows.tolist()} carry spike(s) in slots "
                "owned by no basis element"
            )
    owned = owners >= 0
    pairs = np.unique(
        np.stack([row_of[owned], owners[owned].astype(np.int64)], axis=1), axis=0
    )
    members: List[set] = [set() for _unused in range(batch.n_trains)]
    for row, element in pairs:
        members[int(row)].add(int(element))
    return [Superposition(frozenset(m)) for m in members]


def _decode_batch_packed(
    basis: HyperspaceBasis,
    batch: SpikeTrainBatch,
    strict: bool,
) -> List[Superposition]:
    """Member-set recovery straight on the packed words.

    A wire's foreign spikes are ``wire & ~owned`` (word-parallel); its
    members come from decoding only the *coinciding* spikes and
    scattering their owners into the membership matrix.  Bit-identical
    to the CSR path, including the strict-mode error.
    """
    words = batch.packed_words()
    n = batch.n_trains
    hits = words & basis.owned_words
    if strict:
        foreign_rows = np.flatnonzero((hits != words).any(axis=1))
        if foreign_rows.size:
            raise HyperspaceError(
                f"wire(s) {foreign_rows.tolist()} carry spike(s) in slots "
                "owned by no basis element"
            )
    row_of, values = packed_kernels.unpack_coords(hits)
    owners = basis.owner_vector[values]
    membership = np.zeros((n, basis.size), dtype=bool)
    membership[row_of, owners] = True
    return [
        Superposition(frozenset(np.flatnonzero(row).tolist()))
        for row in membership
    ]


def first_detection_slots(
    basis: HyperspaceBasis,
    wire: SpikeTrain,
) -> Dict[int, int]:
    """Earliest wire slot at which each member is first detected.

    The paper's speed argument: a member is *known present* at its first
    coincident spike.  Returns element index → earliest slot; elements
    never seen are absent from the mapping.
    """
    owners = basis.owners_of(wire.indices)
    mask = owners >= 0
    elements, first = np.unique(owners[mask], return_index=True)
    slots = wire.indices[mask][first]
    order = np.argsort(slots, kind="stable")
    return {int(elements[i]): int(slots[i]) for i in order}
