"""The logic hyperspace: an orthogonal reference basis of spike trains.

A :class:`HyperspaceBasis` is the multidimensional space of Section 4: M
mutually orthogonal spike trains ("neuro-bits"), each representing one
basis element / logic value.  Because the trains never share a spike
slot, any occupied slot identifies its basis element uniquely — the
property that makes single-coincidence identification deterministic.

Bases are typically built from an orthogonator output
(:meth:`HyperspaceBasis.from_orthogonator`), but any collection of
orthogonal trains qualifies.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import HyperspaceError
from ..orthogonator.base import OrthogonatorOutput, verify_orthogonality
from ..spikes.train import SpikeTrain
from ..units import SimulationGrid

__all__ = ["HyperspaceBasis"]

ElementKey = Union[int, str]


class HyperspaceBasis:
    """An ordered, labelled, orthogonal set of reference spike trains.

    Parameters
    ----------
    trains:
        The basis element trains.  Must be non-empty, all on one grid,
        and pairwise orthogonal (verified on construction).
    labels:
        Parallel element labels; default ``V1..VM`` following the paper's
        notation ``{V_i(t_k)}``.
    """

    def __init__(
        self,
        trains: Sequence[SpikeTrain],
        labels: Optional[Sequence[str]] = None,
    ) -> None:
        if not trains:
            raise HyperspaceError("a hyperspace basis needs at least one element")
        grid = trains[0].grid
        for train in trains[1:]:
            if train.grid != grid:
                raise HyperspaceError("basis trains must share one grid")
        if labels is None:
            labels = [f"V{i + 1}" for i in range(len(trains))]
        if len(labels) != len(trains):
            raise HyperspaceError(
                f"{len(trains)} trains but {len(labels)} labels"
            )
        if len(set(labels)) != len(labels):
            raise HyperspaceError(f"duplicate labels: {labels}")
        verify_orthogonality(trains, labels)

        self._trains: Tuple[SpikeTrain, ...] = tuple(trains)
        self._labels: Tuple[str, ...] = tuple(labels)
        self._grid = grid
        self._label_to_index = {label: i for i, label in enumerate(self._labels)}
        self._slot_owner = self._build_slot_map()

    def _build_slot_map(self) -> Dict[int, int]:
        """Map each occupied slot to the index of its owning element."""
        owner: Dict[int, int] = {}
        for element, train in enumerate(self._trains):
            for slot in train.indices.tolist():
                owner[slot] = element
        return owner

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_orthogonator(cls, output: OrthogonatorOutput) -> "HyperspaceBasis":
        """Adopt an orthogonator's labelled outputs as a basis."""
        return cls(list(output.trains), list(output.labels))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of basis elements M."""
        return len(self._trains)

    @property
    def grid(self) -> SimulationGrid:
        """The grid all element trains live on."""
        return self._grid

    @property
    def labels(self) -> Tuple[str, ...]:
        """Element labels in order."""
        return self._labels

    @property
    def trains(self) -> Tuple[SpikeTrain, ...]:
        """Element trains in order."""
        return self._trains

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Tuple[str, SpikeTrain]]:
        return iter(zip(self._labels, self._trains))

    def index_of(self, key: ElementKey) -> int:
        """Resolve an element key (index or label) to its index."""
        if isinstance(key, str):
            try:
                return self._label_to_index[key]
            except KeyError:
                raise HyperspaceError(
                    f"no element labelled {key!r}; available: {list(self._labels)}"
                ) from None
        index = int(key)
        if not (0 <= index < self.size):
            raise HyperspaceError(
                f"element index {index} out of range [0, {self.size})"
            )
        return index

    def label_of(self, key: ElementKey) -> str:
        """Resolve an element key to its label."""
        return self._labels[self.index_of(key)]

    def train(self, key: ElementKey) -> SpikeTrain:
        """The reference train of one element."""
        return self._trains[self.index_of(key)]

    # ------------------------------------------------------------------
    # Encoding and slot classification
    # ------------------------------------------------------------------

    def encode(self, key: ElementKey) -> SpikeTrain:
        """Physical signal carrying the single value ``key`` (its train)."""
        return self.train(key)

    def encode_set(self, keys: Sequence[ElementKey]) -> SpikeTrain:
        """Superposition wire: union of the selected elements' trains.

        This is the paper's "several neuro-bits transmitted on a single
        wire" — up to ``2^M − 1`` distinct superpositions ride one wire.
        An empty selection yields the empty train (the zero vector).
        """
        indices = sorted({self.index_of(k) for k in keys})
        if not indices:
            return SpikeTrain.empty(self._grid)
        merged = np.concatenate([self._trains[i].indices for i in indices])
        return SpikeTrain(merged, self._grid)

    def owner_of_slot(self, slot: int) -> Optional[int]:
        """Element index owning ``slot``, or None for an empty slot."""
        return self._slot_owner.get(int(slot))

    def classify_train(self, train: SpikeTrain) -> Dict[int, int]:
        """Histogram: element index → number of ``train``'s spikes it owns.

        Spikes in slots owned by no element are counted under key ``-1``
        (noise / foreign spikes).
        """
        counts: Dict[int, int] = {}
        for slot in train.indices.tolist():
            owner = self._slot_owner.get(slot, -1)
            counts[owner] = counts.get(owner, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def occupancy(self) -> float:
        """Fraction of grid slots carrying any reference spike."""
        occupied = sum(len(t) for t in self._trains)
        return occupied / self._grid.n_samples

    def rates(self) -> Dict[str, float]:
        """Per-element mean spike rates (spikes/s)."""
        return {label: t.mean_rate() for label, t in self}

    def min_spike_count(self) -> int:
        """Spike count of the sparsest element (identification bottleneck)."""
        return min(len(t) for t in self._trains)

    def describe(self) -> str:
        """One-line basis summary."""
        return (
            f"HyperspaceBasis(M={self.size}, "
            f"min/max spikes={self.min_spike_count()}"
            f"/{max(len(t) for t in self._trains)}, "
            f"occupancy={self.occupancy():.3%})"
        )
