"""The logic hyperspace: an orthogonal reference basis of spike trains.

A :class:`HyperspaceBasis` is the multidimensional space of Section 4: M
mutually orthogonal spike trains ("neuro-bits"), each representing one
basis element / logic value.  Because the trains never share a spike
slot, any occupied slot identifies its basis element uniquely — the
property that makes single-coincidence identification deterministic.

Bases are typically built from an orthogonator output
(:meth:`HyperspaceBasis.from_orthogonator`), but any collection of
orthogonal trains qualifies.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from ..backend.batch import SpikeTrainBatch
from ..errors import HyperspaceError
from ..orthogonator.base import OrthogonatorOutput, verify_orthogonality
from ..spikes.train import SpikeTrain
from ..units import SimulationGrid

__all__ = ["HyperspaceBasis"]

ElementKey = Union[int, str]


class HyperspaceBasis:
    """An ordered, labelled, orthogonal set of reference spike trains.

    Parameters
    ----------
    trains:
        The basis element trains.  Must be non-empty, all on one grid,
        and pairwise orthogonal (verified on construction).
    labels:
        Parallel element labels; default ``V1..VM`` following the paper's
        notation ``{V_i(t_k)}``.
    """

    def __init__(
        self,
        trains: Sequence[SpikeTrain],
        labels: Optional[Sequence[str]] = None,
    ) -> None:
        if not trains:
            raise HyperspaceError("a hyperspace basis needs at least one element")
        grid = trains[0].grid
        for train in trains[1:]:
            if train.grid != grid:
                raise HyperspaceError("basis trains must share one grid")
        if labels is None:
            labels = [f"V{i + 1}" for i in range(len(trains))]
        if len(labels) != len(trains):
            raise HyperspaceError(
                f"{len(trains)} trains but {len(labels)} labels"
            )
        if len(set(labels)) != len(labels):
            raise HyperspaceError(f"duplicate labels: {labels}")
        verify_orthogonality(trains, labels)

        self._trains: Tuple[SpikeTrain, ...] = tuple(trains)
        self._labels: Tuple[str, ...] = tuple(labels)
        self._grid = grid
        self._label_to_index = {label: i for i, label in enumerate(self._labels)}
        self._owner_vector = self._build_owner_vector()
        self._batch: Optional[SpikeTrainBatch] = None

    def _build_owner_vector(self) -> np.ndarray:
        """Dense slot → owning-element map (-1 for unowned slots).

        One scatter per element; orthogonality guarantees the scatters
        never collide.  This array is what makes every classification
        path a single vectorised gather.
        """
        owner = np.full(self._grid.n_samples, -1, dtype=np.int32)
        for element, train in enumerate(self._trains):
            owner[train.indices] = element
        owner.setflags(write=False)
        return owner

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_orthogonator(cls, output: OrthogonatorOutput) -> "HyperspaceBasis":
        """Adopt an orthogonator's labelled outputs as a basis."""
        return cls(list(output.trains), list(output.labels))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of basis elements M."""
        return len(self._trains)

    @property
    def grid(self) -> SimulationGrid:
        """The grid all element trains live on."""
        return self._grid

    @property
    def labels(self) -> Tuple[str, ...]:
        """Element labels in order."""
        return self._labels

    @property
    def trains(self) -> Tuple[SpikeTrain, ...]:
        """Element trains in order."""
        return self._trains

    @property
    def owner_vector(self) -> np.ndarray:
        """Dense slot → element-index map of length ``n_samples`` (-1 = unowned).

        The vectorised identification paths gather through this array
        instead of walking a per-slot dictionary.
        """
        return self._owner_vector

    def as_batch(self) -> SpikeTrainBatch:
        """The element trains stacked as one ``(M, n_samples)`` batch (cached)."""
        if self._batch is None:
            self._batch = SpikeTrainBatch.from_trains(self._trains)
        return self._batch

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Tuple[str, SpikeTrain]]:
        return iter(zip(self._labels, self._trains))

    def index_of(self, key: ElementKey) -> int:
        """Resolve an element key (index or label) to its index."""
        if isinstance(key, str):
            try:
                return self._label_to_index[key]
            except KeyError:
                raise HyperspaceError(
                    f"no element labelled {key!r}; available: {list(self._labels)}"
                ) from None
        index = int(key)
        if not (0 <= index < self.size):
            raise HyperspaceError(
                f"element index {index} out of range [0, {self.size})"
            )
        return index

    def label_of(self, key: ElementKey) -> str:
        """Resolve an element key to its label."""
        return self._labels[self.index_of(key)]

    def train(self, key: ElementKey) -> SpikeTrain:
        """The reference train of one element."""
        return self._trains[self.index_of(key)]

    # ------------------------------------------------------------------
    # Encoding and slot classification
    # ------------------------------------------------------------------

    def encode(self, key: ElementKey) -> SpikeTrain:
        """Physical signal carrying the single value ``key`` (its train)."""
        return self.train(key)

    def encode_set(self, keys: Sequence[ElementKey]) -> SpikeTrain:
        """Superposition wire: union of the selected elements' trains.

        This is the paper's "several neuro-bits transmitted on a single
        wire" — up to ``2^M − 1`` distinct superpositions ride one wire.
        An empty selection yields the empty train (the zero vector).
        """
        indices = sorted({self.index_of(k) for k in keys})
        if not indices:
            return SpikeTrain.empty(self._grid)
        merged = np.concatenate([self._trains[i].indices for i in indices])
        return SpikeTrain(merged, self._grid)

    def encode_batch(
        self, selections: Sequence[Sequence[ElementKey]]
    ) -> SpikeTrainBatch:
        """Encode many superpositions at once as a ``(K, n_samples)`` batch.

        Row ``k`` carries the union of the reference trains selected by
        ``selections[k]`` — the batched form of :meth:`encode_set`,
        computed as one member-mask × element-raster product instead of
        K Python-side unions.
        """
        if not selections:
            raise HyperspaceError("encode_batch needs at least one selection")
        member_mask = np.zeros((len(selections), self.size), dtype=bool)
        for k, keys in enumerate(selections):
            for key in keys:
                member_mask[k, self.index_of(key)] = True
        # Orthogonality makes the per-slot member count 0/1, so a uint8
        # matmul against the element raster cannot overflow.
        element_raster = self.as_batch().raster
        raster = member_mask.astype(np.uint8) @ element_raster.astype(np.uint8)
        return SpikeTrainBatch.from_raster(
            raster.astype(bool), self._grid, copy=False
        )

    def owner_of_slot(self, slot: int) -> Optional[int]:
        """Element index owning ``slot``, or None for an empty slot."""
        slot = int(slot)
        if not (0 <= slot < self._grid.n_samples):
            return None
        owner = int(self._owner_vector[slot])
        return None if owner < 0 else owner

    def owners_of(self, slots: np.ndarray) -> np.ndarray:
        """Vectorised slot classification: element index per slot, -1 unowned.

        Slots outside the grid (a wire from a longer record) classify as
        unowned, matching the graceful behaviour of
        :meth:`owner_of_slot`; the bounds check is one min/max pass and
        the masked gather only runs when a slot actually falls outside.
        """
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size == 0:
            return np.empty(0, dtype=self._owner_vector.dtype)
        if int(slots.min()) >= 0 and int(slots.max()) < self._grid.n_samples:
            return self._owner_vector[slots]
        owners = np.full(slots.shape, -1, dtype=self._owner_vector.dtype)
        in_range = (slots >= 0) & (slots < self._grid.n_samples)
        owners[in_range] = self._owner_vector[slots[in_range]]
        return owners

    def classify_train(self, train: SpikeTrain) -> Dict[int, int]:
        """Histogram: element index → number of ``train``'s spikes it owns.

        Spikes in slots owned by no element are counted under key ``-1``
        (noise / foreign spikes).
        """
        owners = self.owners_of(train.indices)
        histogram = np.bincount(owners + 1, minlength=self.size + 1)
        counts = {
            element: int(histogram[element + 1])
            for element in range(-1, self.size)
            if histogram[element + 1]
        }
        return counts

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def occupancy(self) -> float:
        """Fraction of grid slots carrying any reference spike."""
        occupied = sum(len(t) for t in self._trains)
        return occupied / self._grid.n_samples

    def rates(self) -> Dict[str, float]:
        """Per-element mean spike rates (spikes/s)."""
        return {label: t.mean_rate() for label, t in self}

    def min_spike_count(self) -> int:
        """Spike count of the sparsest element (identification bottleneck)."""
        return min(len(t) for t in self._trains)

    def describe(self) -> str:
        """One-line basis summary."""
        return (
            f"HyperspaceBasis(M={self.size}, "
            f"min/max spikes={self.min_spike_count()}"
            f"/{max(len(t) for t in self._trains)}, "
            f"occupancy={self.occupancy():.3%})"
        )
