"""The logic hyperspace: an orthogonal reference basis of spike trains.

A :class:`HyperspaceBasis` is the multidimensional space of Section 4: M
mutually orthogonal spike trains ("neuro-bits"), each representing one
basis element / logic value.  Because the trains never share a spike
slot, any occupied slot identifies its basis element uniquely — the
property that makes single-coincidence identification deterministic.

Bases are typically built from an orthogonator output
(:meth:`HyperspaceBasis.from_orthogonator`), but any collection of
orthogonal trains qualifies.

Derived projections are cached per basis: the dense ``owner_vector``
(slot → owning element) and the stacked element batch build lazily and
are reused, and :meth:`HyperspaceBasis.encode_set` /
:meth:`HyperspaceBasis.encode_batch` memoise their outputs in an LRU so
repeated decode/search experiments stop recomputing the same basis
projections.  :meth:`HyperspaceBasis.cache_info` exposes hit/miss
counters; mutating the basis (:meth:`HyperspaceBasis.replace_element`)
or calling :meth:`HyperspaceBasis.invalidate_caches` drops every cached
projection and bumps the basis version.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from ..backend.batch import SpikeTrainBatch
from ..backend.shared import SharedArena, SharedArraySpec, attach_array
from ..errors import HyperspaceError
from ..orthogonator.base import OrthogonatorOutput, verify_orthogonality
from ..spikes.train import SpikeTrain
from ..units import SimulationGrid

__all__ = ["HyperspaceBasis", "BasisArtifact"]


@dataclass(frozen=True)
class BasisArtifact:
    """Metadata-only handle to a basis exported into shared memory.

    Carries the dense ``owner_vector`` (the projection every vectorised
    identification path gathers through) and the element table — the
    stacked element trains' CSR ``(values, ptr)`` — as
    :class:`~repro.backend.shared.SharedArraySpec` references plus the
    labels and grid scalars.  Pool workers attach instead of re-running
    the orthogonator pipeline, which is the ~8 ms/shard rebuild the
    shared execution layer eliminates.
    """

    owner: SharedArraySpec
    values: SharedArraySpec
    ptr: SharedArraySpec
    labels: Tuple[str, ...]
    n_samples: int
    dt: float

    @property
    def size(self) -> int:
        """Number of basis elements M."""
        return len(self.labels)

    def grid(self) -> SimulationGrid:
        """The grid the exported basis lives on."""
        return SimulationGrid(n_samples=self.n_samples, dt=self.dt)

ElementKey = Union[int, str]

#: Default capacity (entries) of the per-basis encode LRU.
DEFAULT_ENCODE_CACHE_SIZE = 128

#: Default byte budget of the per-basis encode LRU.  Cached batches
#: carry dense rasters (N × n_samples bools), so an entry bound alone
#: could pin gigabytes; the byte bound is the one that matters.
DEFAULT_ENCODE_CACHE_BYTES = 64 * 1024 * 1024


def _cache_cost(value: object) -> int:
    """Upper-bound resident bytes of a cached encode result.

    Cached batches are weighed at their *worst-case* residency — CSR +
    packed words + dense raster — not what happens to be materialised
    at insert time: a consumer pulling ``.raster`` or ``.csr()`` on a
    cached packed-primary batch materialises those forms in place on
    the shared object, and the byte budget must still bound them.
    ``total_spikes`` is a popcount on packed-primary batches, so the
    weighing itself forces no decode.
    """
    if isinstance(value, SpikeTrainBatch):
        n_rows, n_samples = value.n_trains, value.grid.n_samples
        csr_bytes = value.total_spikes * 8 + (n_rows + 1) * 8
        packed_bytes = n_rows * ((n_samples + 63) // 64) * 8
        return csr_bytes + packed_bytes + n_rows * n_samples + 64
    if isinstance(value, SpikeTrain):
        return value.indices.nbytes + 64
    return 64


class _LruCache:
    """A small LRU bounded by entry count *and* total bytes.

    Values are weighed with :func:`_cache_cost`; inserting evicts
    oldest entries until both bounds hold, and a value bigger than the
    whole byte budget is returned uncached.  ``clear()`` drops the
    entries but keeps the cumulative hit/miss counters — cache
    effectiveness stays observable across basis rebuilds.
    """

    __slots__ = ("maxsize", "max_bytes", "hits", "misses", "total_bytes",
                 "_data")

    def __init__(self, maxsize: int, max_bytes: int) -> None:
        if maxsize < 1:
            raise HyperspaceError(f"cache size must be >= 1, got {maxsize}")
        if max_bytes < 1:
            raise HyperspaceError(
                f"cache byte budget must be >= 1, got {max_bytes}"
            )
        self.maxsize = int(maxsize)
        self.max_bytes = int(max_bytes)
        self.hits = 0
        self.misses = 0
        self.total_bytes = 0
        self._data: "OrderedDict" = OrderedDict()

    def get_or_build(self, key, build: Callable[[], object]) -> object:
        """The cached value for ``key``, building (and caching) on miss."""
        if key in self._data:
            self.hits += 1
            self._data.move_to_end(key)
            return self._data[key][0]
        self.misses += 1
        value = build()
        cost = _cache_cost(value)
        if cost > self.max_bytes:
            return value  # would evict everything and still not fit
        self._data[key] = (value, cost)
        self.total_bytes += cost
        while (
            len(self._data) > self.maxsize
            or self.total_bytes > self.max_bytes
        ):
            _key, (_value, evicted_cost) = self._data.popitem(last=False)
            self.total_bytes -= evicted_cost
        return value

    def clear(self) -> None:
        self._data.clear()
        self.total_bytes = 0

    def __len__(self) -> int:
        return len(self._data)


class HyperspaceBasis:
    """An ordered, labelled, orthogonal set of reference spike trains.

    Parameters
    ----------
    trains:
        The basis element trains.  Must be non-empty, all on one grid,
        and pairwise orthogonal (verified on construction).
    labels:
        Parallel element labels; default ``V1..VM`` following the paper's
        notation ``{V_i(t_k)}``.
    """

    def __init__(
        self,
        trains: Sequence[SpikeTrain],
        labels: Optional[Sequence[str]] = None,
        *,
        encode_cache_size: int = DEFAULT_ENCODE_CACHE_SIZE,
        encode_cache_bytes: int = DEFAULT_ENCODE_CACHE_BYTES,
    ) -> None:
        if not trains:
            raise HyperspaceError("a hyperspace basis needs at least one element")
        grid = trains[0].grid
        for train in trains[1:]:
            if train.grid != grid:
                raise HyperspaceError("basis trains must share one grid")
        if labels is None:
            labels = [f"V{i + 1}" for i in range(len(trains))]
        if len(labels) != len(trains):
            raise HyperspaceError(
                f"{len(trains)} trains but {len(labels)} labels"
            )
        if len(set(labels)) != len(labels):
            raise HyperspaceError(f"duplicate labels: {labels}")
        verify_orthogonality(trains, labels)

        self._trains: Tuple[SpikeTrain, ...] = tuple(trains)
        self._labels: Tuple[str, ...] = tuple(labels)
        self._grid = grid
        self._init_derived_state(encode_cache_size, encode_cache_bytes)

    def _init_derived_state(
        self, encode_cache_size: int, encode_cache_bytes: int
    ) -> None:
        """Initialise every cached/derived field from the core three.

        The single authoritative list of non-core attributes, shared by
        ``__init__`` and :meth:`from_artifact` (which bypasses
        ``__init__`` to skip orthogonality re-verification).
        """
        self._label_to_index = {label: i for i, label in enumerate(self._labels)}
        # Cached projections: the owner vector, the element batch and
        # the owned-slot bitset build lazily on first use; encode
        # results memoise in the LRU.
        self._owner_vector: Optional[np.ndarray] = None
        self._owner_builds = 0
        self._owner_hits = 0
        self._batch: Optional[SpikeTrainBatch] = None
        self._owned_words: Optional[np.ndarray] = None
        self._encode_cache = _LruCache(encode_cache_size, encode_cache_bytes)
        self._version = 0

    def _build_owner_vector(self) -> np.ndarray:
        """Dense slot → owning-element map (-1 for unowned slots).

        One scatter per element; orthogonality guarantees the scatters
        never collide.  This array is what makes every classification
        path a single vectorised gather.
        """
        owner = np.full(self._grid.n_samples, -1, dtype=np.int32)
        for element, train in enumerate(self._trains):
            owner[train.indices] = element
        owner.setflags(write=False)
        return owner

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_orthogonator(cls, output: OrthogonatorOutput) -> "HyperspaceBasis":
        """Adopt an orthogonator's labelled outputs as a basis."""
        return cls(list(output.trains), list(output.labels))

    # ------------------------------------------------------------------
    # Shared-memory artifacts
    # ------------------------------------------------------------------

    def to_artifact(self, arena: SharedArena) -> BasisArtifact:
        """Export this basis into ``arena`` as a picklable artifact.

        Places the dense owner vector and the element batch's CSR into
        shared segments; the returned handle is metadata only.  The
        artifact captures the basis at its current :attr:`version` —
        mutating this basis afterwards does not touch the export.
        """
        values, ptr = self.as_batch().csr()
        return BasisArtifact(
            owner=arena.share_array(self.owner_vector),
            values=arena.share_array(values),
            ptr=arena.share_array(ptr),
            labels=self._labels,
            n_samples=self._grid.n_samples,
            dt=self._grid.dt,
        )

    @classmethod
    def from_artifact(cls, artifact: BasisArtifact) -> "HyperspaceBasis":
        """Rebuild a basis from a shared artifact by *attaching*.

        Zero-copy on the hot projections: the owner vector is the
        attached segment itself and every element train's index array
        is a read-only view into the shared element table.
        Orthogonality was verified when the exporting basis was
        constructed, so this path skips re-verification — that is what
        makes attaching cheap enough to run once per shard task.
        """
        basis = cls._from_table(
            attach_array(artifact.values),
            attach_array(artifact.ptr),
            artifact.labels,
            artifact.grid(),
        )
        basis._owner_vector = attach_array(artifact.owner)
        return basis

    @classmethod
    def _from_table(
        cls,
        values: np.ndarray,
        ptr: np.ndarray,
        labels: Sequence[str],
        grid: SimulationGrid,
    ) -> "HyperspaceBasis":
        """Adopt a pre-verified element table ``(values, ptr)`` as a basis.

        The trusted fast path under :meth:`from_artifact` and the
        serving dispatch layer (:mod:`repro.serving.dispatch`): element
        ``i``'s sorted slot indices are ``values[ptr[i]:ptr[i + 1]]``
        (views, never copies), and orthogonality is *not* re-verified —
        callers must only feed tables exported from an already-verified
        basis.
        """
        trains = tuple(
            SpikeTrain._from_sorted_unique(
                values[ptr[i] : ptr[i + 1]], grid
            )
            for i in range(len(ptr) - 1)
        )
        basis = cls.__new__(cls)
        basis._trains = trains
        basis._labels = tuple(labels)
        basis._grid = grid
        basis._init_derived_state(
            DEFAULT_ENCODE_CACHE_SIZE, DEFAULT_ENCODE_CACHE_BYTES
        )
        return basis

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of basis elements M."""
        return len(self._trains)

    @property
    def grid(self) -> SimulationGrid:
        """The grid all element trains live on."""
        return self._grid

    @property
    def labels(self) -> Tuple[str, ...]:
        """Element labels in order."""
        return self._labels

    @property
    def trains(self) -> Tuple[SpikeTrain, ...]:
        """Element trains in order."""
        return self._trains

    @property
    def owner_vector(self) -> np.ndarray:
        """Dense slot → element-index map of length ``n_samples`` (-1 = unowned).

        The vectorised identification paths gather through this array
        instead of walking a per-slot dictionary.  Built lazily on
        first use and cached until the basis is mutated or rebuilt.
        """
        if self._owner_vector is None:
            self._owner_vector = self._build_owner_vector()
            self._owner_builds += 1
        else:
            self._owner_hits += 1
        return self._owner_vector

    def as_batch(self) -> SpikeTrainBatch:
        """The element trains stacked as one ``(M, n_samples)`` batch (cached)."""
        if self._batch is None:
            self._batch = SpikeTrainBatch.from_trains(self._trains)
        return self._batch

    def packed_elements(self) -> np.ndarray:
        """The element trains as packed words ``(M, ceil(n_samples / 64))``.

        The reference side of every packed-kernel receiver: coincidence
        against element ``m`` is one AND against row ``m``.  Cached via
        the element batch.
        """
        return self.as_batch().packed_words()

    @property
    def owned_words(self) -> np.ndarray:
        """Packed bitset of every slot owned by *any* element (cached).

        The union of the element rows — orthogonality makes the rows
        disjoint, so ``wire & owned_words`` keeps exactly the wire's
        coinciding spikes.  This is the packed counterpart of
        :attr:`owner_vector` (1/8 of its footprint, one word per 64
        slots) and what the packed identification paths scan.
        """
        if self._owned_words is None:
            merged = np.bitwise_or.reduce(self.packed_elements(), axis=0)
            merged.setflags(write=False)
            self._owned_words = merged
        return self._owned_words

    @property
    def version(self) -> int:
        """Monotone counter, bumped on every mutation/invalidation.

        Consumers holding derived state (external caches keyed on this
        basis) compare versions instead of deep-comparing trains.
        """
        return self._version

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Tuple[str, SpikeTrain]]:
        return iter(zip(self._labels, self._trains))

    def index_of(self, key: ElementKey) -> int:
        """Resolve an element key (index or label) to its index."""
        if isinstance(key, str):
            try:
                return self._label_to_index[key]
            except KeyError:
                raise HyperspaceError(
                    f"no element labelled {key!r}; available: {list(self._labels)}"
                ) from None
        index = int(key)
        if not (0 <= index < self.size):
            raise HyperspaceError(
                f"element index {index} out of range [0, {self.size})"
            )
        return index

    def label_of(self, key: ElementKey) -> str:
        """Resolve an element key to its label."""
        return self._labels[self.index_of(key)]

    def train(self, key: ElementKey) -> SpikeTrain:
        """The reference train of one element."""
        return self._trains[self.index_of(key)]

    # ------------------------------------------------------------------
    # Encoding and slot classification
    # ------------------------------------------------------------------

    def encode(self, key: ElementKey) -> SpikeTrain:
        """Physical signal carrying the single value ``key`` (its train)."""
        return self.train(key)

    def encode_set(self, keys: Sequence[ElementKey]) -> SpikeTrain:
        """Superposition wire: union of the selected elements' trains.

        This is the paper's "several neuro-bits transmitted on a single
        wire" — up to ``2^M − 1`` distinct superpositions ride one wire.
        An empty selection yields the empty train (the zero vector).
        Results are memoised in the basis's encode LRU (spike trains
        are immutable, so sharing them is safe).
        """
        indices = tuple(sorted({self.index_of(k) for k in keys}))
        return self._encode_cache.get_or_build(
            ("set", indices), lambda: self._encode_set_uncached(indices)
        )

    def _encode_set_uncached(self, indices: Tuple[int, ...]) -> SpikeTrain:
        if not indices:
            return SpikeTrain.empty(self._grid)
        merged = np.concatenate([self._trains[i].indices for i in indices])
        return SpikeTrain(merged, self._grid)

    def encode_batch(
        self, selections: Sequence[Sequence[ElementKey]]
    ) -> SpikeTrainBatch:
        """Encode many superpositions at once as a ``(K, n_samples)`` batch.

        Row ``k`` carries the union of the reference trains selected by
        ``selections[k]`` — the batched form of :meth:`encode_set`,
        computed as one member-mask × element-raster product instead of
        K Python-side unions.  Results are memoised in the basis's
        encode LRU keyed on the normalised selections (batches are
        immutable, so sharing them is safe).
        """
        if not selections:
            raise HyperspaceError("encode_batch needs at least one selection")
        key = tuple(
            tuple(sorted({self.index_of(k) for k in keys}))
            for keys in selections
        )
        return self._encode_cache.get_or_build(
            ("batch", key), lambda: self._encode_batch_uncached(key)
        )

    def _encode_batch_uncached(
        self, selections: Tuple[Tuple[int, ...], ...]
    ) -> SpikeTrainBatch:
        member_mask = np.zeros((len(selections), self.size), dtype=np.uint8)
        for k, indices in enumerate(selections):
            member_mask[k, list(indices)] = 1
        # One member-mask × packed-element product, 1/8 the bytes of
        # the raster matmul it replaces.  Orthogonality makes the
        # element rows' bits disjoint, so the per-byte sums are their
        # OR and cannot overflow; the result is a clean packed batch
        # whose CSR decodes lazily only if someone asks for indices.
        element_bytes = self.packed_elements().view(np.uint8)
        packed_rows = member_mask @ element_bytes
        return SpikeTrainBatch._from_packed_words(
            np.ascontiguousarray(packed_rows).view(np.uint64),
            self._grid,
            validate=False,
        )

    def owner_of_slot(self, slot: int) -> Optional[int]:
        """Element index owning ``slot``, or None for an empty slot."""
        slot = int(slot)
        if not (0 <= slot < self._grid.n_samples):
            return None
        owner = int(self.owner_vector[slot])
        return None if owner < 0 else owner

    def owners_of(self, slots: np.ndarray) -> np.ndarray:
        """Vectorised slot classification: element index per slot, -1 unowned.

        Slots outside the grid (a wire from a longer record) classify as
        unowned, matching the graceful behaviour of
        :meth:`owner_of_slot`; the bounds check is one min/max pass and
        the masked gather only runs when a slot actually falls outside.
        """
        slots = np.asarray(slots, dtype=np.int64)
        owner_vector = self.owner_vector
        if slots.size == 0:
            return np.empty(0, dtype=owner_vector.dtype)
        if int(slots.min()) >= 0 and int(slots.max()) < self._grid.n_samples:
            return owner_vector[slots]
        owners = np.full(slots.shape, -1, dtype=owner_vector.dtype)
        in_range = (slots >= 0) & (slots < self._grid.n_samples)
        owners[in_range] = owner_vector[slots[in_range]]
        return owners

    def classify_train(self, train: SpikeTrain) -> Dict[int, int]:
        """Histogram: element index → number of ``train``'s spikes it owns.

        Spikes in slots owned by no element are counted under key ``-1``
        (noise / foreign spikes).
        """
        owners = self.owners_of(train.indices)
        histogram = np.bincount(owners + 1, minlength=self.size + 1)
        counts = {
            element: int(histogram[element + 1])
            for element in range(-1, self.size)
            if histogram[element + 1]
        }
        return counts

    # ------------------------------------------------------------------
    # Mutation and cache control
    # ------------------------------------------------------------------

    def replace_element(self, key: ElementKey, train: SpikeTrain) -> None:
        """Swap one element's reference train, re-verifying orthogonality.

        The supported mutation: rebuilding a degraded reference (e.g.
        after re-running an orthogonator) in place.  Every cached
        projection — owner vector, element batch, encode LRU — is
        invalidated and the basis :attr:`version` bumps.
        """
        index = self.index_of(key)
        if train.grid != self._grid:
            raise HyperspaceError(
                f"replacement train lives on {train.grid.describe()}, "
                f"expected {self._grid.describe()}"
            )
        trains = list(self._trains)
        trains[index] = train
        verify_orthogonality(trains, self._labels)
        self._trains = tuple(trains)
        self.invalidate_caches()

    def invalidate_caches(self) -> None:
        """Drop every cached projection and bump the basis version.

        Called automatically by :meth:`replace_element`; call directly
        after out-of-band mutation (there should be none).  Hit/miss
        counters are cumulative and survive invalidation.
        """
        self._owner_vector = None
        self._batch = None
        self._owned_words = None
        self._encode_cache.clear()
        self._version += 1

    def cache_info(self) -> Dict[str, int]:
        """Cache effectiveness counters for the basis's projections.

        ``owner_vector_builds`` / ``owner_vector_hits`` count lazy
        builds vs reuses of the dense owner vector;
        ``encode_hits`` / ``encode_misses`` count the encode LRU
        (:meth:`encode_set` + :meth:`encode_batch`); ``encode_entries``
        / ``encode_bytes`` are its current fill, ``encode_maxsize`` /
        ``encode_max_bytes`` its bounds; ``version`` counts
        invalidations.
        """
        return {
            "version": self._version,
            "owner_vector_builds": self._owner_builds,
            "owner_vector_hits": self._owner_hits,
            "owner_vector_cached": int(self._owner_vector is not None),
            "encode_hits": self._encode_cache.hits,
            "encode_misses": self._encode_cache.misses,
            "encode_entries": len(self._encode_cache),
            "encode_bytes": self._encode_cache.total_bytes,
            "encode_maxsize": self._encode_cache.maxsize,
            "encode_max_bytes": self._encode_cache.max_bytes,
        }

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def occupancy(self) -> float:
        """Fraction of grid slots carrying any reference spike."""
        occupied = sum(len(t) for t in self._trains)
        return occupied / self._grid.n_samples

    def rates(self) -> Dict[str, float]:
        """Per-element mean spike rates (spikes/s)."""
        return {label: t.mean_rate() for label, t in self}

    def min_spike_count(self) -> int:
        """Spike count of the sparsest element (identification bottleneck)."""
        return min(len(t) for t in self._trains)

    def describe(self) -> str:
        """One-line basis summary."""
        return (
            f"HyperspaceBasis(M={self.size}, "
            f"min/max spikes={self.min_spike_count()}"
            f"/{max(len(t) for t in self._trains)}, "
            f"occupancy={self.occupancy():.3%})"
        )
