"""Message codec: byte streams over a neuro-bit symbol link.

A practical consequence of the paper's scheme: a single wire plus a
shared hyperspace is a self-clocked digital link.  The transmitter deals
a noise train over M demux wires (packages = symbol slots), encodes each
radix-M digit of the message as *which wire's package spike passes*, and
the receiver recovers the digits from spike positions alone — no clock
line, no equalisation, and any corruption is either detected (silent
package) or corrected upstream.

:class:`NeuroBitCodec` converts ``bytes`` ↔ digit streams ↔ spike
trains over a :class:`~repro.logic.sequential.SymbolStream`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..errors import LogicError
from ..logic.sequential import PackageClock, SymbolStream
from ..orthogonator.base import OrthogonatorOutput
from ..spikes.train import SpikeTrain

__all__ = ["NeuroBitCodec", "CodecCapacity"]


@dataclass(frozen=True)
class CodecCapacity:
    """Capacity summary of one codec configuration.

    Attributes
    ----------
    radix:
        Symbols per package (the demux width M).
    digits_per_byte:
        Radix-M digits needed to cover one byte.
    packages_available / bytes_capacity:
        Link capacity of the underlying record.
    """

    radix: int
    digits_per_byte: int
    packages_available: int
    bytes_capacity: int


class NeuroBitCodec:
    """Bytes ↔ spike trains over a demux-package symbol link.

    Parameters
    ----------
    output:
        A demux orthogonator output; its packages clock the link and its
        width M is the symbol radix (M ≥ 2 required).
    """

    def __init__(self, output: OrthogonatorOutput) -> None:
        self.clock = PackageClock(output)
        if self.clock.n_wires < 2:
            raise LogicError(
                f"codec needs at least 2 demux wires, got {self.clock.n_wires}"
            )
        self.stream = SymbolStream(self.clock)
        self._radix = self.clock.n_wires
        self._digits_per_byte = max(1, math.ceil(math.log(256, self._radix)))

    @property
    def radix(self) -> int:
        """Symbols per package (demux width M)."""
        return self._radix

    @property
    def digits_per_byte(self) -> int:
        """Radix-M digits used to encode one byte."""
        return self._digits_per_byte

    def capacity(self) -> CodecCapacity:
        """Capacity of the underlying record."""
        return CodecCapacity(
            radix=self._radix,
            digits_per_byte=self._digits_per_byte,
            packages_available=self.clock.n_packages,
            bytes_capacity=self.clock.n_packages // self._digits_per_byte,
        )

    # ------------------------------------------------------------------
    # Digit level
    # ------------------------------------------------------------------

    def bytes_to_digits(self, payload: bytes) -> List[int]:
        """Radix-M digit stream for ``payload`` (most significant first)."""
        digits: List[int] = []
        for byte in payload:
            value = byte
            chunk = []
            for _position in range(self._digits_per_byte):
                chunk.append(value % self._radix)
                value //= self._radix
            digits.extend(reversed(chunk))
        return digits

    def digits_to_bytes(self, digits: List[int]) -> bytes:
        """Inverse of :meth:`bytes_to_digits`.

        The digit count must be a multiple of :attr:`digits_per_byte`,
        and each reconstructed value must fit a byte.
        """
        if len(digits) % self._digits_per_byte != 0:
            raise LogicError(
                f"{len(digits)} digits is not a multiple of "
                f"{self._digits_per_byte}"
            )
        payload = bytearray()
        for start in range(0, len(digits), self._digits_per_byte):
            value = 0
            for digit in digits[start : start + self._digits_per_byte]:
                if not (0 <= digit < self._radix):
                    raise LogicError(f"digit {digit} outside radix {self._radix}")
                value = value * self._radix + digit
            if value > 255:
                raise LogicError(f"decoded value {value} exceeds one byte")
            payload.append(value)
        return bytes(payload)

    # ------------------------------------------------------------------
    # Wire level
    # ------------------------------------------------------------------

    def encode(self, payload: bytes) -> SpikeTrain:
        """The wire signal carrying ``payload``."""
        digits = self.bytes_to_digits(payload)
        if digits and len(digits) > self.clock.n_packages:
            raise LogicError(
                f"payload needs {len(digits)} packages, link has "
                f"{self.clock.n_packages}"
            )
        return self.stream.encode(digits)

    def decode(self, wire: SpikeTrain) -> bytes:
        """Recover the payload from a wire signal.

        Trailing silent packages terminate the message; a silent package
        *inside* the message (a lost symbol) raises, because byte
        boundaries can no longer be trusted.
        """
        symbols = self.stream.decode(wire)
        # Strip the trailing silence.
        last = -1
        for index, symbol in enumerate(symbols):
            if symbol is not None:
                last = index
        message = symbols[: last + 1]
        if any(symbol is None for symbol in message):
            raise LogicError("lost symbol inside the message body")
        return self.digits_to_bytes([int(s) for s in message])
