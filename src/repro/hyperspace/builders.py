"""End-to-end hyperspace construction pipelines.

These builders wire together the noise, spike and orthogonator layers so
applications can go from "I want an M-valued hyperspace" to a ready
:class:`~repro.hyperspace.basis.HyperspaceBasis` in one call, matching
the recipes of Section 4:

* :func:`build_demux_basis` — one noise source, zero crossings, cyclic
  demux (uniform rates, natural computer time);
* :func:`build_intersection_basis` — N noise sources (optionally
  correlated for homogenization), zero crossings, all-products
  expansion (exponential basis from linear wires).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import ConfigurationError
from ..noise.correlated import CommonModeMixer
from ..noise.spectra import PAPER_WHITE_BAND, Spectrum, WhiteSpectrum
from ..noise.synthesis import NoiseSynthesizer, RngLike, make_rng
from ..orthogonator.demux import DemuxOrthogonator
from ..orthogonator.intersection import IntersectionOrthogonator
from ..spikes.zero_crossing import AllCrossingDetector
from ..units import SimulationGrid, paper_white_grid
from .basis import HyperspaceBasis

__all__ = [
    "build_demux_basis",
    "build_intersection_basis",
    "generate_basis_records",
    "paper_default_synthesizer",
]


def paper_default_synthesizer(
    grid: Optional[SimulationGrid] = None,
    spectrum: Optional[Spectrum] = None,
) -> NoiseSynthesizer:
    """The paper's default noise configuration (white, 5 MHz–10 GHz)."""
    if grid is None:
        grid = paper_white_grid()
    if spectrum is None:
        spectrum = WhiteSpectrum(PAPER_WHITE_BAND)
    return NoiseSynthesizer(spectrum, grid)


def build_demux_basis(
    n_outputs: int,
    synthesizer: Optional[NoiseSynthesizer] = None,
    rng: RngLike = None,
) -> HyperspaceBasis:
    """Build an M-element basis with a demultiplexer-based orthogonator.

    One noise record is generated, its zero crossings extracted, and the
    resulting spike train dealt over ``n_outputs`` wires.  All elements
    share the source's mean rate divided by M.
    """
    if n_outputs < 1:
        raise ConfigurationError(f"n_outputs must be >= 1, got {n_outputs}")
    if synthesizer is None:
        synthesizer = paper_default_synthesizer()
    record = synthesizer.generate(make_rng(rng))
    source = AllCrossingDetector().detect(record, synthesizer.grid)
    output = DemuxOrthogonator.with_outputs(n_outputs).transform(source)
    return HyperspaceBasis.from_orthogonator(output)


def generate_basis_records(
    n_inputs: int,
    synthesizer: Optional[NoiseSynthesizer] = None,
    common_amplitude: float = 0.0,
    rng: RngLike = None,
) -> list:
    """The N source records :func:`build_intersection_basis` detects.

    Split out so a dispatching parent can draw the records once, export
    them into shared memory, and hand workers the same arrays through
    ``build_intersection_basis(..., records=...)`` — the draw order is
    exactly the builder's, so both paths are bit-identical.
    """
    if n_inputs < 1:
        raise ConfigurationError(f"n_inputs must be >= 1, got {n_inputs}")
    if not (0.0 <= common_amplitude < 1.0):
        raise ConfigurationError(
            f"common_amplitude must lie in [0, 1), got {common_amplitude}"
        )
    if synthesizer is None:
        synthesizer = paper_default_synthesizer()
    rng = make_rng(rng)
    if common_amplitude > 0.0:
        mixer = CommonModeMixer(
            synthesizer,
            common_amplitude=common_amplitude,
            private_amplitude=1.0 - common_amplitude,
        )
        return list(mixer.generate(n_inputs, rng=rng))
    return [synthesizer.generate(rng) for _unused in range(n_inputs)]


def build_intersection_basis(
    n_inputs: int,
    synthesizer: Optional[NoiseSynthesizer] = None,
    common_amplitude: float = 0.0,
    rng: RngLike = None,
    input_names: Optional[Sequence[str]] = None,
    records: Optional[Sequence] = None,
) -> HyperspaceBasis:
    """Build a ``2^N − 1``-element basis with an intersection orthogonator.

    ``common_amplitude`` > 0 correlates the N source noises through a
    common-mode component, homogenizing the output rates as in
    Section 4.2.  Following the paper's convention the amplitudes add
    *linearly* to one: the private amplitude is ``1 − common_amplitude``
    (the paper's pair is 0.945 / 0.055, a source correlation of
    ~0.9966).  With 0.945 the three outputs of an N = 2 device fire
    within a factor ~1.3 of each other instead of ~25×.

    ``records`` supplies the N source records pre-drawn (see
    :func:`generate_basis_records`), skipping the synthesis; ``rng`` is
    then unused.
    """
    if n_inputs < 1:
        raise ConfigurationError(f"n_inputs must be >= 1, got {n_inputs}")
    if not (0.0 <= common_amplitude < 1.0):
        raise ConfigurationError(
            f"common_amplitude must lie in [0, 1), got {common_amplitude}"
        )
    if synthesizer is None:
        synthesizer = paper_default_synthesizer()
    grid = synthesizer.grid
    detector = AllCrossingDetector()

    if records is None:
        records = generate_basis_records(
            n_inputs,
            synthesizer=synthesizer,
            common_amplitude=common_amplitude,
            rng=rng,
        )
    elif len(records) != n_inputs:
        raise ConfigurationError(
            f"expected {n_inputs} records, got {len(records)}"
        )

    trains = [detector.detect(record, grid) for record in records]
    device = IntersectionOrthogonator(n_inputs, input_names=input_names)
    return HyperspaceBasis.from_orthogonator(device.transform(*trains))
