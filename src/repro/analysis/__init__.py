"""Analysis utilities: Rice theory, result tables, progressive readout."""

from .capacity import LinkCapacity, capacity_sweep, link_capacity, optimal_radix
from .progressive import DigitReadout, progressive_readout, value_error_profile
from .robustness import (
    RobustnessPoint,
    injection_sweep,
    jitter_sweep,
    loss_sweep,
)
from .rice import (
    empirical_crossing_rate,
    relative_rate_error,
    rice_mean_isi,
    rice_rate,
    rice_rate_power_law,
    rice_rate_white,
)
from .tables import PaperValue, StatsRow, StatsTable

__all__ = [
    "rice_rate",
    "rice_rate_white",
    "rice_rate_power_law",
    "rice_mean_isi",
    "empirical_crossing_rate",
    "relative_rate_error",
    "PaperValue",
    "StatsRow",
    "StatsTable",
    "DigitReadout",
    "progressive_readout",
    "value_error_profile",
    "RobustnessPoint",
    "jitter_sweep",
    "loss_sweep",
    "injection_sweep",
    "LinkCapacity",
    "link_capacity",
    "capacity_sweep",
    "optimal_radix",
]
