"""Progressive (rough-then-refine) readout over an inhomogeneous basis.

Section 4.2 observes that *without* homogenization "the slow (A·B) bit
can be used for the lower bit values and the faster ones for the higher
values.  Thus, in a short time, coincidences between the signal spikes
and the fast reference trains' spikes will quickly provide a rough
output", refined later by the slow low-value bits.

This module measures that behaviour.  A multi-digit word is transmitted
as one wire per digit; each digit's hyperspace element has its own spike
rate.  :func:`progressive_readout` reports when each digit is first
identified, and :func:`value_error_profile` converts those times into
the numeric error of the running estimate — which collapses fast when
fast elements carry the high-value digits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..hyperspace.basis import HyperspaceBasis
from ..logic.correlator import CoincidenceCorrelator

__all__ = ["DigitReadout", "progressive_readout", "value_error_profile"]


@dataclass(frozen=True)
class DigitReadout:
    """First-detection record of one transmitted digit.

    Attributes
    ----------
    digit_position:
        0 = least significant.
    weight:
        Numeric weight of the digit (radix ** position).
    element:
        Basis element carrying the digit's value.
    detection_slot:
        Slot of the first identifying coincidence.
    """

    digit_position: int
    weight: int
    element: int
    detection_slot: int


def progressive_readout(
    basis: HyperspaceBasis,
    digit_values: Sequence[int],
    radix: int,
) -> List[DigitReadout]:
    """Transmit a word digit-per-wire and record first-detection times.

    ``digit_values[d]`` is the value of digit d (0 = least significant);
    each value must be a valid basis element.  Uses one correlator per
    wire on the element's own reference train — the detection time is
    the element's first spike, i.e. its rate decides its latency.
    """
    if radix < 2:
        raise ConfigurationError(f"radix must be >= 2, got {radix}")
    readouts: List[DigitReadout] = []
    correlator = CoincidenceCorrelator(basis)
    for position, value in enumerate(digit_values):
        element = basis.index_of(value)
        wire = basis.encode(element)
        result = correlator.identify(wire)
        if result.element != element:
            raise ConfigurationError(
                f"digit {position}: identified {result.element}, sent {element}"
            )
        readouts.append(
            DigitReadout(
                digit_position=position,
                weight=radix**position,
                element=element,
                detection_slot=result.decision_slot,
            )
        )
    return readouts


def value_error_profile(
    readouts: Sequence[DigitReadout],
    digit_values: Sequence[int],
    radix: int,
) -> List[Tuple[int, float]]:
    """Running relative error of the word estimate over time.

    Returns (slot, relative_error) pairs at each digit-detection instant;
    undetected digits are estimated at the radix midpoint.  The profile
    is monotone non-increasing, and drops fastest when high-weight digits
    are detected first — the paper's rough-then-refine claim.
    """
    if len(readouts) != len(digit_values):
        raise ConfigurationError(
            f"{len(readouts)} readouts for {len(digit_values)} digits"
        )
    true_value = sum(v * radix**d for d, v in enumerate(digit_values))
    if true_value == 0:
        true_value = 1  # relative error degenerates; avoid division by zero

    events = sorted(readouts, key=lambda r: r.detection_slot)
    known: Dict[int, int] = {}
    profile: List[Tuple[int, float]] = []
    midpoint = (radix - 1) / 2.0
    for event in events:
        known[event.digit_position] = digit_values[event.digit_position]
        estimate = sum(
            (known.get(d, midpoint)) * radix**d for d in range(len(digit_values))
        )
        profile.append(
            (event.detection_slot, abs(estimate - true_value) / abs(true_value))
        )
    return profile
