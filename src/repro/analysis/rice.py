"""Rice's formula: the theory validating the noise→spike mapping.

For a stationary Gaussian process with one-sided PSD S(f), the expected
rate of zero crossings (both directions) is

    ``rate = 2 · sqrt( m2 / m0 )``,   ``m_k = ∫ f^k S(f) df``.

For the paper's bands this gives ≈ 11.55 G crossings/s (τ ≈ 86.6 ps) for
white 5 MHz–10 GHz noise and ≈ 4.9 G crossings/s (τ ≈ 204 ps) for 1/f
2.5 MHz–10 GHz noise — matching Table 1's "90 ps" and "225 ps" within
finite-record tolerance, which is the strongest evidence that our
discrete simulation reproduces the paper's analog setup.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from ..noise.spectra import Spectrum
from ..spikes.zero_crossing import AllCrossingDetector
from ..units import SimulationGrid

__all__ = [
    "rice_rate",
    "rice_rate_white",
    "rice_rate_power_law",
    "rice_mean_isi",
    "empirical_crossing_rate",
    "relative_rate_error",
]


def rice_rate(spectrum: Spectrum) -> float:
    """Expected zero-crossing rate (both directions, per second)."""
    return spectrum.expected_zero_crossing_rate()


def rice_rate_white(f_low: float, f_high: float) -> float:
    """Closed form for band-limited white noise.

    ``rate = 2 · sqrt( (f2³ − f1³) / (3 · (f2 − f1)) )``.
    """
    if not (0 <= f_low < f_high):
        raise ConfigurationError(f"invalid band [{f_low}, {f_high}]")
    m0 = f_high - f_low
    m2 = (f_high**3 - f_low**3) / 3.0
    return 2.0 * math.sqrt(m2 / m0)


def rice_rate_power_law(f_low: float, f_high: float, exponent: float) -> float:
    """Closed form for ``S(f) ∝ 1/f^exponent`` noise in a band.

    ``exponent = 1`` (the paper's 1/f case) gives
    ``m0 = ln(f2/f1)`` and ``m2 = (f2² − f1²)/2``.
    """
    if not (0 < f_low < f_high):
        raise ConfigurationError(f"invalid band [{f_low}, {f_high}]")
    if exponent < 0 or exponent > 2:
        raise ConfigurationError(f"exponent must lie in [0, 2], got {exponent}")

    def moment(order: int) -> float:
        power = order - exponent + 1.0
        if abs(power) < 1e-12:
            return math.log(f_high / f_low)
        return (f_high**power - f_low**power) / power

    return 2.0 * math.sqrt(moment(2) / moment(0))


def rice_mean_isi(spectrum: Spectrum) -> float:
    """Expected mean inter-spike interval (seconds) of the crossing train."""
    return 1.0 / rice_rate(spectrum)


def empirical_crossing_rate(record: np.ndarray, grid: SimulationGrid) -> float:
    """Measured zero-crossing rate (per second) of one record."""
    train = AllCrossingDetector().detect(np.asarray(record, dtype=float), grid)
    return len(train) / grid.duration


def relative_rate_error(record: np.ndarray, grid: SimulationGrid, spectrum: Spectrum) -> float:
    """|measured − Rice| / Rice for one record — the validation metric."""
    theory = rice_rate(spectrum)
    measured = empirical_crossing_rate(record, grid)
    return abs(measured - theory) / theory
