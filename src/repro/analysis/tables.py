"""Tabular result containers and text rendering.

Experiment drivers return :class:`StatsTable` objects — ordered rows of
ISI statistics with paper reference values attached — which render as
aligned text (the benchmark harness prints them) and export to CSV for
archival in EXPERIMENTS.md.
"""

from __future__ import annotations

import io
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..spikes.statistics import IsiStatistics
from ..units import format_time

__all__ = ["PaperValue", "StatsRow", "StatsTable"]


@dataclass(frozen=True)
class PaperValue:
    """A value the paper reports, for side-by-side comparison.

    Attributes
    ----------
    tau_seconds / dtau_seconds:
        The paper's τ and Δτ in seconds (None when not reported).
    tau_samples / dtau_samples:
        The paper's raw sample-domain numbers (Table 2 reports both).
    """

    tau_seconds: Optional[float] = None
    dtau_seconds: Optional[float] = None
    tau_samples: Optional[float] = None
    dtau_samples: Optional[float] = None


@dataclass(frozen=True)
class StatsRow:
    """One labelled row: measured statistics plus the paper's numbers."""

    label: str
    measured: IsiStatistics
    paper: PaperValue = field(default_factory=PaperValue)

    def tau_ratio(self) -> Optional[float]:
        """measured τ / paper τ (None when the paper value is absent)."""
        if self.paper.tau_seconds in (None, 0.0):
            return None
        if math.isnan(self.measured.mean_isi_seconds):
            return None
        return self.measured.mean_isi_seconds / self.paper.tau_seconds


class StatsTable:
    """An ordered collection of :class:`StatsRow` with rendering."""

    def __init__(self, title: str, rows: Optional[Sequence[StatsRow]] = None) -> None:
        self.title = title
        self.rows: List[StatsRow] = list(rows) if rows else []

    def add(self, row: StatsRow) -> None:
        """Append a row."""
        self.rows.append(row)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def render(self) -> str:
        """Aligned text rendering with paper-vs-measured columns."""
        header = (
            f"{'train':<14s} {'n':>6s} "
            f"{'tau meas':>10s} {'tau paper':>10s} "
            f"{'dtau meas':>10s} {'dtau paper':>10s} {'tau ratio':>9s}"
        )
        lines = [self.title, "=" * len(self.title), header, "-" * len(header)]
        for row in self.rows:
            measured = row.measured
            tau_meas = _fmt_seconds(measured.mean_isi_seconds)
            dtau_meas = _fmt_seconds(measured.rms_isi_seconds)
            tau_paper = _fmt_seconds(row.paper.tau_seconds)
            dtau_paper = _fmt_seconds(row.paper.dtau_seconds)
            ratio = row.tau_ratio()
            ratio_text = f"{ratio:9.2f}" if ratio is not None else f"{'-':>9s}"
            lines.append(
                f"{row.label:<14s} {measured.n_spikes:>6d} "
                f"{tau_meas:>10s} {tau_paper:>10s} "
                f"{dtau_meas:>10s} {dtau_paper:>10s} {ratio_text}"
            )
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV export: label, n, tau/dtau measured (s), paper values (s)."""
        buffer = io.StringIO()
        buffer.write(
            "label,n_spikes,tau_measured_s,dtau_measured_s,"
            "tau_paper_s,dtau_paper_s\n"
        )
        for row in self.rows:
            measured = row.measured
            buffer.write(
                f"{row.label},{measured.n_spikes},"
                f"{_csv_number(measured.mean_isi_seconds)},"
                f"{_csv_number(measured.rms_isi_seconds)},"
                f"{_csv_number(row.paper.tau_seconds)},"
                f"{_csv_number(row.paper.dtau_seconds)}\n"
            )
        return buffer.getvalue()


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return format_time(value)


def _csv_number(value: Optional[float]) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return ""
    return f"{value:.6e}"
