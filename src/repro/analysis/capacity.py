"""Information capacity of a neuro-bit symbol link.

The demux-package link (:mod:`repro.logic.sequential`) carries one
radix-M symbol per package, and a package consumes M source spikes, so
for a source of spike rate R the raw link capacity is

    ``C(M) = (R / M) · log2(M)   bits/second``.

``C`` is maximised at ``M = e`` over the reals — i.e. **M = 3** among
integers: the ternary link beats both binary and high-radix links on a
fixed spike budget, a non-obvious design rule for the paper's scheme
that :func:`capacity_sweep` verifies on real noise trains.

(Note the contrast with the *parallelism* argument for large M: wide
hyperspaces pay spikes for per-wire expressiveness, narrow ones for
symbol rate.  Capacity here is per single sequential link.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..errors import ConfigurationError
from ..logic.sequential import PackageClock
from ..orthogonator.demux import DemuxOrthogonator
from ..spikes.train import SpikeTrain

__all__ = ["LinkCapacity", "link_capacity", "capacity_sweep", "optimal_radix"]


@dataclass(frozen=True)
class LinkCapacity:
    """Capacity figures of one link configuration.

    Attributes
    ----------
    radix:
        Symbols per package (demux width M).
    package_rate:
        Complete packages per second delivered by the source.
    bits_per_package:
        ``log2(M)``.
    bits_per_second:
        The product — the link's raw capacity.
    mean_tick_seconds:
        Mean package duration (the link's symbol period).
    """

    radix: int
    package_rate: float
    bits_per_package: float
    bits_per_second: float
    mean_tick_seconds: float


def link_capacity(source: SpikeTrain, radix: int) -> LinkCapacity:
    """Measured capacity of a link built on ``source`` with width ``radix``."""
    if radix < 2:
        raise ConfigurationError(f"radix must be >= 2, got {radix}")
    output = DemuxOrthogonator.with_outputs(radix).transform(source)
    clock = PackageClock(output)
    duration = source.grid.duration
    package_rate = clock.n_packages / duration
    bits = math.log2(radix)
    spans = clock.tick_duration_samples()
    return LinkCapacity(
        radix=radix,
        package_rate=package_rate,
        bits_per_package=bits,
        bits_per_second=package_rate * bits,
        mean_tick_seconds=float(spans.mean()) * source.grid.dt,
    )


def capacity_sweep(source: SpikeTrain, radixes: Sequence[int]) -> List[LinkCapacity]:
    """Capacity at each width in ``radixes`` on the same source train."""
    return [link_capacity(source, radix) for radix in radixes]


def optimal_radix(radixes: Sequence[int], spike_rate: float) -> int:
    """Analytic argmax of ``(R/M)·log2(M)`` over the given widths.

    ``spike_rate`` only scales the curve, so the argmax depends on the
    candidate set alone; it is exposed for symmetric APIs and clarity.
    """
    if spike_rate <= 0:
        raise ConfigurationError(f"spike_rate must be positive, got {spike_rate}")
    best = None
    best_capacity = -math.inf
    for radix in radixes:
        if radix < 2:
            raise ConfigurationError(f"radix must be >= 2, got {radix}")
        capacity = (spike_rate / radix) * math.log2(radix)
        if capacity > best_capacity:
            best_capacity = capacity
            best = radix
    assert best is not None
    return best
