"""Robustness sweeps: identification under jitter, loss and injection.

The paper claims "high resilience" and "variation tolerant circuits can
be designed, while speed is retained" (Sections 1–2).  This module
quantifies the claim on the identification layer by sweeping the three
physical degradations a spike wire suffers:

* **timing jitter** — comparator/interconnect delay variation moves each
  spike by a bounded random offset;
* **spike loss** — missed detections thin the wire;
* **spike injection** — crosstalk adds spikes from a rival element.

For each degradation level the sweep measures the wrong-verdict rate,
silent rate and mean decision latency of a windowed, confidence-gated
verdict.  The headline result (asserted by the ablation bench): loss
*never* causes a wrong verdict (it only delays), jitter within the
coincidence window is free, and injection is defeated by majority
voting in proportion to the vote count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..hyperspace.basis import HyperspaceBasis
from ..baselines.periodic import identification_verdict
from ..spikes.train import SpikeTrain

__all__ = [
    "RobustnessPoint",
    "jitter_sweep",
    "loss_sweep",
    "injection_sweep",
]


@dataclass(frozen=True)
class RobustnessPoint:
    """Outcome of one degradation level.

    Attributes
    ----------
    level:
        The swept parameter (jitter in samples, loss probability, or
        injected-spike count).
    wrong_rate / silent_rate:
        Fractions over elements × trials.
    mean_decision_slot:
        Mean slot of the verdict-deciding evidence (NaN if all silent).
    """

    level: float
    wrong_rate: float
    silent_rate: float
    mean_decision_slot: float


def _sweep(
    basis: HyperspaceBasis,
    levels: Sequence[float],
    degrade: Callable[[SpikeTrain, float, np.random.Generator], SpikeTrain],
    rng: np.random.Generator,
    trials: int,
    window: int,
    min_confidence: float,
) -> List[RobustnessPoint]:
    points: List[RobustnessPoint] = []
    for level in levels:
        wrong = 0
        silent = 0
        decision_slots: List[int] = []
        for _trial in range(trials):
            for element, reference in enumerate(basis.trains):
                degraded = degrade(reference, level, rng)
                verdict = identification_verdict(
                    basis, degraded, window=window, min_confidence=min_confidence
                )
                if verdict is None:
                    silent += 1
                elif verdict != element:
                    wrong += 1
                else:
                    first = degraded.first_spike_index()
                    if first is not None:
                        decision_slots.append(first)
        total = trials * basis.size
        points.append(
            RobustnessPoint(
                level=float(level),
                wrong_rate=wrong / total,
                silent_rate=silent / total,
                mean_decision_slot=(
                    float(np.mean(decision_slots)) if decision_slots else float("nan")
                ),
            )
        )
    return points


def jitter_sweep(
    basis: HyperspaceBasis,
    jitters: Sequence[int],
    rng: np.random.Generator,
    trials: int = 3,
    window: int = 2,
    min_confidence: float = 0.5,
) -> List[RobustnessPoint]:
    """Wrong/silent rates vs per-spike timing jitter (±samples)."""
    for jitter in jitters:
        if jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {jitter}")

    def degrade(train: SpikeTrain, level: float, r: np.random.Generator):
        return train.jittered(int(level), r)

    return _sweep(basis, jitters, degrade, rng, trials, window, min_confidence)


def loss_sweep(
    basis: HyperspaceBasis,
    loss_probabilities: Sequence[float],
    rng: np.random.Generator,
    trials: int = 3,
    window: int = 0,
    min_confidence: float = 0.0,
) -> List[RobustnessPoint]:
    """Wrong/silent rates vs spike-loss probability.

    Exact coincidence and no confidence gate: a thinned wire is a subset
    of its reference train, so a wrong verdict would require a rival to
    out-coincide the wire with itself — impossible on an orthogonal
    basis, which the sweep demonstrates (wrong_rate identically 0).
    """
    for p in loss_probabilities:
        if not (0.0 <= p < 1.0):
            raise ConfigurationError(f"loss probability {p} outside [0, 1)")

    def degrade(train: SpikeTrain, level: float, r: np.random.Generator):
        return train.thinned(1.0 - level, r)

    return _sweep(
        basis, loss_probabilities, degrade, rng, trials, window, min_confidence
    )


def injection_sweep(
    basis: HyperspaceBasis,
    injected_counts: Sequence[int],
    rng: np.random.Generator,
    trials: int = 3,
    window: int = 0,
    min_confidence: float = 0.0,
) -> List[RobustnessPoint]:
    """Wrong/silent rates vs number of injected rival spikes.

    Each trial injects ``count`` spikes of a random *rival* element's
    reference train into the wire.  With plurality identification the
    true element keeps winning while its own spikes outnumber the
    injection — the sweep locates that crossover.
    """
    for count in injected_counts:
        if count < 0:
            raise ConfigurationError(f"injected count must be >= 0, got {count}")

    def degrade(train: SpikeTrain, level: float, r: np.random.Generator):
        count = int(level)
        if count == 0:
            return train
        # Pick a rival element uniformly (any train that is not `train`).
        rivals = [t for t in basis.trains if t is not train]
        rival = rivals[int(r.integers(len(rivals)))]
        take = min(count, len(rival))
        if take == 0:
            return train
        chosen = r.choice(rival.indices, size=take, replace=False)
        return train | SpikeTrain(chosen, train.grid)

    return _sweep(
        basis, injected_counts, degrade, rng, trials, window, min_confidence
    )
