"""Experiment specifications: the unit of work the pipeline executes.

An :class:`ExperimentSpec` ties together everything the runner and CLI
need to know about one experiment:

* a **name** and one-line **description** (the ``repro list`` output);
* a **tier** — ``"table"``, ``"figure"``, ``"claim"`` or ``"serving"`` —
  mirroring the driver table in :mod:`repro.experiments`;
* a typed, frozen **config dataclass** holding every knob (seed, record
  length, sweep ranges); :meth:`ExperimentSpec.make_config` builds one
  from keyword overrides and validates the keys;
* a **seed policy** — ``"seeded"`` specs expose a ``seed`` config field
  the CLI's ``--seed`` maps onto; ``"fixed"`` specs are deterministic
  and ignore the flag (the energy model);
* the **run** callable (config → result, where the result renders via
  ``.render()`` and serialises via :mod:`repro.pipeline.serialize`);
* optionally a **shard plan** (``shard`` / ``run_shard`` / ``merge``):
  ``shard`` splits a config into independent shard tasks, ``run_shard``
  executes one, ``merge`` reassembles the full result.  The shard count
  is a property of the *config*, never of the worker count, so a
  sharded run is bit-identical to a serial one by construction — the
  runner only decides *where* shards execute;
* optionally a **shared-memory shard plan** (``shard_shared``): given a
  config and a live :class:`~repro.backend.shared.SharedArena`, build
  the workload *once*, export it into the arena, and return shard tasks
  that carry metadata-only handles instead of rebuilding instructions.
  ``run_shard`` must accept these tasks too (attach instead of
  rebuild).  The runner uses this plan when worker pools and shared
  memory are both available and falls back to ``shard`` otherwise —
  both paths produce bit-identical results.

Specs are registered in :mod:`repro.pipeline.registry` by the experiment
modules themselves at import time.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from ..errors import PipelineError

__all__ = ["ExperimentSpec", "TIERS", "SEED_POLICIES"]

#: Valid spec tiers, in the order ``repro list`` groups them.
TIERS = ("table", "figure", "claim", "serving")

#: Valid seed policies.
SEED_POLICIES = ("seeded", "fixed")


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: config schema, driver, shard plan.

    Attributes
    ----------
    name / description / tier:
        Identity and the ``repro list`` line.
    config_type:
        A frozen dataclass; every field has a default so the zero-arg
        config reproduces the paper run.
    run:
        Full serial driver, ``config → result``.  For shardable specs
        this is the ``merge(shard results)`` composition, keeping the
        two paths structurally identical.
    seed_policy:
        ``"seeded"`` (config has a ``seed`` field) or ``"fixed"``.
    shard / run_shard / merge:
        The optional shard plan; all three must be given together.
        ``shard(config)`` returns picklable shard tasks,
        ``run_shard(task)`` runs one anywhere (it rebuilds its inputs
        deterministically from the task), ``merge(config, parts)``
        reassembles the result.
    shard_shared:
        Optional zero-copy variant of ``shard``:
        ``shard_shared(config, arena)`` materialises the workload once,
        exports it into the arena's shared-memory segments, and returns
        tasks carrying metadata-only handles; ``run_shard`` executes
        them by attaching.  Requires the full shard plan.
    """

    name: str
    description: str
    tier: str
    config_type: type
    run: Callable[[Any], Any]
    seed_policy: str = "seeded"
    shard: Optional[Callable[[Any], Sequence[Any]]] = None
    run_shard: Optional[Callable[[Any], Any]] = None
    merge: Optional[Callable[[Any, Sequence[Any]], Any]] = None
    shard_shared: Optional[Callable[[Any, Any], Sequence[Any]]] = None

    def __post_init__(self) -> None:
        if self.tier not in TIERS:
            raise PipelineError(
                f"spec {self.name!r}: tier must be one of {TIERS}, "
                f"got {self.tier!r}"
            )
        if self.seed_policy not in SEED_POLICIES:
            raise PipelineError(
                f"spec {self.name!r}: seed_policy must be one of "
                f"{SEED_POLICIES}, got {self.seed_policy!r}"
            )
        if not (dataclasses.is_dataclass(self.config_type)
                and isinstance(self.config_type, type)):
            raise PipelineError(
                f"spec {self.name!r}: config_type must be a dataclass, "
                f"got {self.config_type!r}"
            )
        plan = (self.shard, self.run_shard, self.merge)
        if any(p is not None for p in plan) and not all(
            p is not None for p in plan
        ):
            raise PipelineError(
                f"spec {self.name!r}: shard, run_shard and merge must be "
                "given together"
            )
        if self.shard_shared is not None and self.shard is None:
            raise PipelineError(
                f"spec {self.name!r}: shard_shared requires the full "
                "shard/run_shard/merge plan (it is the rebuild fallback)"
            )
        if self.seed_policy == "seeded" and "seed" not in self.field_names():
            raise PipelineError(
                f"spec {self.name!r}: seeded specs need a 'seed' config field"
            )

    # ------------------------------------------------------------------
    # Config handling
    # ------------------------------------------------------------------

    def field_names(self) -> Tuple[str, ...]:
        """The config dataclass's field names, in declaration order."""
        return tuple(f.name for f in dataclasses.fields(self.config_type))

    def make_config(
        self,
        seed: Optional[int] = None,
        overrides: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """Build a config from an overrides mapping, applying the seed policy.

        ``seed`` maps onto the config's ``seed`` field for ``"seeded"``
        specs (an explicit ``"seed"`` override wins) and is ignored for
        ``"fixed"`` specs.  Unknown override keys raise
        :class:`~repro.errors.PipelineError` naming the valid fields.
        """
        overrides = dict(overrides or {})
        fields = self.field_names()
        unknown = sorted(set(overrides) - set(fields))
        if unknown:
            raise PipelineError(
                f"spec {self.name!r} has no config field(s) {unknown}; "
                f"available: {list(fields)}"
            )
        if seed is not None and self.seed_policy == "seeded":
            overrides.setdefault("seed", int(seed))
        return self.config_type(**overrides)

    def config_from_jsonable(self, payload: Dict[str, Any]) -> Any:
        """Rebuild a config from an artifact's JSON ``config`` mapping.

        The inverse of serialising a config: JSON has no tuples, so
        lists coerce back to (nested) tuples, which is what every config
        dataclass declares for its sequence fields.
        """
        kwargs = {
            name: _listless(payload[name])
            for name in self.field_names()
            if name in payload
        }
        return self.config_type(**kwargs)

    @property
    def shardable(self) -> bool:
        """True when the spec carries a shard plan."""
        return self.shard is not None

    def seeded(self) -> bool:
        """True when the CLI's ``--seed`` applies to this spec."""
        return self.seed_policy == "seeded"


def _listless(value: Any) -> Any:
    """Lists → tuples, recursively (JSON round-trip support)."""
    if isinstance(value, list):
        return tuple(_listless(v) for v in value)
    return value
