"""Result serialisation: any experiment result → JSON-ready data.

Experiment results are frozen dataclasses composed of numpy arrays,
spike trains, stats tables and plain numbers.  :func:`to_jsonable`
lowers all of that to dicts/lists/str/numbers so the
:class:`~repro.pipeline.store.ArtifactStore` can ``json.dumps`` it:

* dataclasses → ``{field: value}`` dicts (covers every ``*Result``,
  ``*Point`` and config class);
* numpy scalars and arrays → Python numbers and lists;
* :class:`~repro.spikes.train.SpikeTrain` → grid + spike-slot list (the
  full information content — figures re-render from it);
* :class:`~repro.analysis.tables.StatsTable` → title + rows;
* sets / frozensets → sorted lists (deterministic artifacts);
* anything unknown → its ``repr`` (never raises: an artifact with one
  opaque field beats a failed run).
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from ..analysis.tables import StatsTable
from ..spikes.train import SpikeTrain
from ..units import SimulationGrid

__all__ = ["to_jsonable"]


def to_jsonable(obj: Any) -> Any:
    """Recursively lower ``obj`` to JSON-serialisable data."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, (np.bool_, np.integer, np.floating)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return [to_jsonable(v) for v in obj.tolist()]
    if isinstance(obj, SpikeTrain):
        return {
            "n_spikes": len(obj),
            "grid": to_jsonable(obj.grid),
            "indices": obj.indices.tolist(),
        }
    if isinstance(obj, SimulationGrid):
        return {"n_samples": obj.n_samples, "dt": obj.dt}
    if isinstance(obj, StatsTable):
        return {
            "title": obj.title,
            "rows": [to_jsonable(row) for row in obj.rows],
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (set, frozenset)):
        return sorted(to_jsonable(v) for v in obj)
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    return repr(obj)
