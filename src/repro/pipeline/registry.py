"""The central experiment registry.

Experiment modules register their :class:`~repro.pipeline.spec.ExperimentSpec`
at import time; importing :mod:`repro.experiments` therefore populates
the registry with every driver.  :func:`ensure_loaded` performs that
import lazily so the pipeline package itself never depends on the
experiment modules (they depend on it), and so worker processes that
receive only a spec *name* can resolve it locally.

The CLI, the :class:`~repro.pipeline.runner.Runner` and the tests all go
through this module — there is no hand-maintained experiment list
anywhere else.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import PipelineError
from .spec import ExperimentSpec

__all__ = [
    "register",
    "unregister",
    "get_spec",
    "spec_names",
    "all_specs",
    "specs_by_tier",
    "ensure_loaded",
]

_REGISTRY: Dict[str, ExperimentSpec] = {}
_LOADED = False


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to the registry; returns it so modules can keep a ref.

    Duplicate names raise — two drivers fighting over one name is
    always a wiring bug, never something to resolve silently.  The one
    exception: ``python -m repro.experiments.<name>`` executes a module
    *twice* (once on package import, once as ``__main__``), so a
    duplicate whose callables live in ``__main__`` is the already
    registered module re-running — the original registration wins.
    """
    if spec.name in _REGISTRY:
        if getattr(spec.run, "__module__", None) == "__main__":
            return _REGISTRY[spec.name]
        raise PipelineError(f"experiment {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a spec (test support for temporary registrations)."""
    _REGISTRY.pop(name, None)


def ensure_loaded() -> None:
    """Import the experiment modules so their specs are registered.

    The flag flips only after a *successful* import: a failed import
    (one broken driver module) must surface its real error again on
    the next call, not a misleading empty registry.
    """
    global _LOADED
    if not _LOADED:
        import repro.experiments  # noqa: F401  (registration side effect)
        _LOADED = True


def get_spec(name: str) -> ExperimentSpec:
    """Resolve a spec by name; raises with the available names."""
    ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PipelineError(
            f"unknown experiment {name!r}; available: {spec_names()}"
        ) from None


def spec_names() -> List[str]:
    """All registered names, sorted."""
    ensure_loaded()
    return sorted(_REGISTRY)


def all_specs() -> List[ExperimentSpec]:
    """All registered specs, ordered by name."""
    return [_REGISTRY[name] for name in spec_names()]


def specs_by_tier(tier: str) -> List[ExperimentSpec]:
    """The registered specs of one tier, ordered by name."""
    return [spec for spec in all_specs() if spec.tier == tier]
