"""The artifact store: every run leaves a JSON + text record on disk.

One :class:`RunRecord` captures a single experiment execution — config,
seed, shard/job counts, wall time, the serialised result (or the error
traceback) and the rendered text report.  :class:`ArtifactStore` writes
each record as::

    <root>/<experiment>.json   # machine-readable: metadata + result
    <root>/<experiment>.txt    # the rendered report (or the traceback)

plus a ``manifest.json`` summarising a multi-experiment run.  The JSON
payload separates volatile metadata (wall time) from the deterministic
``result`` block, so bit-identity checks between serial and sharded
runs compare ``record["result"]`` and the text artifact directly.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import PipelineError

__all__ = ["RunRecord", "ArtifactStore", "SCHEMA_VERSION"]

#: Bumped whenever the artifact layout changes incompatibly.
SCHEMA_VERSION = 1


@dataclass
class RunRecord:
    """Everything persisted about one experiment execution.

    ``config`` and ``result`` are already JSON-ready (the runner lowers
    them through :func:`~repro.pipeline.serialize.to_jsonable`), which
    keeps records picklable for pool workers and trivially writable.
    """

    experiment: str
    status: str  # "ok" | "error"
    config: Dict[str, Any]
    seed: Optional[int]
    jobs: int
    n_shards: int
    wall_seconds: float
    result: Any = None
    rendered: str = ""
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the run completed without raising."""
        return self.status == "ok"

    def to_payload(self) -> Dict[str, Any]:
        """The JSON artifact body."""
        payload = dataclasses.asdict(self)
        payload["schema"] = SCHEMA_VERSION
        return payload


class ArtifactStore:
    """Writes and reads run artifacts under one output directory."""

    def __init__(self, root: Union[str, pathlib.Path]) -> None:
        self.root = pathlib.Path(root)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def json_path(self, experiment: str) -> pathlib.Path:
        """Where the JSON artifact of ``experiment`` lives."""
        return self.root / f"{experiment}.json"

    def text_path(self, experiment: str) -> pathlib.Path:
        """Where the text artifact of ``experiment`` lives."""
        return self.root / f"{experiment}.txt"

    def manifest_path(self) -> pathlib.Path:
        """Where the run manifest lives."""
        return self.root / "manifest.json"

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def save(self, record: RunRecord) -> Tuple[pathlib.Path, pathlib.Path]:
        """Persist one record; returns ``(json_path, text_path)``."""
        self.root.mkdir(parents=True, exist_ok=True)
        json_path = self.json_path(record.experiment)
        text_path = self.text_path(record.experiment)
        json_path.write_text(
            json.dumps(record.to_payload(), indent=2, sort_keys=True) + "\n"
        )
        text = record.rendered if record.ok else (record.error or "")
        text_path.write_text(text.rstrip("\n") + "\n")
        return json_path, text_path

    def write_manifest(self, records: List[RunRecord]) -> pathlib.Path:
        """Summarise a multi-experiment run as ``manifest.json``."""
        self.root.mkdir(parents=True, exist_ok=True)
        manifest = {
            "schema": SCHEMA_VERSION,
            "n_experiments": len(records),
            "n_failed": sum(1 for r in records if not r.ok),
            "experiments": {
                r.experiment: {
                    "status": r.status,
                    "wall_seconds": r.wall_seconds,
                    "jobs": r.jobs,
                    "n_shards": r.n_shards,
                    "json": self.json_path(r.experiment).name,
                    "text": self.text_path(r.experiment).name,
                }
                for r in records
            },
        }
        path = self.manifest_path()
        path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        return path

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def load(self, experiment: str) -> Dict[str, Any]:
        """Parse the JSON artifact of ``experiment``."""
        path = self.json_path(experiment)
        if not path.exists():
            raise PipelineError(f"no artifact for {experiment!r} under {self.root}")
        return json.loads(path.read_text())

    def load_text(self, experiment: str) -> str:
        """Read the text artifact of ``experiment``."""
        path = self.text_path(experiment)
        if not path.exists():
            raise PipelineError(f"no artifact for {experiment!r} under {self.root}")
        return path.read_text()

    def load_manifest(self) -> Dict[str, Any]:
        """Parse ``manifest.json``."""
        path = self.manifest_path()
        if not path.exists():
            raise PipelineError(f"no manifest under {self.root}")
        return json.loads(path.read_text())
