"""The corpus store: an indexed on-disk library of packed spike rows.

Sibling to :class:`~repro.pipeline.store.ArtifactStore`, but for *data*
instead of run records.  A corpus is a directory::

    <root>/manifest.json           # geometry + row-range index
    <root>/segments/seg-00000.npy  # packed words, rows [0, r0)
    <root>/segments/seg-00001.npy  # packed words, rows [r0, r1)
    ...

Each segment is a word-aligned packed bitset written through
:mod:`repro.backend.mmapstore` — the same ``(rows, ceil(n_samples/64))``
``uint64`` form the kernels compute on, so serving a corpus never
transforms anything: :meth:`CorpusStore.open_rows` maps the covering
segments read-only and hands back packed-primary
:class:`~repro.backend.batch.SpikeTrainBatch` views whose pages fault
in only as kernels touch them.

The manifest carries the grid geometry (``n_samples``/``dt``) and a
row-range index (``row_start``/``row_stop`` per segment), so

* any row window resolves to its covering segments with a bisect —
  no segment is opened, let alone read, outside the window;
* a corpus built on one grid cannot silently serve a basis on another
  (:meth:`CorpusStore.grid` is checked at server startup);
* ``repro corpus info`` answers from the manifest + ``.npy`` headers
  alone, without faulting in a single payload page.

Ingestion is **append-only and streaming**: :meth:`CorpusStore.writer`
yields a writer whose every :meth:`~CorpusWriter.append` persists one
batch as one new segment and re-publishes the manifest — the
working-set of a build is one chunk, never the corpus, and a reopened
store keeps appending after the existing rows.  Segments are immutable
once written; there is no rewrite path by design.
"""

from __future__ import annotations

import bisect
import json
import pathlib
import zlib
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple, Union

import numpy as np

from ..backend import mmapstore
from ..backend import packed as packed_kernels
from ..backend.batch import SpikeTrainBatch
from ..errors import PipelineError
from ..testing import faults
from ..units import SimulationGrid

__all__ = ["CorpusStore", "CorpusWriter", "CORPUS_SCHEMA_VERSION"]

#: Bumped whenever the corpus layout changes incompatibly.
CORPUS_SCHEMA_VERSION = 1

_SEGMENT_DIR = "segments"


class CorpusStore:
    """Reads and appends to one corpus directory.

    Construct over an existing corpus (``CorpusStore(root)``) to query
    it, or create an empty one with :meth:`create` and fill it through
    :meth:`writer`.

    Every segment carries a CRC32 of its packed words in the manifest
    (written at append time).  With ``verify=True`` (the default) a
    segment's checksum is recomputed the first time a read window
    touches it — once per store instance, cached after that — so bit
    rot or a torn write surfaces as a clear
    :class:`~repro.errors.PipelineError` naming the corrupt segment
    instead of silently wrong results.  Segments written before
    checksums existed (no ``crc32`` manifest key) are served without
    verification.
    """

    def __init__(
        self, root: Union[str, pathlib.Path], *, verify: bool = True
    ) -> None:
        self.root = pathlib.Path(root)
        manifest = self.manifest_path()
        if not manifest.exists():
            raise PipelineError(
                f"no corpus under {self.root} (missing {manifest.name}); "
                f"build one with CorpusStore.create / `repro corpus build`"
            )
        self._manifest = self._load_manifest()
        self._verify_reads = bool(verify)
        self._verified: Set[str] = set()

    # ------------------------------------------------------------------
    # Creation
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls, root: Union[str, pathlib.Path], grid: SimulationGrid
    ) -> "CorpusStore":
        """Initialise an empty corpus for ``grid`` at ``root``.

        Refuses to overwrite an existing manifest — corpora are
        append-only; a rebuild is a new directory.
        """
        root = pathlib.Path(root)
        manifest = root / "manifest.json"
        if manifest.exists():
            raise PipelineError(
                f"corpus already exists at {root}; corpora are append-only "
                f"(open it with CorpusStore(root) to keep appending)"
            )
        root.mkdir(parents=True, exist_ok=True)
        (root / _SEGMENT_DIR).mkdir(exist_ok=True)
        payload = {
            "schema": CORPUS_SCHEMA_VERSION,
            "kind": "corpus",
            "n_samples": int(grid.n_samples),
            "dt": float(grid.dt),
            "n_words": packed_kernels.n_packed_words(grid.n_samples),
            "n_rows": 0,
            "n_spikes": 0,
            "segments": [],
        }
        cls._publish(manifest, payload)
        return cls(root)

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------

    def manifest_path(self) -> pathlib.Path:
        """Where the corpus manifest lives."""
        return self.root / "manifest.json"

    def _load_manifest(self) -> Dict[str, Any]:
        try:
            manifest = json.loads(self.manifest_path().read_text())
        except (OSError, ValueError) as exc:
            raise PipelineError(
                f"unreadable corpus manifest under {self.root}: {exc}"
            ) from exc
        if manifest.get("kind") != "corpus":
            raise PipelineError(
                f"{self.manifest_path()} is not a corpus manifest"
            )
        if manifest.get("schema") != CORPUS_SCHEMA_VERSION:
            raise PipelineError(
                f"corpus schema {manifest.get('schema')!r} unsupported "
                f"(this build reads schema {CORPUS_SCHEMA_VERSION})"
            )
        return manifest

    @staticmethod
    def _publish(path: pathlib.Path, payload: Dict[str, Any]) -> None:
        # Write-then-rename so a crashed append never leaves a reader
        # with a torn manifest: the index either names the new segment
        # completely or not at all (the orphan file is harmless).
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        tmp.replace(path)

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def grid(self) -> SimulationGrid:
        """The simulation grid every corpus row lives on."""
        return SimulationGrid(
            n_samples=int(self._manifest["n_samples"]),
            dt=float(self._manifest["dt"]),
        )

    @property
    def n_rows(self) -> int:
        """Total rows across all segments."""
        return int(self._manifest["n_rows"])

    @property
    def n_segments(self) -> int:
        """Number of immutable segment files."""
        return len(self._manifest["segments"])

    def info(self) -> Dict[str, Any]:
        """A JSON-ready summary (what ``repro corpus info`` prints).

        Answers from the manifest plus segment file sizes — no payload
        pages are touched.
        """
        segments = self._manifest["segments"]
        disk_bytes = 0
        for entry in segments:
            path = self.root / entry["file"]
            if not path.exists():
                raise PipelineError(f"corpus segment missing: {path}")
            disk_bytes += path.stat().st_size
        return {
            "root": str(self.root),
            "schema": self._manifest["schema"],
            "n_rows": self.n_rows,
            "n_segments": len(segments),
            "n_samples": int(self._manifest["n_samples"]),
            "dt": float(self._manifest["dt"]),
            "n_words": int(self._manifest["n_words"]),
            "n_spikes": int(self._manifest["n_spikes"]),
            "disk_bytes": disk_bytes,
            "segments": [dict(entry) for entry in segments],
        }

    # ------------------------------------------------------------------
    # Reading (mapped, windowed)
    # ------------------------------------------------------------------

    def open_rows(self, start: int, stop: int) -> SpikeTrainBatch:
        """Rows ``[start, stop)`` as a packed-primary mapped batch.

        A window inside one segment comes back as a *zero-copy* view of
        that segment's mapping — no payload bytes move at open time.  A
        window straddling segment boundaries concatenates the covering
        mapped slices (one copy, bounded by the window size — never by
        the corpus).  Either way peak memory is O(window).
        """
        start, stop = int(start), int(stop)
        if not (0 <= start <= stop <= self.n_rows):
            raise PipelineError(
                f"row range [{start}, {stop}) outside corpus of "
                f"{self.n_rows} rows"
            )
        grid = self.grid()
        if start == stop:
            return SpikeTrainBatch._from_packed_words(
                np.empty(
                    (0, packed_kernels.n_packed_words(grid.n_samples)),
                    dtype=np.uint64,
                ),
                grid,
                validate=False,
            )
        covering = self._covering(start, stop)
        fault = faults.maybe_fire("corpus.open_rows")
        if fault is not None and fault.action == "corrupt" and covering:
            self._corrupt_segment(covering[0][0], fault.param_int)
        if self._verify_reads:
            for entry, _lo, _hi in covering:
                self._verify_segment(entry)
        pieces = [
            mmapstore.open_words(
                self.root / entry["file"],
                grid.n_samples,
                rows=(lo - entry["row_start"], hi - entry["row_start"]),
            )
            for entry, lo, hi in covering
        ]
        words = pieces[0] if len(pieces) == 1 else np.concatenate(pieces)
        # Tail cleanliness was enforced when the segment was written;
        # validating here would fault in one word per row needlessly.
        return SpikeTrainBatch._from_packed_words(words, grid, validate=False)

    def iter_chunks(
        self, chunk_rows: int
    ) -> Iterator[Tuple[int, int, SpikeTrainBatch]]:
        """Yield ``(lo, hi, batch)`` windows of at most ``chunk_rows``.

        The out-of-core scan: each yielded batch maps only its own
        window, so a full pass over the corpus peaks at one chunk of
        resident pages (plus whatever the page cache keeps warm).
        """
        if chunk_rows < 1:
            raise PipelineError(f"chunk_rows must be >= 1, got {chunk_rows}")
        for lo in range(0, self.n_rows, chunk_rows):
            hi = min(lo + chunk_rows, self.n_rows)
            yield lo, hi, self.open_rows(lo, hi)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def _segment_crc(self, entry: Dict[str, Any]) -> int:
        """CRC32 of one segment's packed words, computed in bounded chunks."""
        words = mmapstore.open_words(
            self.root / entry["file"], int(self._manifest["n_samples"])
        )
        crc = 0
        # ~4 MiB of rows at a time: the checksum pass never holds more
        # than one chunk of pages, matching the store's O(window) rule.
        step = max(1, (4 << 20) // max(1, words.shape[1] * 8))
        for lo in range(0, words.shape[0], step):
            crc = zlib.crc32(words[lo : lo + step], crc)
        return crc & 0xFFFFFFFF

    def _verify_segment(self, entry: Dict[str, Any]) -> None:
        """Check one segment against its manifest CRC32 (cached per store)."""
        if "crc32" not in entry or entry["file"] in self._verified:
            return
        crc = self._segment_crc(entry)
        if crc != int(entry["crc32"]):
            raise PipelineError(
                f"corpus segment corrupt: {self.root / entry['file']} "
                f"(crc32 mismatch: manifest {int(entry['crc32']):#010x}, "
                f"file {crc:#010x}); the segment's bytes changed since it "
                f"was written — restore it from a backup or rebuild the "
                f"corpus"
            )
        self._verified.add(entry["file"])

    def verify(self) -> Dict[str, int]:
        """Checksum every segment now (``repro corpus info --verify``).

        Raises the same corrupt-segment :class:`~repro.errors.
        PipelineError` as a read would; returns how many segments were
        checked and how many predate checksums.
        """
        checked = unchecksummed = 0
        for entry in self._manifest["segments"]:
            if "crc32" in entry:
                self._verify_segment(entry)
                checked += 1
            else:
                unchecksummed += 1
        return {
            "segments_checked": checked,
            "segments_unchecksummed": unchecksummed,
        }

    def _corrupt_segment(self, entry: Dict[str, Any], offset: int) -> None:
        """Chaos-test hook: flip one payload byte of a segment on disk.

        Only reachable through an armed ``corpus.open_rows=corrupt``
        fault; ``offset`` counts back from the end of the file (0 = the
        last byte), which is always payload, never the ``.npy`` header.
        """
        path = self.root / entry["file"]
        with open(path, "r+b") as handle:
            handle.seek(-(1 + max(0, offset)), 2)
            byte = handle.read(1)
            handle.seek(-1, 1)
            handle.write(bytes([byte[0] ^ 0xFF]))
        self._verified.discard(entry["file"])

    def _covering(
        self, start: int, stop: int
    ) -> List[Tuple[Dict[str, Any], int, int]]:
        """The segments overlapping ``[start, stop)`` with clipped bounds."""
        segments = self._manifest["segments"]
        starts = [entry["row_start"] for entry in segments]
        first = bisect.bisect_right(starts, start) - 1
        covering = []
        for entry in segments[max(first, 0):]:
            if entry["row_start"] >= stop:
                break
            lo = max(start, int(entry["row_start"]))
            hi = min(stop, int(entry["row_stop"]))
            if lo < hi:
                covering.append((entry, lo, hi))
        return covering

    # ------------------------------------------------------------------
    # Writing (append-only, streaming)
    # ------------------------------------------------------------------

    def writer(self) -> "CorpusWriter":
        """An appending writer over this store (use as a context manager)."""
        return CorpusWriter(self)


class CorpusWriter:
    """Streams batches into a corpus, one immutable segment per append.

    Each :meth:`append` persists the batch's packed words as the next
    ``segments/seg-NNNNN.npy`` and atomically re-publishes the manifest
    with the new row range — so ingestion is resumable (a crash loses
    at most the segment being written) and its working set is one
    batch.  Reopening the store and writing again continues after the
    existing rows.
    """

    def __init__(self, store: CorpusStore) -> None:
        self._store = store
        self._grid = store.grid()

    def __enter__(self) -> "CorpusWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    @property
    def n_rows(self) -> int:
        """Rows persisted so far (including pre-existing segments)."""
        return self._store.n_rows

    def append(self, batch: SpikeTrainBatch) -> Tuple[int, int]:
        """Persist ``batch`` as the next segment; returns its row range."""
        if batch.grid != self._grid:
            raise PipelineError(
                f"batch grid {batch.grid.describe()} does not match corpus "
                f"grid {self._grid.describe()}"
            )
        if batch.n_trains < 1:
            raise PipelineError("refusing to append an empty segment")
        manifest = self._store._manifest
        index = len(manifest["segments"])
        rel = f"{_SEGMENT_DIR}/seg-{index:05d}.npy"
        words = np.ascontiguousarray(batch.packed_words())
        mmapstore.write_words(self._store.root / rel, words)
        row_start = int(manifest["n_rows"])
        row_stop = row_start + batch.n_trains
        n_spikes = int(batch.total_spikes)
        manifest["segments"].append(
            {
                "file": rel,
                "row_start": row_start,
                "row_stop": row_stop,
                "n_spikes": n_spikes,
                # Checksum of exactly the words written: a reader
                # recomputing this over the mapped file proves the
                # payload survived the disk round trip bit-for-bit.
                "crc32": zlib.crc32(words) & 0xFFFFFFFF,
            }
        )
        manifest["n_rows"] = row_stop
        manifest["n_spikes"] = int(manifest["n_spikes"]) + n_spikes
        CorpusStore._publish(self._store.manifest_path(), manifest)
        return row_start, row_stop
