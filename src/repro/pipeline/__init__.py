"""The experiment pipeline: registry + sharded runner + artifact store.

This package is the execution layer every paper experiment runs
through:

* :mod:`~repro.pipeline.spec` — :class:`ExperimentSpec`, the typed
  description of one experiment (config dataclass, driver, seed policy,
  optional shard plan);
* :mod:`~repro.pipeline.registry` — the central name → spec registry,
  populated by the experiment modules at import time;
* :mod:`~repro.pipeline.runner` — :class:`Runner`, executing specs
  serially, sharded across a persistent worker pool (``jobs > 1`` on a
  single spec, dispatching zero-copy shared-memory handles where the
  spec and host support it) or with whole experiments as pool tasks
  (``run_many``);
* :mod:`~repro.pipeline.store` — :class:`ArtifactStore`, persisting
  every run as a JSON + text artifact pair with run metadata;
* :mod:`~repro.pipeline.corpus` — :class:`CorpusStore`, the indexed
  on-disk library of packed spike rows (append-only segment files +
  row-range manifest) that :meth:`open_rows` maps back as
  packed-primary batches for out-of-core compute and serving;
* :mod:`~repro.pipeline.serialize` — :func:`to_jsonable`, lowering any
  driver result to JSON-ready data.

Shard plans split work along the *config*, typically the batch axis of
a :class:`~repro.backend.batch.SpikeTrainBatch`, so a sharded run is
bit-identical to a serial one no matter how many workers execute it.

The runner's pool is not experiment-only: :meth:`Runner.submit` /
:meth:`Runner.broadcast` let other dispatchers reuse the persistent
workers — the serving front-end (:mod:`repro.serving`) runs its
per-request shard tasks, basis installs and end-of-session attachment
release through exactly this machinery.
"""

from .registry import (
    all_specs,
    ensure_loaded,
    get_spec,
    register,
    spec_names,
    specs_by_tier,
    unregister,
)
from .corpus import CORPUS_SCHEMA_VERSION, CorpusStore, CorpusWriter
from .runner import Runner, RunReport
from .serialize import to_jsonable
from .spec import SEED_POLICIES, TIERS, ExperimentSpec
from .store import SCHEMA_VERSION, ArtifactStore, RunRecord

__all__ = [
    "ExperimentSpec",
    "TIERS",
    "SEED_POLICIES",
    "register",
    "unregister",
    "get_spec",
    "spec_names",
    "all_specs",
    "specs_by_tier",
    "ensure_loaded",
    "Runner",
    "RunReport",
    "ArtifactStore",
    "RunRecord",
    "SCHEMA_VERSION",
    "CorpusStore",
    "CorpusWriter",
    "CORPUS_SCHEMA_VERSION",
    "to_jsonable",
]
