"""The runner: execute registered experiments serially or in parallel.

One :class:`Runner` drives every experiment through the same path:

* resolve the spec from the registry, build its config (seed + typed
  overrides), execute, time, serialise, archive;
* **shard pool** — running a single *shardable* spec with ``jobs > 1``
  maps its shard tasks over a process pool.  The shard plan is a
  property of the config (never of the worker count), so a sharded run
  is bit-identical to the serial run by construction;
* **experiment pool** — :meth:`Runner.run_many` with ``jobs > 1`` runs
  whole experiments as pool tasks instead (each worker executes its
  spec's shards serially).  Workers return plain :class:`RunRecord`
  objects — results are serialised *inside* the worker, so nothing
  fancier than JSON-ready data ever crosses the process boundary;
* failures never abort a multi-experiment run: each report carries its
  own status and traceback, and the store archives error records too.

Workers rebuild their inputs deterministically from (spec name, task),
resolving the spec through the registry in their own process — the only
pickled state is the task dataclass itself.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import PipelineError
from . import registry
from .serialize import to_jsonable
from .store import ArtifactStore, RunRecord

__all__ = ["Runner", "RunReport"]


@dataclass
class RunReport:
    """What the caller gets back from one experiment execution.

    ``result`` is the live result object when the experiment ran in
    this process, and None when it ran in a pool worker (the serialised
    payload is in the archived record either way).
    """

    name: str
    status: str
    wall_seconds: float
    jobs: int
    n_shards: int
    result: Any = None
    rendered: str = ""
    error: Optional[str] = None
    json_path: Any = None
    text_path: Any = None

    @property
    def ok(self) -> bool:
        """True when the run completed without raising."""
        return self.status == "ok"


def _mp_context():
    """Fork when available (cheap, inherits the loaded registry)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


def _render(result: Any) -> str:
    """A result's text report (every driver result exposes render())."""
    if hasattr(result, "render"):
        return result.render()
    return str(result)


def _shard_worker(task: Tuple[str, Any]) -> Any:
    """Pool target: run one shard of one spec."""
    name, shard = task
    return registry.get_spec(name).run_shard(shard)


def _experiment_worker(task: Tuple[str, Optional[int], Dict[str, Any]]) -> RunRecord:
    """Pool target: run one whole experiment, shards serial, record out."""
    name, seed, overrides = task
    record, _result = _execute_record(name, seed, overrides, jobs=1)
    return record


def _execute_record(
    name: str,
    seed: Optional[int],
    overrides: Optional[Dict[str, Any]],
    jobs: int,
) -> Tuple[RunRecord, Any]:
    """Execute one experiment and build its record.

    Never raises on experiment failure — the record carries the
    traceback instead, which is what lets ``run all`` continue past a
    broken driver.  Config/spec resolution errors (unknown name or
    override) do raise: those are caller bugs, not experiment failures.
    """
    spec = registry.get_spec(name)
    config = spec.make_config(seed=seed, overrides=overrides)
    config_payload = to_jsonable(config)
    used_seed = getattr(config, "seed", None)
    started = time.perf_counter()
    try:
        result, n_shards = _execute_spec(spec, config, jobs)
        wall = time.perf_counter() - started
        record = RunRecord(
            experiment=name,
            status="ok",
            config=config_payload,
            seed=used_seed,
            jobs=jobs,
            n_shards=n_shards,
            wall_seconds=wall,
            result=to_jsonable(result),
            rendered=_render(result),
        )
        return record, result
    except Exception:
        wall = time.perf_counter() - started
        record = RunRecord(
            experiment=name,
            status="error",
            config=config_payload,
            seed=used_seed,
            jobs=jobs,
            n_shards=0,
            wall_seconds=wall,
            error=traceback.format_exc(),
        )
        return record, None


def _execute_spec(spec, config, jobs: int) -> Tuple[Any, int]:
    """Run one spec, sharding across a pool when possible.

    Returns ``(result, n_shards)`` with ``n_shards == 0`` for
    unsharded execution.
    """
    if not spec.shardable:
        return spec.run(config), 0
    tasks = list(spec.shard(config))
    if not tasks:
        raise PipelineError(f"spec {spec.name!r} produced an empty shard plan")
    if jobs > 1 and len(tasks) > 1:
        with _mp_context().Pool(min(jobs, len(tasks))) as pool:
            parts = pool.map(
                _shard_worker, [(spec.name, task) for task in tasks]
            )
    else:
        parts = [spec.run_shard(task) for task in tasks]
    return spec.merge(config, parts), len(tasks)


class Runner:
    """Executes registered experiments and archives their artifacts.

    Parameters
    ----------
    jobs:
        Worker processes.  1 (default) runs everything in-process; more
        enables the shard pool for single runs and the experiment pool
        for :meth:`run_many`.
    store:
        Optional :class:`~repro.pipeline.store.ArtifactStore`; when set,
        every run (including failures) is archived as JSON + text.
    """

    def __init__(self, jobs: int = 1, store: Optional[ArtifactStore] = None):
        if jobs < 1:
            raise PipelineError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.store = store

    def run(
        self,
        name: str,
        seed: Optional[int] = None,
        overrides: Optional[Dict[str, Any]] = None,
    ) -> RunReport:
        """Run one experiment (sharded across the pool when it can be)."""
        record, result = _execute_record(name, seed, overrides, self.jobs)
        return self._finalize(record, result)

    def run_many(
        self,
        names: Optional[Sequence[str]] = None,
        seed: Optional[int] = None,
    ) -> List[RunReport]:
        """Run several experiments (default: all), continuing past failures.

        With ``jobs > 1`` the experiments themselves are the pool tasks;
        a manifest summarising the whole run is written when a store is
        attached.
        """
        names = list(names) if names is not None else registry.spec_names()
        for name in names:
            registry.get_spec(name)  # fail fast on unknown names
        tasks = [(name, seed, {}) for name in names]
        if self.jobs > 1 and len(names) > 1:
            with _mp_context().Pool(min(self.jobs, len(names))) as pool:
                records = pool.map(_experiment_worker, tasks)
            reports = [self._finalize(record, None) for record in records]
        else:
            pairs = [_execute_record(*task, jobs=self.jobs) for task in tasks]
            records = [record for record, _result in pairs]
            reports = [self._finalize(record, result) for record, result in pairs]
        if self.store is not None:
            self.store.write_manifest(records)
        return reports

    def _finalize(self, record: RunRecord, result: Any) -> RunReport:
        """Archive a record (when a store is attached) and report it."""
        json_path = text_path = None
        if self.store is not None:
            json_path, text_path = self.store.save(record)
        return RunReport(
            name=record.experiment,
            status=record.status,
            wall_seconds=record.wall_seconds,
            jobs=record.jobs,
            n_shards=record.n_shards,
            result=result,
            rendered=record.rendered,
            error=record.error,
            json_path=json_path,
            text_path=text_path,
        )
