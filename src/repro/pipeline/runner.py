"""The runner: execute registered experiments serially or in parallel.

One :class:`Runner` drives every experiment through the same path:

* resolve the spec from the registry, build its config (seed + typed
  overrides), execute, time, serialise, archive;
* **persistent worker pool** — a Runner with ``jobs > 1`` forks its
  pool once, lazily, and reuses it across every run it executes
  (``close()`` or the context-manager exit tears it down; a finalizer
  covers abandoned runners).  Workers are initialised once via the pool
  initializer and attach shared-memory segments at most once each
  (:mod:`repro.backend.shared`), so per-run dispatch cost is a handful
  of metadata pickles — not process spawns;
* **zero-copy shard dispatch** — running a single *shardable* spec with
  ``jobs > 1`` maps its shard tasks over the pool.  Specs with a
  ``shard_shared`` plan materialise their workload once, export it into
  a :class:`~repro.backend.shared.SharedArena`, and ship workers
  ``(handle, row_range)``-style tasks that attach instead of
  rebuilding; the arena unlinks every segment when the run finishes —
  including when a worker raises mid-shard.  Specs without a shared
  plan (and hosts without ``multiprocessing.shared_memory``) fall back
  to the rebuild plan: tasks that reconstruct their inputs
  deterministically from the config.  The shard plan is a property of
  the config (never of the worker count or the dispatch mechanism), so
  serial, rebuild-sharded and shared-sharded runs are bit-identical by
  construction;
* **experiment pool** — :meth:`Runner.run_many` with ``jobs > 1`` runs
  whole experiments as pool tasks instead (each worker executes its
  spec's shards serially).  Workers return plain :class:`RunRecord`
  objects — results are serialised *inside* the worker, so nothing
  fancier than JSON-ready data ever crosses the process boundary;
* failures never abort a multi-experiment run: each report carries its
  own status and traceback, and the store archives error records too;
* **non-experiment dispatch** — :meth:`Runner.submit` and
  :meth:`Runner.broadcast` expose the persistent pool to callers with
  their own task shapes.  The serving front-end (:mod:`repro.serving`)
  drives per-request ``(handle, row_range)`` shard tasks and its basis
  install/discard broadcasts through them, and ends each serving
  session with the same end-of-run attachment release broadcast the
  shared-dispatch experiments use.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import traceback
import weakref
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..backend.shared import HAVE_SHARED_MEMORY, SharedArena, process_cache
from ..errors import PipelineError
from . import registry
from .serialize import to_jsonable
from .store import ArtifactStore, RunRecord

__all__ = ["Runner", "RunReport", "SUPERVISED_TIMEOUT_S"]

#: Default per-attempt result timeout of :meth:`Runner.submit_supervised`
#: (seconds).  Generous on purpose: it is the *backstop* for hung-alive
#: workers — dead workers are caught within :data:`PROBE_INTERVAL_S` by
#: the pid-set probe — so false positives under load matter more than
#: detection latency.
SUPERVISED_TIMEOUT_S = 120.0

#: How often :meth:`Runner.await_result` wakes to probe worker
#: liveness while a result is pending.
PROBE_INTERVAL_S = 0.25

#: Flipped when creating shared segments fails (e.g. an unwritable or
#: missing /dev/shm): the runner then stops retrying the shared path
#: and uses the rebuild plan for the rest of the process lifetime.
_SHARED_DISPATCH_BROKEN = False

#: Worker-side copy of the release barrier (set by the pool
#: initializer).  Broadcast tasks rendezvous on it so every worker of
#: the pool runs exactly one task — a plain ``pool.map`` gives no
#: distribution guarantee otherwise.
_RELEASE_BARRIER = None

#: How long a broadcast task waits for its siblings before giving up
#: (a dead worker must degrade the broadcast, not deadlock the run).
_BARRIER_TIMEOUT_S = 30.0


@dataclass
class RunReport:
    """What the caller gets back from one experiment execution.

    ``result`` is the live result object when the experiment ran in
    this process, and None when it ran in a pool worker (the serialised
    payload is in the archived record either way).
    """

    name: str
    status: str
    wall_seconds: float
    jobs: int
    n_shards: int
    result: Any = None
    rendered: str = ""
    error: Optional[str] = None
    json_path: Any = None
    text_path: Any = None

    @property
    def ok(self) -> bool:
        """True when the run completed without raising."""
        return self.status == "ok"


def _mp_context():
    """Fork when available (cheap, inherits the loaded registry)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


def _render(result: Any) -> str:
    """A result's text report (every driver result exposes render())."""
    if hasattr(result, "render"):
        return result.render()
    return str(result)


def _start_resource_tracker() -> None:
    """Start the multiprocessing resource tracker *before* forking workers.

    Shared-memory bookkeeping: creating and attaching segments both
    register with the resource tracker, and ``unlink`` unregisters.
    If the tracker first starts *after* the pool forked, each worker
    lazily spawns a private tracker whose ledger nobody ever clears —
    at worker shutdown those trackers emit "leaked shared_memory
    objects" warnings for segments the arena already unlinked.  With
    the tracker running pre-fork, every process shares one ledger and
    the arena's single unlink per segment leaves it clean.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:  # pragma: no cover - tracker is an optimisation only
        pass


def _worker_init(release_barrier=None) -> None:
    """Pool initializer: run once per worker at fork/spawn time.

    Loads the registry so shard tasks resolve specs locally (a no-op
    under fork, required under spawn) and stashes the runner's release
    barrier for end-of-run broadcasts.  Shared-segment attachment is
    *lazy* — the per-process cache in :mod:`repro.backend.shared`
    attaches each segment on the worker's first task that needs it and
    reuses the mapping for the rest of the run.
    """
    global _RELEASE_BARRIER
    _RELEASE_BARRIER = release_barrier
    registry.ensure_loaded()


def _rendezvous() -> None:
    """Block until every pool worker reached its broadcast task.

    The barrier is what turns ``pool.map`` into a true broadcast: a
    worker that finished its task early parks here instead of stealing
    a sibling's, so all ``jobs`` tasks land on distinct workers.  A
    broken or timed-out barrier (dead worker) is swallowed — the
    broadcast then covers the workers that did run, and the per-task
    arena-token eviction still covers the rest.
    """
    if _RELEASE_BARRIER is not None:
        try:
            _RELEASE_BARRIER.wait(timeout=_BARRIER_TIMEOUT_S)
        except Exception:  # pragma: no cover - dead-worker degradation
            pass


def _broadcast_call(item: Tuple[Any, Any]) -> Any:
    """Broadcast target: run one caller-supplied callable on this worker.

    The generic counterpart of :func:`_release_worker`: rendezvous on
    the barrier after the call so every worker of the pool executes the
    payload exactly once.  Used by non-experiment dispatchers — the
    serving front-end broadcasts its basis install and discard through
    this.
    """
    fn, payload = item
    result = fn(payload)
    _rendezvous()
    return result


def _release_worker(_index: int) -> int:
    """Broadcast target: drop this worker's shared-memory attachments.

    Returns the number of mappings still held afterwards (0 unless a
    view escaped a task), so the caller can observe worker residency.
    """
    cache = process_cache()
    cache.release()
    _rendezvous()
    return len(cache)


def _attachment_count_worker(_index: int) -> int:
    """Broadcast target: report this worker's resident mapping count."""
    count = len(process_cache())
    _rendezvous()
    return count


def _broadcast_release(pool, n_workers: int, barrier) -> List[int]:
    """Run :func:`_release_worker` once on every pool worker.

    Called at the end of each shared-dispatch run: without it, workers
    pin the finished run's attachments until a task from a *newer*
    arena happens to arrive.  Returns the per-worker residual counts.
    """
    counts = pool.map(_release_worker, range(n_workers), chunksize=1)
    if barrier is not None:
        try:
            barrier.reset()
        except Exception:  # pragma: no cover - broken-barrier cleanup
            pass
    return counts


def _shard_worker(task: Tuple[str, Any]) -> Any:
    """Pool target: run one shard of one spec."""
    name, shard = task
    return registry.get_spec(name).run_shard(shard)


def _experiment_worker(task: Tuple[str, Optional[int], Dict[str, Any]]) -> RunRecord:
    """Pool target: run one whole experiment, shards serial, record out."""
    name, seed, overrides = task
    record, _result = _execute_record(name, seed, overrides, jobs=1)
    return record


def _execute_record(
    name: str,
    seed: Optional[int],
    overrides: Optional[Dict[str, Any]],
    jobs: int,
    pool_factory=None,
    release=None,
) -> Tuple[RunRecord, Any]:
    """Execute one experiment and build its record.

    Never raises on experiment failure — the record carries the
    traceback instead, which is what lets ``run all`` continue past a
    broken driver.  Config/spec resolution errors (unknown name or
    override) do raise: those are caller bugs, not experiment failures.
    """
    spec = registry.get_spec(name)
    config = spec.make_config(seed=seed, overrides=overrides)
    config_payload = to_jsonable(config)
    used_seed = getattr(config, "seed", None)
    started = time.perf_counter()
    try:
        result, n_shards = _execute_spec(
            spec, config, jobs, pool_factory, release
        )
        wall = time.perf_counter() - started
        record = RunRecord(
            experiment=name,
            status="ok",
            config=config_payload,
            seed=used_seed,
            jobs=jobs,
            n_shards=n_shards,
            wall_seconds=wall,
            result=to_jsonable(result),
            rendered=_render(result),
        )
        return record, result
    except Exception:
        wall = time.perf_counter() - started
        record = RunRecord(
            experiment=name,
            status="error",
            config=config_payload,
            seed=used_seed,
            jobs=jobs,
            n_shards=0,
            wall_seconds=wall,
            error=traceback.format_exc(),
        )
        return record, None


def _shared_tasks(spec, config) -> Optional[Tuple[SharedArena, List[Any]]]:
    """Export the spec's workload into a fresh arena, if it can be.

    Returns None — sending the caller to the rebuild plan — when the
    spec has no shared plan, shared memory is unavailable, or creating
    segments fails on this host (remembered for the process lifetime).
    The caller owns the returned arena and must close it.
    """
    global _SHARED_DISPATCH_BROKEN
    if (
        spec.shard_shared is None
        or not HAVE_SHARED_MEMORY
        or _SHARED_DISPATCH_BROKEN
    ):
        return None
    try:
        arena = SharedArena()
    except OSError:  # pragma: no cover - no usable shm backing
        _SHARED_DISPATCH_BROKEN = True
        return None
    try:
        tasks = list(spec.shard_shared(config, arena))
    except OSError:  # pragma: no cover - /dev/shm full or unwritable
        arena.close()
        _SHARED_DISPATCH_BROKEN = True
        return None
    except Exception:
        arena.close()
        raise
    return arena, tasks


def _execute_spec(
    spec, config, jobs: int, pool_factory, release=None
) -> Tuple[Any, int]:
    """Run one spec, sharding across the pool when possible.

    Returns ``(result, n_shards)`` with ``n_shards == 0`` for
    unsharded execution.  ``pool_factory`` lazily yields the runner's
    persistent worker pool; it is only invoked when a multi-task shard
    plan actually dispatches, so unshardable and single-shard runs
    never pay the fork (None forces in-process execution).  ``release``
    is the runner's end-of-run broadcast: invoked after a
    shared-dispatch run so workers drop their attachments immediately
    instead of pinning them until the next run's tasks arrive.

    In-process execution goes through ``spec.run`` — the authoritative
    serial driver, free to share one workload across its shards (the
    identify driver builds once) — rather than mapping ``run_shard``
    task by task.  Both compose the same shards, so the result is
    bit-identical either way; single-task plans also stay in-process
    (exporting a workload to shared memory to run one shard on one
    worker is pure overhead).
    """
    if not spec.shardable:
        return spec.run(config), 0
    tasks = list(spec.shard(config))
    if not tasks:
        raise PipelineError(f"spec {spec.name!r} produced an empty shard plan")
    pool = (
        pool_factory()
        if pool_factory is not None and jobs > 1 and len(tasks) > 1
        else None
    )
    if pool is not None:
        shared = _shared_tasks(spec, config)
        if shared is not None:
            arena, shared_tasks = shared
            try:
                parts = pool.map(
                    _shard_worker,
                    [(spec.name, task) for task in shared_tasks],
                )
            finally:
                # Unlink on every exit path: a worker raising mid-shard
                # must not leak /dev/shm segments — then tell every
                # worker to drop its attachments so the pages free now
                # rather than at the next run's first task.
                arena.close()
                if release is not None:
                    release()
            return spec.merge(config, parts), len(shared_tasks)
        parts = pool.map(_shard_worker, [(spec.name, task) for task in tasks])
        return spec.merge(config, parts), len(tasks)
    return spec.run(config), len(tasks)


def _shutdown_pool(pool) -> None:
    """Terminate a worker pool (finalizer-safe, idempotent)."""
    if pool is not None:
        pool.terminate()
        pool.join()


class Runner:
    """Executes registered experiments and archives their artifacts.

    Parameters
    ----------
    jobs:
        Worker processes.  1 (default) runs everything in-process; more
        enables the persistent shard/experiment pool.  The pool is
        created lazily on the first parallel run and reused until
        :meth:`close` (Runners also work as context managers, and a
        finalizer reaps pools of abandoned instances).
    store:
        Optional :class:`~repro.pipeline.store.ArtifactStore`; when set,
        every run (including failures) is archived as JSON + text.
    """

    def __init__(self, jobs: int = 1, store: Optional[ArtifactStore] = None):
        if jobs < 1:
            raise PipelineError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.store = store
        self._pool = None
        self._pool_finalizer = None
        self._release_barrier = None
        # Supervision state: pool lifecycle is guarded by a reentrant
        # lock (supervised getters run on many threads), the generation
        # counter lets concurrent failures agree on one restart, and
        # sticky broadcasts replay onto a respawned pool so it carries
        # the same worker state (installed bases) the dead one did.
        self._lock = threading.RLock()
        self._pool_generation = 0
        self._sticky_broadcasts: List[Tuple[Any, Any]] = []

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _ensure_pool(self):
        """The persistent worker pool (created on first parallel run)."""
        if self.jobs < 2:
            return None
        with self._lock:
            if self._pool is None:
                context = _mp_context()
                registry.ensure_loaded()  # fork inherits populated registry
                _start_resource_tracker()  # before fork: workers share it
                self._release_barrier = context.Barrier(self.jobs)
                self._pool = context.Pool(
                    self.jobs,
                    initializer=_worker_init,
                    initargs=(self._release_barrier,),
                )
                self._pool_finalizer = weakref.finalize(
                    self, _shutdown_pool, self._pool
                )
                self._pool_generation += 1
            return self._pool

    # ------------------------------------------------------------------
    # Dispatch primitives for non-experiment callers
    # ------------------------------------------------------------------
    #
    # The registry/spec machinery above is the experiment pipeline's
    # entry point; these three methods are the *pool's* public surface
    # for callers with their own task shapes — the serving front-end
    # (:mod:`repro.serving`) dispatches per-request shard tasks and its
    # basis install/discard broadcasts through them, reusing the
    # persistent workers, the attachment cache and the release barrier
    # instead of growing a second pool implementation.

    def ensure_pool(self):
        """The persistent worker pool (created now if needed).

        None when ``jobs == 1`` — callers run their tasks in-process
        then.  The returned pool is owned by this Runner; never
        terminate it directly (use :meth:`close`).
        """
        return self._ensure_pool()

    def submit(self, fn, task):
        """``apply_async`` one task onto the persistent pool.

        ``fn`` must be a module-level callable (pickled by reference);
        returns the pool's ``AsyncResult``.  Requires ``jobs >= 2`` —
        a single-job Runner has no pool to submit to, and silently
        running inline would hide the caller's dispatch bug.
        """
        pool = self._ensure_pool()
        if pool is None:
            raise PipelineError(
                "submit() needs a worker pool; construct the Runner with "
                "jobs >= 2 or run the task in-process"
            )
        return pool.apply_async(fn, (task,))

    def submit_many(self, fn, tasks) -> List[Any]:
        """``submit`` every task and return the ``AsyncResult`` list.

        The fan-out half of the parallel kernel layer's dispatch: all
        tasks enter the pool before any result is awaited, so workers
        overlap.  Same contract as :meth:`submit` (module-level ``fn``,
        ``jobs >= 2``).
        """
        return [self.submit(fn, task) for task in tasks]

    def broadcast(self, fn, payload=None, *, sticky: bool = True) -> Optional[List[Any]]:
        """Run ``fn(payload)`` exactly once on every pool worker.

        Barrier-distributed like the attachment release: each worker
        parks on the rendezvous after its call, so no worker steals a
        sibling's broadcast task.  Only call while the pool is quiet —
        a worker busy with a long task would stall the barrier until
        its timeout.  Returns the per-worker results, or None when
        there is no pool (``jobs == 1``: callers apply the payload
        in-process instead).

        ``sticky`` (the default) records the broadcast so
        :meth:`restart_pool` can replay it, in order, onto a respawned
        pool — worker state established by broadcast (installed serving
        bases) survives pool loss that way.  Pass ``sticky=False`` for
        broadcasts that only observe state.
        """
        pool = self._ensure_pool()
        if pool is None:
            return None
        results = pool.map(
            _broadcast_call, [(fn, payload)] * self.jobs, chunksize=1
        )
        if self._release_barrier is not None:
            try:
                self._release_barrier.reset()
            except Exception:  # pragma: no cover - broken-barrier cleanup
                pass
        if sticky:
            with self._lock:
                self._sticky_broadcasts.append((fn, payload))
        return results

    # ------------------------------------------------------------------
    # Supervision: detect dead/hung workers, respawn, degrade gracefully
    # ------------------------------------------------------------------

    def probe_workers(self) -> List[int]:
        """PIDs of pool workers that are no longer alive.

        The liveness probe half of supervision: an empty list means
        every forked worker currently holds a live process.  Note that
        ``multiprocessing.Pool`` respawns crashed workers on its own —
        what it can *not* do is recover their in-flight tasks, which is
        what :meth:`submit_supervised` exists for — so a dead PID here
        is a point-in-time observation, not a permanent state.
        """
        with self._lock:
            if self._pool is None:
                return []
            try:
                workers = list(self._pool._pool)
            except Exception:  # pragma: no cover - pool mid-teardown
                return []
            return [
                worker.pid
                for worker in workers
                if worker.pid is not None and not worker.is_alive()
            ]

    def worker_pids(self) -> frozenset:
        """The current pool workers' PIDs (empty without a pool).

        The loss-detection primitive: ``multiprocessing.Pool`` replaces
        a crashed worker with a fresh fork, so a changed pid set means
        some worker died since the snapshot — and any task that was in
        flight on it will never complete.  Callers snapshot before
        submitting and compare while awaiting
        (:meth:`await_result` does both).
        """
        with self._lock:
            if self._pool is None:
                return frozenset()
            try:
                workers = list(self._pool._pool)
            except Exception:  # pragma: no cover - pool mid-teardown
                return frozenset()
            return frozenset(
                worker.pid for worker in workers if worker.pid is not None
            )

    def await_result(
        self,
        handle,
        *,
        timeout: float = SUPERVISED_TIMEOUT_S,
        baseline: Optional[frozenset] = None,
    ):
        """``handle.get`` with early worker-loss detection.

        Polls the result every :data:`PROBE_INTERVAL_S` and raises
        :class:`multiprocessing.TimeoutError` *immediately* when the
        pool's pid set no longer matches ``baseline`` (default: the set
        at call time) — a replaced worker means the task may be lost,
        and waiting out the full ``timeout`` for a result that can
        never arrive is exactly the hang this layer exists to prevent.
        The ``timeout`` backstop still catches hung-but-alive workers.
        Exceptions raised by the task itself propagate unchanged.
        """
        if baseline is None:
            baseline = self.worker_pids()
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise multiprocessing.TimeoutError(
                    f"no result within {timeout} s"
                )
            try:
                return handle.get(min(PROBE_INTERVAL_S, remaining))
            except multiprocessing.TimeoutError:
                if self.worker_pids() != baseline:
                    raise multiprocessing.TimeoutError(
                        "pool worker lost while awaiting result"
                    ) from None

    def restart_pool(self, *, expected_generation: Optional[int] = None):
        """Tear down the worker pool and fork a fresh one.

        Replays every sticky broadcast, in order, onto the new pool so
        it carries the same worker state the old one did.  When
        ``expected_generation`` is given and the pool was already
        restarted past it (a concurrent supervisor got here first),
        this is a no-op returning the current pool — N simultaneous
        shard timeouts must agree on one restart, not thrash N.
        """
        with self._lock:
            if (
                expected_generation is not None
                and self._pool_generation != expected_generation
            ):
                return self._pool
            if self._pool_finalizer is not None:
                self._pool_finalizer()
                self._pool_finalizer = None
            self._pool = None
            self._release_barrier = None
            pool = self._ensure_pool()
            for fn, payload in list(self._sticky_broadcasts):
                try:
                    pool.map(
                        _broadcast_call,
                        [(fn, payload)] * self.jobs,
                        chunksize=1,
                    )
                    if self._release_barrier is not None:
                        self._release_barrier.reset()
                except Exception:  # pragma: no cover - replay degradation
                    # A failed replay degrades the new pool, it must not
                    # abort the restart — tasks needing the state fail
                    # and ride the supervision ladder to in-process.
                    pass
            return pool

    def submit_supervised(
        self,
        fn,
        task,
        *,
        timeout: float = SUPERVISED_TIMEOUT_S,
        retries: int = 2,
    ):
        """Run ``fn(task)`` on the pool and *return the result*, surviving
        dead and hung workers.

        The supervision ladder, one rung per failed attempt:

        1. resubmit to the pool — ``multiprocessing.Pool`` respawns a
           crashed worker by itself (the fresh fork inherits the
           parent's installed state); only the in-flight task is lost,
           and resubmission is exactly its recovery;
        2. :meth:`restart_pool` (sticky broadcasts replayed) and
           resubmit — covers a hung worker or broken pool plumbing;
        3. after ``retries`` failed pool attempts, run ``fn(task)``
           in-process — the floor of the ladder, always available.

        A failure is a result timeout (the signature of a worker lost
        mid-task: its ``AsyncResult`` never completes) or a broken
        result channel.  Exceptions *raised by* ``fn`` propagate
        unchanged on the first attempt — they are the task's outcome,
        not a worker loss.  Same ``jobs >= 2`` contract as
        :meth:`submit`.
        """
        if timeout is not None and timeout <= 0:
            raise PipelineError(f"timeout must be positive, got {timeout}")
        for attempt in range(max(0, int(retries))):
            with self._lock:
                generation = self._pool_generation
            try:
                if attempt > 0:
                    # Rung 2+: assume the pool itself is sick.  The
                    # generation check makes concurrent failures share
                    # one restart.
                    self.restart_pool(expected_generation=generation)
                handle = self.submit(fn, task)
                return self.await_result(handle, timeout=timeout)
            except PipelineError:
                raise  # jobs < 2: caller bug, same contract as submit()
            except multiprocessing.TimeoutError:
                continue
            except (OSError, EOFError) as exc:
                # The result channel died with the worker; retryable.
                del exc
                continue
        return fn(task)

    def release_worker_attachments(self) -> None:
        """Broadcast an attachment release to every live pool worker.

        Runs automatically at the end of each shared-dispatch run;
        callable directly after out-of-band shared work.  A no-op
        without a live pool.  Best-effort: a broken pool must not turn
        a finished run into a failure (the per-task arena-token
        eviction still bounds worker memory if the broadcast degrades).
        """
        if self._pool is None:
            return
        try:
            _broadcast_release(self._pool, self.jobs, self._release_barrier)
        except Exception:  # pragma: no cover - dying pool mid-teardown
            pass

    def close(self) -> None:
        """Tear down the worker pool (idempotent; runs stay archived)."""
        with self._lock:
            if self._pool_finalizer is not None:
                self._pool_finalizer()
                self._pool_finalizer = None
            self._pool = None
            self._release_barrier = None
            self._sticky_broadcasts.clear()

    def __enter__(self) -> "Runner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(
        self,
        name: str,
        seed: Optional[int] = None,
        overrides: Optional[Dict[str, Any]] = None,
    ) -> RunReport:
        """Run one experiment (sharded across the pool when it can be)."""
        record, result = _execute_record(
            name,
            seed,
            overrides,
            self.jobs,
            self._ensure_pool,
            release=self.release_worker_attachments,
        )
        return self._finalize(record, result)

    def run_many(
        self,
        names: Optional[Sequence[str]] = None,
        seed: Optional[int] = None,
    ) -> List[RunReport]:
        """Run several experiments (default: all), continuing past failures.

        With ``jobs > 1`` the experiments themselves are the pool tasks;
        a manifest summarising the whole run is written when a store is
        attached.
        """
        names = list(names) if names is not None else registry.spec_names()
        for name in names:
            registry.get_spec(name)  # fail fast on unknown names
        tasks = [(name, seed, {}) for name in names]
        if self.jobs > 1 and len(names) > 1:
            records = self._ensure_pool().map(_experiment_worker, tasks)
            reports = [self._finalize(record, None) for record in records]
        else:
            pairs = [
                _execute_record(
                    *task,
                    jobs=self.jobs,
                    pool_factory=self._ensure_pool,
                    release=self.release_worker_attachments,
                )
                for task in tasks
            ]
            records = [record for record, _result in pairs]
            reports = [self._finalize(record, result) for record, result in pairs]
        if self.store is not None:
            self.store.write_manifest(records)
        return reports

    def _finalize(self, record: RunRecord, result: Any) -> RunReport:
        """Archive a record (when a store is attached) and report it."""
        json_path = text_path = None
        if self.store is not None:
            json_path, text_path = self.store.save(record)
        return RunReport(
            name=record.experiment,
            status=record.status,
            wall_seconds=record.wall_seconds,
            jobs=record.jobs,
            n_shards=record.n_shards,
            result=result,
            rendered=record.rendered,
            error=record.error,
            json_path=json_path,
            text_path=text_path,
        )
