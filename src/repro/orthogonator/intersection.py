"""Intersection-based (parallel) orthogonator.

Section 3(ii) of the paper: N parallel input spike trains — partially
overlapping in general — are expanded into all set-theoretic
intersection products.  For each non-empty subset S of the inputs, the
output wire for S carries the spikes present in *exactly* the inputs of
S (and absent from all others).  That yields ``M = 2^N − 1`` output
wires with mutually non-overlapping spike trains.

Example (N = 2, inputs A and B, Figure 2):

* ``A·B``   — slots where both A and B spike (the coincidence product);
* ``A·B̄``  — slots where only A spikes;
* ``Ā·B``  — slots where only B spikes.

With independent sources the coincidence product is rare (Table 2:
τ(A·B) ≈ 700 samples vs ≈ 29 for the exclusives); correlating the
sources homogenizes the rates (:mod:`repro.orthogonator.homogenize`).
"""

from __future__ import annotations

from string import ascii_uppercase
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..backend.batch import SpikeTrainBatch
from ..errors import ConfigurationError, SpikeTrainError
from ..spikes.train import SpikeTrain
from .base import BatchOrthogonatorOutput, Orthogonator, OrthogonatorOutput

__all__ = [
    "IntersectionOrthogonator",
    "product_label",
    "default_input_names",
    "subset_masks",
]

#: Overbar combining character used to mark complemented inputs in labels.
_OVERBAR = "̄"


def default_input_names(n: int) -> Tuple[str, ...]:
    """Default input names A, B, C, ... (AA, AB, ... past 26)."""
    names = []
    for i in range(n):
        if i < len(ascii_uppercase):
            names.append(ascii_uppercase[i])
        else:
            hi, lo = divmod(i, len(ascii_uppercase))
            names.append(ascii_uppercase[hi - 1] + ascii_uppercase[lo])
    return tuple(names)


def product_label(mask: int, names: Sequence[str]) -> str:
    """Label of the product selected by bit ``mask`` over ``names``.

    Bit i set means input i is *asserted*; clear means complemented.
    For names ("A", "B"): mask 0b11 → ``A·B``, 0b01 → ``A·B̄``,
    0b10 → ``Ā·B``.
    """
    if mask <= 0 or mask >= (1 << len(names)):
        raise ConfigurationError(
            f"mask {mask} out of range for {len(names)} inputs"
        )
    parts = []
    for i, name in enumerate(names):
        if mask & (1 << i):
            parts.append(name)
        else:
            parts.append(name + _OVERBAR)
    return "·".join(parts)


def subset_masks(n: int) -> List[int]:
    """All non-empty subset masks for ``n`` inputs, ordered by popcount desc.

    The full coincidence product (all bits set) comes first, matching the
    paper's figures which show ``A·B`` before the exclusive products.
    Within equal popcount, masks are ordered numerically.
    """
    masks = list(range(1, 1 << n))
    masks.sort(key=lambda m: (-bin(m).count("1"), m))
    return masks


class IntersectionOrthogonator(Orthogonator):
    """All-products expansion of N input trains into 2^N − 1 outputs.

    Parameters
    ----------
    n_inputs:
        The paper's order N (number of parallel input trains).
    input_names:
        Optional names for the inputs (defaults to A, B, C, ...); used in
        output labels.
    """

    def __init__(
        self,
        n_inputs: int,
        input_names: Optional[Sequence[str]] = None,
    ) -> None:
        if n_inputs < 1:
            raise ConfigurationError(f"n_inputs must be >= 1, got {n_inputs}")
        if n_inputs > 20:
            raise ConfigurationError(
                f"n_inputs = {n_inputs} would create {2**n_inputs - 1} outputs; "
                "refusing above 20"
            )
        if input_names is None:
            input_names = default_input_names(n_inputs)
        if len(input_names) != n_inputs:
            raise ConfigurationError(
                f"{n_inputs} inputs but {len(input_names)} names"
            )
        if len(set(input_names)) != len(input_names):
            raise ConfigurationError(f"duplicate input names: {input_names}")
        self.n_inputs = n_inputs
        self.input_names = tuple(input_names)
        self._masks = subset_masks(n_inputs)

    @property
    def order(self) -> int:
        """The paper's N."""
        return self.n_inputs

    @property
    def n_outputs(self) -> int:
        """Number of output wires, ``2^N − 1``."""
        return (1 << self.n_inputs) - 1

    @property
    def labels(self) -> Tuple[str, ...]:
        """Output labels in mask order (coincidence product first)."""
        return tuple(product_label(m, self.input_names) for m in self._masks)

    def mask_for_label(self, label: str) -> int:
        """Inverse of :func:`product_label` for this device's labels."""
        try:
            return self._masks[self.labels.index(label)]
        except ValueError:
            raise ConfigurationError(
                f"unknown product label {label!r}; available: {list(self.labels)}"
            ) from None

    def transform(self, *inputs: SpikeTrain) -> OrthogonatorOutput:
        """Expand the input trains into all intersection products.

        Implementation: build the per-slot occupancy pattern (which
        subset of inputs spikes in each occupied slot) in one vectorised
        pass, then split slots by pattern.  O(total spikes · N) time.
        """
        if len(inputs) != self.n_inputs:
            raise ConfigurationError(
                f"expected {self.n_inputs} input trains, got {len(inputs)}"
            )
        grid, occupied, patterns = self._occupancy_patterns(inputs)
        if occupied.size == 0:
            empty = tuple(SpikeTrain.empty(grid) for _unused in self._masks)
            return OrthogonatorOutput(trains=empty, labels=self.labels, verify=False)

        trains = tuple(
            SpikeTrain(occupied[patterns == mask], grid) for mask in self._masks
        )
        # Each occupied slot lands in exactly one pattern bucket, so the
        # outputs are disjoint by construction; skip re-verification.
        return OrthogonatorOutput(trains=trains, labels=self.labels, verify=False)

    def _occupancy_patterns(self, inputs):
        """Occupied slots and their input-subset bit patterns."""
        grid = inputs[0].grid
        for i, train in enumerate(inputs[1:], start=1):
            if train.grid != grid:
                raise SpikeTrainError(
                    f"input {self.input_names[i]} lives on a different grid"
                )
        all_slots = np.concatenate([t.indices for t in inputs])
        if all_slots.size == 0:
            return grid, all_slots.astype(np.int64), all_slots.astype(np.int64)
        occupied = np.unique(all_slots)
        patterns = np.zeros(occupied.size, dtype=np.int64)
        for bit, train in enumerate(inputs):
            positions = np.searchsorted(occupied, train.indices)
            patterns[positions] |= 1 << bit
        return grid, occupied, patterns

    def transform_batch(self, *inputs: SpikeTrain) -> BatchOrthogonatorOutput:
        """All-products expansion emitted as one ``(2^N − 1, T)`` batch.

        One stable sort groups the occupied slots by product wire while
        keeping them slot-ordered — the batch's CSR layout directly.
        """
        if len(inputs) != self.n_inputs:
            raise ConfigurationError(
                f"expected {self.n_inputs} input trains, got {len(inputs)}"
            )
        grid, occupied, patterns = self._occupancy_patterns(inputs)
        m = self.n_outputs
        if occupied.size == 0:
            return BatchOrthogonatorOutput(
                batch=SpikeTrainBatch.empty(m, grid), labels=self.labels
            )
        mask_to_row = np.empty(1 << self.n_inputs, dtype=np.int64)
        for row, mask in enumerate(self._masks):
            mask_to_row[mask] = row
        rows = mask_to_row[patterns]
        order = np.argsort(rows, kind="stable")
        counts = np.bincount(rows, minlength=m)
        ptr = np.concatenate([[0], np.cumsum(counts)])
        return BatchOrthogonatorOutput(
            batch=SpikeTrainBatch(occupied[order], ptr, grid),
            labels=self.labels,
        )

    def coincidence_product(self, output: OrthogonatorOutput) -> SpikeTrain:
        """The full-coincidence output (all inputs asserted)."""
        full_mask = (1 << self.n_inputs) - 1
        return output[product_label(full_mask, self.input_names)]
