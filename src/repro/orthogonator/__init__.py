"""Orthogonators: the paper's core circuits.

* :class:`DemuxOrthogonator` — serial, cyclic dealing, spike packages
  (:func:`spike_packages`) defining computer time;
* :class:`IntersectionOrthogonator` — parallel, all 2^N − 1 set products
  (:func:`product_label` names them);
* :class:`Homogenizer` / :func:`search_common_amplitude` — rate
  homogenization via correlated sources (Section 4.2);
* :class:`OrthogonatorOutput` — labelled orthogonal outputs with
  enforced orthogonality.
"""

from .base import (
    BatchOrthogonatorOutput,
    Orthogonator,
    OrthogonatorOutput,
    verify_orthogonality,
)
from .demux import DemuxOrthogonator, SpikePackage, spike_packages, wire_label
from .homogenize import (
    HomogenizationResult,
    Homogenizer,
    homogenization_spread,
    search_common_amplitude,
)
from .intersection import (
    IntersectionOrthogonator,
    default_input_names,
    product_label,
    subset_masks,
)

__all__ = [
    "Orthogonator",
    "OrthogonatorOutput",
    "BatchOrthogonatorOutput",
    "verify_orthogonality",
    "DemuxOrthogonator",
    "SpikePackage",
    "spike_packages",
    "wire_label",
    "IntersectionOrthogonator",
    "product_label",
    "default_input_names",
    "subset_masks",
    "Homogenizer",
    "HomogenizationResult",
    "homogenization_spread",
    "search_common_amplitude",
]
