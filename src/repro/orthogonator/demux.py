"""Demultiplexer-based (serial) orthogonator.

Section 3(i) of the paper: a single input spike train is dealt onto M
output wires cyclically,

    ``p = 1 + (r − 1) mod M``

where ``r`` is the 1-based ordinal of the input spike and ``p`` the
1-based output wire receiving it.  Consequences, all reproduced here:

* the outputs are orthogonal *by construction* (they partition the
  input's spikes);
* all outputs have the same mean rate (input rate / M);
* consecutive M-spike groups form *spike packages*: when wire M emits
  its k-th spike, each other wire has emitted exactly one spike of
  package k.  The package ordinal is the paper's discrete "computer
  time" t_k, the hook that makes sequential logic straightforward.

The paper's "order" for this device: an N-th order orthogonator has
``M = 2^N − 1`` outputs (matching the intersection device's output count
so the two families produce interchangeable bases).  Figure 1 and
Table 1 use a *second-order* device, hence M = 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..backend.batch import SpikeTrainBatch
from ..errors import ConfigurationError, SpikeTrainError
from ..spikes.train import SpikeTrain
from .base import BatchOrthogonatorOutput, Orthogonator, OrthogonatorOutput

__all__ = ["DemuxOrthogonator", "SpikePackage", "spike_packages", "wire_label"]


def wire_label(position: int) -> str:
    """Canonical label of demux output wire ``position`` (1-based)."""
    return f"W{position}"


@dataclass(frozen=True)
class SpikePackage:
    """One complete package of M spikes (one per output wire).

    Attributes
    ----------
    ordinal:
        0-based package index — the paper's computer time ``t_k``.
    slots:
        Spike slot (sample index) on each wire, ordered by wire position
        (wire 1 first).  Because the demux deals spikes in arrival order,
        ``slots`` is strictly increasing.
    """

    ordinal: int
    slots: Tuple[int, ...]

    @property
    def start(self) -> int:
        """Slot of the package's first spike (wire 1)."""
        return self.slots[0]

    @property
    def end(self) -> int:
        """Slot of the package's last spike (wire M)."""
        return self.slots[-1]

    @property
    def span(self) -> int:
        """Samples between the package's first and last spike."""
        return self.end - self.start


class DemuxOrthogonator(Orthogonator):
    """Cyclic demultiplexer over M output wires.

    Parameters
    ----------
    order:
        The paper's N; the device exposes ``M = 2**order - 1`` wires.
        Use :meth:`with_outputs` to request an explicit wire count
        instead.
    """

    def __init__(self, order: int) -> None:
        if order < 1:
            raise ConfigurationError(f"order must be >= 1, got {order}")
        self._order = order
        self._n_outputs = 2**order - 1

    @classmethod
    def with_outputs(cls, n_outputs: int) -> "DemuxOrthogonator":
        """Build a device with an explicit number of output wires."""
        if n_outputs < 1:
            raise ConfigurationError(f"n_outputs must be >= 1, got {n_outputs}")
        device = cls.__new__(cls)
        device._order = None
        device._n_outputs = n_outputs
        return device

    @property
    def order(self) -> Optional[int]:
        """The paper's N, or None when built via :meth:`with_outputs`."""
        return self._order

    @property
    def n_outputs(self) -> int:
        """Number of output wires M."""
        return self._n_outputs

    def route(self, spike_ordinal: int) -> int:
        """Wire position (1-based) receiving input spike ``spike_ordinal`` (1-based).

        Implements the paper's routing rule ``p = 1 + (r − 1) mod M``.
        """
        if spike_ordinal < 1:
            raise ConfigurationError(
                f"spike ordinals are 1-based, got {spike_ordinal}"
            )
        return 1 + (spike_ordinal - 1) % self._n_outputs

    def transform(self, *inputs: SpikeTrain) -> OrthogonatorOutput:
        """Deal the single input train over the M output wires."""
        if len(inputs) != 1:
            raise ConfigurationError(
                f"demux orthogonator takes exactly one input train, got {len(inputs)}"
            )
        (train,) = inputs
        m = self._n_outputs
        indices = train.indices
        trains = tuple(
            SpikeTrain(indices[wire::m], train.grid) for wire in range(m)
        )
        labels = tuple(wire_label(p) for p in range(1, m + 1))
        # Outputs partition the input: orthogonality holds by construction,
        # so the O(M^2) verification pass is skipped.
        return OrthogonatorOutput(trains=trains, labels=labels, verify=False)

    def transform_batch(self, *inputs: SpikeTrain) -> BatchOrthogonatorOutput:
        """Deal the input over M wires, emitting one ``(M, T)`` batch.

        Builds the batch's CSR layout directly from the strided deal —
        no intermediate per-wire :class:`SpikeTrain` objects.
        """
        if len(inputs) != 1:
            raise ConfigurationError(
                f"demux orthogonator takes exactly one input train, got {len(inputs)}"
            )
        (train,) = inputs
        m = self._n_outputs
        indices = train.indices
        n = indices.size
        values = (
            np.concatenate([indices[wire::m] for wire in range(m)])
            if n
            else np.empty(0, dtype=np.int64)
        )
        counts = np.array(
            [(n - wire + m - 1) // m for wire in range(m)], dtype=np.int64
        )
        ptr = np.concatenate([[0], np.cumsum(counts)])
        return BatchOrthogonatorOutput(
            batch=SpikeTrainBatch(values, ptr, train.grid),
            labels=tuple(wire_label(p) for p in range(1, m + 1)),
        )


def spike_packages(
    output: OrthogonatorOutput,
    require_complete: bool = True,
) -> List[SpikePackage]:
    """Group demux outputs back into their M-spike packages.

    Package k consists of the k-th spike of every wire, in wire order.
    With ``require_complete`` (default) only packages in which *every*
    wire has fired are returned — the paper's condition "when the M-th
    wire outputted its k-th spike, we know that the previous M−1 spikes
    were outputted on the other M−1 wires".
    """
    counts = [len(t) for t in output.trains]
    n_complete = min(counts) if counts else 0
    n_packages = n_complete if require_complete else (max(counts) if counts else 0)
    packages: List[SpikePackage] = []
    for k in range(n_packages):
        slots = []
        for train in output.trains:
            if k < len(train):
                slots.append(int(train.indices[k]))
        package = SpikePackage(ordinal=k, slots=tuple(slots))
        if len(package.slots) > 1 and any(
            b <= a for a, b in zip(package.slots, package.slots[1:])
        ):
            raise SpikeTrainError(
                f"package {k} slots are not strictly increasing: {package.slots}; "
                "the trains are not demux outputs of a single source"
            )
        packages.append(package)
    return packages
