"""Orthogonator interface and shared validation.

An *orthogonator* (Section 3 of the paper) turns raw spike trains into a
set of mutually orthogonal output trains — the reference basis of the
logic hyperspace.  Two concrete families exist:

* :class:`~repro.orthogonator.demux.DemuxOrthogonator` — serial,
  one input train dealt cyclically over M wires;
* :class:`~repro.orthogonator.intersection.IntersectionOrthogonator` —
  parallel, N input trains expanded into all ``2^N − 1`` intersection
  products.

Both return an :class:`OrthogonatorOutput`, which carries the labelled
output trains and enforces the orthogonality invariant on construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from ..errors import OrthogonalityError
from ..spikes.statistics import IsiStatistics, isi_statistics
from ..spikes.train import SpikeTrain

__all__ = ["OrthogonatorOutput", "Orthogonator", "verify_orthogonality"]


def verify_orthogonality(trains: Sequence[SpikeTrain], labels: Sequence[str]) -> None:
    """Raise :class:`OrthogonalityError` if any two trains share a slot."""
    for i in range(len(trains)):
        for j in range(i + 1, len(trains)):
            shared = trains[i].overlap_count(trains[j])
            if shared:
                raise OrthogonalityError(
                    f"outputs {labels[i]!r} and {labels[j]!r} share "
                    f"{shared} spike slot(s)"
                )


@dataclass(frozen=True)
class OrthogonatorOutput:
    """Labelled orthogonal output trains of an orthogonator run.

    ``trains`` and ``labels`` are parallel sequences; orthogonality is
    checked eagerly so downstream code can rely on it unconditionally.
    ``verify=False`` skips the O(M²) check for hot paths that construct
    provably-orthogonal outputs (the demux path uses it — its outputs
    partition the input by construction).
    """

    trains: Tuple[SpikeTrain, ...]
    labels: Tuple[str, ...]
    verify: bool = field(default=True, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.trains) != len(self.labels):
            raise OrthogonalityError(
                f"{len(self.trains)} trains but {len(self.labels)} labels"
            )
        if len(set(self.labels)) != len(self.labels):
            raise OrthogonalityError(f"duplicate output labels: {self.labels}")
        if self.verify:
            verify_orthogonality(self.trains, self.labels)

    def __len__(self) -> int:
        return len(self.trains)

    def __getitem__(self, label: str) -> SpikeTrain:
        try:
            return self.trains[self.labels.index(label)]
        except ValueError:
            raise KeyError(
                f"no output labelled {label!r}; available: {list(self.labels)}"
            ) from None

    def as_dict(self) -> Dict[str, SpikeTrain]:
        """Mapping from label to train (insertion-ordered)."""
        return dict(zip(self.labels, self.trains))

    def statistics(self) -> Dict[str, IsiStatistics]:
        """Per-output ISI statistics, keyed by label."""
        return {label: isi_statistics(t) for label, t in zip(self.labels, self.trains)}

    def rates(self) -> Dict[str, float]:
        """Per-output mean spike rates (spikes/s), keyed by label."""
        return {label: t.mean_rate() for label, t in zip(self.labels, self.trains)}

    def total_spikes(self) -> int:
        """Total spike count across all outputs."""
        return sum(len(t) for t in self.trains)


class Orthogonator:
    """Abstract base for orthogonator circuits.

    Concrete subclasses define ``order`` (the paper's N) and implement
    :meth:`transform` over their expected number of input trains.
    """

    @property
    def n_outputs(self) -> int:
        """Number of orthogonal output wires M."""
        raise NotImplementedError

    def transform(self, *inputs: SpikeTrain) -> OrthogonatorOutput:
        """Produce the orthogonal outputs from the raw input trains."""
        raise NotImplementedError
