"""Orthogonator interface and shared validation.

An *orthogonator* (Section 3 of the paper) turns raw spike trains into a
set of mutually orthogonal output trains — the reference basis of the
logic hyperspace.  Two concrete families exist:

* :class:`~repro.orthogonator.demux.DemuxOrthogonator` — serial,
  one input train dealt cyclically over M wires;
* :class:`~repro.orthogonator.intersection.IntersectionOrthogonator` —
  parallel, N input trains expanded into all ``2^N − 1`` intersection
  products.

Both return an :class:`OrthogonatorOutput`, which carries the labelled
output trains and enforces the orthogonality invariant on construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from ..backend.batch import SpikeTrainBatch
from ..errors import OrthogonalityError
from ..spikes.statistics import IsiStatistics, isi_statistics
from ..spikes.train import SpikeTrain

__all__ = [
    "BatchOrthogonatorOutput",
    "OrthogonatorOutput",
    "Orthogonator",
    "verify_orthogonality",
]


def verify_orthogonality(trains: Sequence[SpikeTrain], labels: Sequence[str]) -> None:
    """Raise :class:`OrthogonalityError` if any two trains share a slot.

    The happy path is one vectorised occupancy count over the
    concatenated slots (O(total spikes) instead of O(M²) pairwise
    intersections); the pairwise walk only runs to name the offending
    pair once a collision is known to exist.
    """
    occupied = [t.indices for t in trains if len(t)]
    if len(occupied) < 2:
        return
    all_slots = np.concatenate(occupied)
    unique_slots = np.unique(all_slots)
    if unique_slots.size == all_slots.size:
        return
    for i in range(len(trains)):
        for j in range(i + 1, len(trains)):
            shared = trains[i].overlap_count(trains[j])
            if shared:
                raise OrthogonalityError(
                    f"outputs {labels[i]!r} and {labels[j]!r} share "
                    f"{shared} spike slot(s)"
                )


@dataclass(frozen=True)
class OrthogonatorOutput:
    """Labelled orthogonal output trains of an orthogonator run.

    ``trains`` and ``labels`` are parallel sequences; orthogonality is
    checked eagerly so downstream code can rely on it unconditionally.
    ``verify=False`` skips the O(M²) check for hot paths that construct
    provably-orthogonal outputs (the demux path uses it — its outputs
    partition the input by construction).
    """

    trains: Tuple[SpikeTrain, ...]
    labels: Tuple[str, ...]
    verify: bool = field(default=True, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.trains) != len(self.labels):
            raise OrthogonalityError(
                f"{len(self.trains)} trains but {len(self.labels)} labels"
            )
        if len(set(self.labels)) != len(self.labels):
            raise OrthogonalityError(f"duplicate output labels: {self.labels}")
        if self.verify:
            verify_orthogonality(self.trains, self.labels)

    def __len__(self) -> int:
        return len(self.trains)

    def __getitem__(self, label: str) -> SpikeTrain:
        try:
            return self.trains[self.labels.index(label)]
        except ValueError:
            raise KeyError(
                f"no output labelled {label!r}; available: {list(self.labels)}"
            ) from None

    def as_dict(self) -> Dict[str, SpikeTrain]:
        """Mapping from label to train (insertion-ordered)."""
        return dict(zip(self.labels, self.trains))

    def statistics(self) -> Dict[str, IsiStatistics]:
        """Per-output ISI statistics, keyed by label."""
        return {label: isi_statistics(t) for label, t in zip(self.labels, self.trains)}

    def rates(self) -> Dict[str, float]:
        """Per-output mean spike rates (spikes/s), keyed by label."""
        return {label: t.mean_rate() for label, t in zip(self.labels, self.trains)}

    def total_spikes(self) -> int:
        """Total spike count across all outputs."""
        return sum(len(t) for t in self.trains)

    def to_batch(self) -> SpikeTrainBatch:
        """The output trains stacked as one ``(M, n_samples)`` batch."""
        return SpikeTrainBatch.from_trains(self.trains)


@dataclass(frozen=True)
class BatchOrthogonatorOutput:
    """Orthogonator outputs in batched form: one batch, parallel labels.

    Emitted by :meth:`Orthogonator.transform_batch`; downstream batch
    consumers (basis construction, batched correlators) use the rows
    directly without materialising per-wire :class:`SpikeTrain` objects.
    """

    batch: SpikeTrainBatch
    labels: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.batch.n_trains != len(self.labels):
            raise OrthogonalityError(
                f"{self.batch.n_trains} batch rows but {len(self.labels)} labels"
            )
        if len(set(self.labels)) != len(self.labels):
            raise OrthogonalityError(f"duplicate output labels: {self.labels}")

    def __len__(self) -> int:
        return self.batch.n_trains

    def __getitem__(self, label: str) -> SpikeTrain:
        try:
            return self.batch.row(self.labels.index(label))
        except ValueError:
            raise KeyError(
                f"no output labelled {label!r}; available: {list(self.labels)}"
            ) from None

    def to_output(self, verify: bool = False) -> OrthogonatorOutput:
        """Adapter back to the per-train :class:`OrthogonatorOutput`."""
        return OrthogonatorOutput(
            trains=tuple(self.batch.to_trains()),
            labels=self.labels,
            verify=verify,
        )


class Orthogonator:
    """Abstract base for orthogonator circuits.

    Concrete subclasses define ``order`` (the paper's N) and implement
    :meth:`transform` over their expected number of input trains.
    :meth:`transform_batch` emits the same outputs in batched form;
    the base implementation adapts :meth:`transform`, and the concrete
    devices override it to build the batch directly.
    """

    @property
    def n_outputs(self) -> int:
        """Number of orthogonal output wires M."""
        raise NotImplementedError

    def transform(self, *inputs: SpikeTrain) -> OrthogonatorOutput:
        """Produce the orthogonal outputs from the raw input trains."""
        raise NotImplementedError

    def transform_batch(self, *inputs: SpikeTrain) -> BatchOrthogonatorOutput:
        """Produce the orthogonal outputs as one :class:`SpikeTrainBatch`."""
        output = self.transform(*inputs)
        return BatchOrthogonatorOutput(
            batch=SpikeTrainBatch.from_trains(output.trains),
            labels=output.labels,
        )
