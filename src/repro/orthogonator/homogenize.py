"""Output-rate homogenization via correlated source noises.

Section 4.2: with independent sources the intersection orthogonator's
coincidence product ``A·B`` fires far more rarely than the exclusive
products.  Mixing a strong common-mode noise into both sources makes
their zero crossings nearly coincide, boosting ``A·B`` until all three
outputs fire at comparable rates (Figure 3 / Table 2's "correlated"
columns, mixing amplitudes 0.945 / 0.055).

This module provides:

* :func:`homogenization_spread` — the max/min output-rate ratio used as
  the imbalance metric;
* :class:`Homogenizer` — runs the correlated-source pipeline at a given
  common-mode amplitude;
* :func:`search_common_amplitude` — a bisection search for the amplitude
  that minimises the spread, reproducing (and checking) the paper's
  hand-picked 0.945.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..errors import ConfigurationError
from ..noise.correlated import CommonModeMixer
from ..noise.synthesis import NoiseSynthesizer, RngLike, make_rng
from ..spikes.zero_crossing import AllCrossingDetector
from .base import OrthogonatorOutput
from .intersection import IntersectionOrthogonator

__all__ = [
    "homogenization_spread",
    "HomogenizationResult",
    "Homogenizer",
    "search_common_amplitude",
]


def homogenization_spread(output: OrthogonatorOutput) -> float:
    """Max/min ratio of output spike rates (1.0 = perfectly homogeneous).

    Returns ``inf`` when any output is silent — the strongest possible
    imbalance signal.
    """
    counts = [len(t) for t in output.trains]
    if not counts:
        return math.nan
    lowest = min(counts)
    if lowest == 0:
        return math.inf
    return max(counts) / lowest


@dataclass(frozen=True)
class HomogenizationResult:
    """Outcome of one homogenization run.

    Attributes
    ----------
    common_amplitude / private_amplitude:
        Mixing amplitudes used for the source noises.
    correlation:
        Implied source correlation coefficient.
    output:
        The orthogonator output produced from the correlated sources.
    spread:
        Max/min output-rate ratio (1.0 is perfect).
    """

    common_amplitude: float
    private_amplitude: float
    correlation: float
    output: OrthogonatorOutput
    spread: float

    def rates(self) -> Dict[str, float]:
        """Per-output spike rates, keyed by product label."""
        return self.output.rates()


class Homogenizer:
    """Correlated-source pipeline for a 2-input intersection orthogonator.

    Generates ``n_inputs`` source noises correlated through a common-mode
    component, extracts zero-crossing trains, and runs them through an
    :class:`IntersectionOrthogonator`.
    """

    def __init__(
        self,
        synthesizer: NoiseSynthesizer,
        n_inputs: int = 2,
    ) -> None:
        if n_inputs < 2:
            raise ConfigurationError(
                f"homogenization needs at least 2 inputs, got {n_inputs}"
            )
        self.synthesizer = synthesizer
        self.orthogonator = IntersectionOrthogonator(n_inputs)
        self._detector = AllCrossingDetector()

    def run(
        self,
        common_amplitude: float,
        rng: RngLike = None,
    ) -> HomogenizationResult:
        """Run the pipeline with the given common-mode amplitude.

        Following the paper's convention, the two mixing amplitudes add
        linearly to one: ``private = 1 − common`` (the paper's pair is
        0.945 / 0.055).  The mixer re-normalises the mixed records to
        unit variance, so only the common/private *ratio* matters.
        """
        if not (0.0 <= common_amplitude <= 1.0):
            raise ConfigurationError(
                f"common_amplitude must lie in [0, 1], got {common_amplitude}"
            )
        private_amplitude = 1.0 - common_amplitude
        mixer = CommonModeMixer(
            self.synthesizer,
            common_amplitude=common_amplitude,
            private_amplitude=private_amplitude,
        )
        records = mixer.generate(self.orthogonator.n_inputs, rng=make_rng(rng))
        grid = self.synthesizer.grid
        trains = [self._detector.detect(record, grid) for record in records]
        output = self.orthogonator.transform(*trains)
        return HomogenizationResult(
            common_amplitude=common_amplitude,
            private_amplitude=private_amplitude,
            correlation=mixer.correlation,
            output=output,
            spread=homogenization_spread(output),
        )


def search_common_amplitude(
    homogenizer: Homogenizer,
    seed: int = 0,
    lo: float = 0.5,
    hi: float = 0.999,
    n_grid: int = 12,
    n_refine: int = 3,
) -> HomogenizationResult:
    """Search for the common-mode amplitude minimising the rate spread.

    A coarse grid scan followed by ``n_refine`` local refinements; every
    candidate is evaluated with the same seed so the search surface is
    deterministic.  Returns the best result found.  The paper's value
    (0.945) should land near the optimum for the white-noise band.
    """
    if not (0.0 <= lo < hi <= 1.0):
        raise ConfigurationError(f"invalid search interval [{lo}, {hi}]")
    if n_grid < 3:
        raise ConfigurationError(f"n_grid must be >= 3, got {n_grid}")

    best: Optional[HomogenizationResult] = None
    for _round in range(n_refine):
        candidates = np.linspace(lo, hi, n_grid)
        results = [homogenizer.run(float(c), rng=seed) for c in candidates]
        spreads = [r.spread for r in results]
        best_idx = int(np.nanargmin(spreads))
        round_best = results[best_idx]
        if best is None or round_best.spread < best.spread:
            best = round_best
        # Narrow the interval around the winner for the next round.
        step = (hi - lo) / (n_grid - 1)
        lo = max(0.0, candidates[best_idx] - step)
        hi = min(1.0, candidates[best_idx] + step)
    assert best is not None
    return best
