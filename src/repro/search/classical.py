"""Classical baseline: linear-scan membership over an unstructured list.

The standard comparison point for search claims: an unstructured
database interrogated through an oracle that answers "is the item at
this index the target?".  Expected query count for a uniformly placed
target is ``(K + 1) / 2`` over ``K`` items, and ``K`` to certify
absence — linear, versus the spike scheme's size-independent single
coincidence and Grover's ``O(sqrt(K))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "ScanResult",
    "linear_scan",
    "linear_scan_batch",
    "expected_scan_queries",
]


@dataclass(frozen=True)
class ScanResult:
    """Outcome of one linear scan.

    Attributes
    ----------
    found:
        Whether the target was present.
    queries:
        Oracle calls performed.
    position:
        Index at which the target was found (None when absent).
    """

    found: bool
    queries: int
    position: Optional[int]


def linear_scan(database: Sequence[int], target: int) -> ScanResult:
    """Scan ``database`` left to right for ``target``; count oracle calls."""
    for position, item in enumerate(database):
        if item == target:
            return ScanResult(found=True, queries=position + 1, position=position)
    return ScanResult(found=False, queries=len(database), position=None)


def linear_scan_batch(database: Sequence[int], targets: Sequence[int]) -> "list[ScanResult]":
    """Run many membership scans against one database in a single pass.

    Vectorised counterpart of :func:`linear_scan`: one ``(Q, K)``
    equality comparison answers every query at once, with per-query
    results identical to the scalar scan bit for bit.  The modelled
    oracle-call count is unchanged — batching buys wall-clock
    throughput, not a better query complexity.
    """
    items = np.asarray(database)
    wanted = np.asarray(targets)
    if items.size == 0:
        return [ScanResult(found=False, queries=0, position=None) for _t in wanted]
    matches = items[None, :] == wanted[:, None]
    found = matches.any(axis=1)
    positions = matches.argmax(axis=1)
    results = []
    for hit, position in zip(found.tolist(), positions.tolist()):
        if hit:
            results.append(
                ScanResult(found=True, queries=position + 1, position=position)
            )
        else:
            results.append(
                ScanResult(found=False, queries=items.size, position=None)
            )
    return results


def expected_scan_queries(n_items: int, present: bool) -> float:
    """Expected oracle calls for a uniformly shuffled database.

    ``(K + 1) / 2`` when the target is present, ``K`` when absent.
    """
    if n_items < 0:
        raise ConfigurationError(f"n_items must be >= 0, got {n_items}")
    if present:
        return (n_items + 1) / 2.0
    return float(n_items)


def average_scan_queries(
    n_items: int,
    n_trials: int,
    rng: np.random.Generator,
) -> float:
    """Measured mean oracle calls over shuffled databases (target present)."""
    if n_items < 1:
        raise ConfigurationError(f"n_items must be >= 1, got {n_items}")
    if n_trials < 1:
        raise ConfigurationError(f"n_trials must be >= 1, got {n_trials}")
    total = 0
    for _trial in range(n_trials):
        database = rng.permutation(n_items)
        target = int(rng.integers(n_items))
        total += linear_scan(database.tolist(), target).queries
    return total / n_trials
