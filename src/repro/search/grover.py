"""Grover's algorithm: a state-vector simulator for the quantum comparator.

The paper's reference [2] compares the noise-based hyperspace against a
quantum search algorithm; to make that comparison measurable we
implement Grover's algorithm exactly (dense state vector, oracle phase
flip, inversion about the mean) rather than quoting its ``O(sqrt(K))``
query count.

* :func:`grover_search` — run the full iteration loop, return the
  measured-success probability trajectory and the oracle-call count at
  the optimal stopping point;
* :func:`optimal_iterations` — the closed-form
  ``floor(pi/4 * sqrt(K / marked))`` stopping rule it is tested against.

The simulator is exponential in qubits by design (it *is* the quantum
state); the search experiment keeps K ≤ 2^12, plenty to exhibit the
scaling crossover against the spike scheme's flat query cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List

import numpy as np

from ..errors import ConfigurationError

__all__ = ["GroverResult", "grover_search", "optimal_iterations"]


@dataclass(frozen=True)
class GroverResult:
    """Outcome of one Grover run.

    Attributes
    ----------
    n_items:
        Database size K (the state-space dimension).
    marked:
        The marked (solution) states.
    iterations:
        Grover iterations performed (= oracle calls).
    success_probability:
        Probability of measuring a marked state after the final
        iteration.
    trajectory:
        Success probability after each iteration (length ``iterations``).
    """

    n_items: int
    marked: FrozenSet[int]
    iterations: int
    success_probability: float
    trajectory: List[float]


def optimal_iterations(n_items: int, n_marked: int) -> int:
    """Closed-form optimal Grover iteration count.

    ``floor((pi / 4) * sqrt(K / M))``, at least 1 for a non-trivial
    search.
    """
    if n_items < 2:
        raise ConfigurationError(f"n_items must be >= 2, got {n_items}")
    if not (1 <= n_marked <= n_items):
        raise ConfigurationError(
            f"n_marked must lie in [1, {n_items}], got {n_marked}"
        )
    if n_marked * 2 >= n_items:
        return 1
    return max(1, int(math.floor((math.pi / 4.0) * math.sqrt(n_items / n_marked))))


def grover_search(
    n_items: int,
    marked: Iterable[int],
    iterations: int = 0,
) -> GroverResult:
    """Exact state-vector simulation of Grover's algorithm.

    Parameters
    ----------
    n_items:
        State-space size K (need not be a power of two; the uniform
        superposition and diffusion operator are dimension-agnostic).
    marked:
        Marked state indices (the oracle's solutions).
    iterations:
        Iteration count; 0 selects :func:`optimal_iterations`.
    """
    marked_set = frozenset(int(m) for m in marked)
    if n_items < 2:
        raise ConfigurationError(f"n_items must be >= 2, got {n_items}")
    if not marked_set:
        raise ConfigurationError("at least one marked state is required")
    for state in marked_set:
        if not (0 <= state < n_items):
            raise ConfigurationError(
                f"marked state {state} outside [0, {n_items})"
            )
    if iterations < 0:
        raise ConfigurationError(f"iterations must be >= 0, got {iterations}")
    if iterations == 0:
        iterations = optimal_iterations(n_items, len(marked_set))

    amplitude = np.full(n_items, 1.0 / math.sqrt(n_items))
    marked_index = np.asarray(sorted(marked_set), dtype=np.int64)
    trajectory: List[float] = []
    for _step in range(iterations):
        # Oracle: phase-flip the marked amplitudes.
        amplitude[marked_index] *= -1.0
        # Diffusion: inversion about the mean.
        amplitude = 2.0 * amplitude.mean() - amplitude
        trajectory.append(float(np.sum(amplitude[marked_index] ** 2)))

    return GroverResult(
        n_items=n_items,
        marked=marked_set,
        iterations=iterations,
        success_probability=trajectory[-1],
        trajectory=trajectory,
    )
