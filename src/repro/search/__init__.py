"""Search over the hyperspace, with classical and quantum comparators.

* :class:`SuperpositionDatabase` — membership by single coincidence
  (query cost independent of database size);
* :func:`linear_scan` / :func:`expected_scan_queries` — the classical
  unstructured-search baseline (O(K));
* :func:`grover_search` / :func:`optimal_iterations` — an exact
  state-vector Grover simulator (O(sqrt K) oracle calls).
"""

from .classical import (
    ScanResult,
    average_scan_queries,
    expected_scan_queries,
    linear_scan,
    linear_scan_batch,
)
from .grover import GroverResult, grover_search, optimal_iterations
from .superposition_search import QueryResult, SuperpositionDatabase
from .verification import VerificationResult, verify_equality, verify_subset

__all__ = [
    "SuperpositionDatabase",
    "QueryResult",
    "linear_scan",
    "linear_scan_batch",
    "ScanResult",
    "expected_scan_queries",
    "average_scan_queries",
    "grover_search",
    "GroverResult",
    "optimal_iterations",
    "VerificationResult",
    "verify_equality",
    "verify_subset",
]
