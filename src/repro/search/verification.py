"""Set verification between superposition wires (ref [2]'s string tests).

The hyperspace reference ([2], Kish–Khatri–Sethuraman) motivates the
single-wire superposition with *verification* problems: decide whether
two parties' sets (bit strings encoded as superpositions) are equal,
or whether one contains the other, with few physical operations.

On orthogonal bases these reduce to coincidence bookkeeping:

* a wire's spike at a slot owned by element e *proves* e ∈ set;
* a reference spike of e absent from the wire at that slot proves
  e ∉ set (clean-wire semantics: members contribute whole trains);

so equality/subset verdicts settle progressively as evidence arrives.
:func:`verify_equality` and :func:`verify_subset` return both the
verdict and the *decision slot*: for unequal sets this is the first
differing spike — typically one ISI, far before the full readout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import HyperspaceError
from ..hyperspace.basis import HyperspaceBasis
from ..spikes.train import SpikeTrain

__all__ = ["VerificationResult", "verify_equality", "verify_subset"]


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of a set-verification test.

    Attributes
    ----------
    verdict:
        The boolean answer.
    decision_slot:
        Slot of the decisive evidence.  For a negative verdict: the
        first differing spike.  For a positive verdict: the last slot
        at which a difference could still have appeared (the wires'
        final occupied slot) — positives must wait out the record.
    witness_element:
        For a negative verdict, the element exhibiting the difference;
        None otherwise.
    """

    verdict: bool
    decision_slot: int
    witness_element: Optional[int]


def _check_wire(basis: HyperspaceBasis, wire: SpikeTrain, name: str) -> None:
    counts = basis.classify_train(wire)
    if -1 in counts:
        raise HyperspaceError(
            f"{name} carries {counts[-1]} spike(s) owned by no basis element"
        )


def verify_equality(
    basis: HyperspaceBasis,
    wire_a: SpikeTrain,
    wire_b: SpikeTrain,
) -> VerificationResult:
    """Are the two superposition wires the same set?

    Physically: XOR the wires' spike occupancy; the first slot where
    exactly one wire spikes exposes a member difference — its owning
    element is the witness.  Silence everywhere = equal (decided only
    once all evidence has passed).
    """
    _check_wire(basis, wire_a, "wire A")
    _check_wire(basis, wire_b, "wire B")
    difference = wire_a ^ wire_b
    first = difference.first_spike_index()
    if first is not None:
        return VerificationResult(
            verdict=False,
            decision_slot=first,
            witness_element=basis.owner_of_slot(first),
        )
    last_evidence = 0
    union = wire_a | wire_b
    if len(union):
        last_evidence = int(union.indices[-1])
    return VerificationResult(
        verdict=True, decision_slot=last_evidence, witness_element=None
    )


def verify_subset(
    basis: HyperspaceBasis,
    wire_a: SpikeTrain,
    wire_b: SpikeTrain,
) -> VerificationResult:
    """Is A's member set contained in B's?

    The first spike of A in a slot B misses exposes a member of A \\ B.
    """
    _check_wire(basis, wire_a, "wire A")
    _check_wire(basis, wire_b, "wire B")
    extra = wire_a - wire_b
    first = extra.first_spike_index()
    if first is not None:
        return VerificationResult(
            verdict=False,
            decision_slot=first,
            witness_element=basis.owner_of_slot(first),
        )
    last_evidence = int(wire_a.indices[-1]) if len(wire_a) else 0
    return VerificationResult(
        verdict=True, decision_slot=last_evidence, witness_element=None
    )
