"""Superposition search over the neuro-bit hyperspace.

The paper's introduction cites its reference [2]: the noise-based logic
hyperspace carries a superposition of up to ``2^N − 1`` states on a
single wire and "was shown to outperform a quantum search algorithm".
The operational content: with the database's member set encoded as a
superposition wire, answering "is state x in the database?" is a single
coincidence check against x's reference train — the query cost does not
grow with the database size, only with the reference train's inter-spike
interval.

:class:`SuperpositionDatabase` implements that machine:

* :meth:`load` — encode a set of member states onto one wire;
* :meth:`query` — membership test by coincidence, reporting the decision
  latency in samples;
* :meth:`enumerate_members` — full readout (classify every wire spike).

The comparators live in :mod:`repro.search.classical` (linear scan) and
:mod:`repro.search.grover` (a real state-vector Grover simulator); the
C7 experiment and bench put all three on one axis: queries/time to
answer a membership question vs database size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import HyperspaceError, IdentificationError
from ..hyperspace.basis import HyperspaceBasis
from ..hyperspace.superposition import first_detection_slots
from ..spikes.train import SpikeTrain

__all__ = ["QueryResult", "SuperpositionDatabase"]


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one membership query.

    Attributes
    ----------
    state:
        The queried state (basis element index).
    present:
        The verdict.
    decision_slot:
        For a present state: the slot of the confirming coincidence.
        For an absent state: the slot of the *reference train's last
        spike* — the point after which absence is certain on a clean
        wire (every opportunity to coincide has passed).
    coincidences_checked:
        Number of reference spikes inspected.
    """

    state: int
    present: bool
    decision_slot: int
    coincidences_checked: int


class SuperpositionDatabase:
    """A set of states on one wire, queried by coincidence.

    Parameters
    ----------
    basis:
        The hyperspace whose elements are the representable states.
        Build it with :func:`repro.hyperspace.build_intersection_basis`
        for the exponential ``2^N − 1`` capacity the paper highlights.
    """

    def __init__(self, basis: HyperspaceBasis) -> None:
        self.basis = basis
        self._wire: Optional[SpikeTrain] = None
        self._members: FrozenSet[int] = frozenset()
        self._wire_raster: Optional[np.ndarray] = None

    @property
    def capacity(self) -> int:
        """Number of representable states (the basis size M)."""
        return self.basis.size

    @property
    def wire(self) -> SpikeTrain:
        """The loaded superposition wire."""
        if self._wire is None:
            raise HyperspaceError("no database loaded; call load() first")
        return self._wire

    @property
    def members(self) -> FrozenSet[int]:
        """The loaded member set (ground truth, for verification)."""
        return self._members

    def load(self, states: Iterable[int]) -> SpikeTrain:
        """Encode ``states`` as one superposition wire; returns the wire."""
        members = frozenset(self.basis.index_of(s) for s in states)
        self._members = members
        self._wire = self.basis.encode_set(sorted(members))
        self._wire_raster = self._wire.to_raster()
        return self._wire

    def query(self, state: int, start_slot: int = 0) -> QueryResult:
        """Membership test for ``state`` by coincidence detection.

        Walks the state's *reference* spikes from ``start_slot``; the
        first one also present on the wire confirms membership.  If the
        reference train is exhausted without a coincidence, the state is
        absent (exact on clean wires: a member contributes its whole
        reference train).  The walk is one vectorised gather of the
        wire's occupancy at the reference slots.
        """
        element = self.basis.index_of(state)
        self.wire  # raises when nothing is loaded
        reference = self.basis.trains[element]
        slots = reference.indices[np.searchsorted(reference.indices, start_slot) :]
        if slots.size == 0:
            raise IdentificationError(
                f"reference train of state {element} has no spikes after "
                f"slot {start_slot}; membership undecidable"
            )
        on_wire = self._wire_raster[slots]
        hits = np.flatnonzero(on_wire)
        if hits.size:
            first = int(hits[0])
            return QueryResult(
                state=element,
                present=True,
                decision_slot=int(slots[first]),
                coincidences_checked=first + 1,
            )
        return QueryResult(
            state=element,
            present=False,
            decision_slot=int(slots[-1]),
            coincidences_checked=int(slots.size),
        )

    def query_batch(
        self, states: Sequence[int], start_slot: int = 0
    ) -> List[QueryResult]:
        """Batched membership tests: one vectorised pass for many states.

        Gathers the wire's occupancy at the concatenated reference
        slots of every queried state; per-state results match
        :meth:`query` bit for bit.
        """
        elements = [self.basis.index_of(s) for s in states]
        self.wire  # raises when nothing is loaded
        if not elements:
            return []
        references = [self.basis.trains[e].indices for e in elements]
        if start_slot > 0:
            references = [
                r[np.searchsorted(r, start_slot) :] for r in references
            ]
        counts = np.array([r.size for r in references], dtype=np.int64)
        empty = np.flatnonzero(counts == 0)
        if empty.size:
            raise IdentificationError(
                f"reference train of state(s) "
                f"{[elements[i] for i in empty.tolist()]} has no spikes after "
                f"slot {start_slot}; membership undecidable"
            )
        slots = np.concatenate(references)
        on_wire = self._wire_raster[slots]
        ptr = np.concatenate([[0], np.cumsum(counts)])
        results: List[QueryResult] = []
        for k, element in enumerate(elements):
            lo, hi = int(ptr[k]), int(ptr[k + 1])
            hits = np.flatnonzero(on_wire[lo:hi])
            if hits.size:
                first = int(hits[0])
                results.append(
                    QueryResult(
                        state=element,
                        present=True,
                        decision_slot=int(slots[lo + first]),
                        coincidences_checked=first + 1,
                    )
                )
            else:
                results.append(
                    QueryResult(
                        state=element,
                        present=False,
                        decision_slot=int(slots[hi - 1]),
                        coincidences_checked=hi - lo,
                    )
                )
        return results

    def enumerate_members(self) -> Dict[int, int]:
        """Full readout: member element → first detection slot."""
        return first_detection_slots(self.basis, self.wire)

    def verify(self) -> bool:
        """Cross-check the readout against the loaded ground truth."""
        return frozenset(self.enumerate_members()) == self._members
