"""ASCII spike-raster rendering.

No plotting stack is available offline, so the paper's figures are
reproduced as text rasters: each train is a row of characters, ``|`` for
a slot containing a spike, ``.`` for silence, with the time axis
compressed by an integer bin factor.  The figure benchmarks print these
next to the underlying CSV series.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..spikes.train import SpikeTrain
from ..units import format_time

__all__ = ["render_raster", "render_labelled_rasters"]


def render_raster(
    train: SpikeTrain,
    start: int = 0,
    stop: Optional[int] = None,
    width: int = 100,
) -> str:
    """One train as a character row over the window ``[start, stop)``.

    The window is divided into ``width`` bins; a bin renders ``|`` when
    it contains at least one spike.  Binning loses sub-bin multiplicity
    on purpose — the figures show *where* spikes fall, not how many.
    """
    stop = train.grid.n_samples if stop is None else stop
    if not (0 <= start < stop <= train.grid.n_samples):
        raise ConfigurationError(
            f"window [{start}, {stop}) invalid for {train.grid.n_samples} samples"
        )
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    windowed = train.window(start, stop)
    span = stop - start
    bins = np.minimum(
        ((windowed.indices - start) * width) // span, width - 1
    )
    row = np.full(width, ".", dtype="<U1")
    row[np.unique(bins)] = "|"
    return "".join(row.tolist())


def render_labelled_rasters(
    labelled_trains: Sequence[Tuple[str, SpikeTrain]],
    start: int = 0,
    stop: Optional[int] = None,
    width: int = 100,
) -> str:
    """Several trains stacked with aligned labels and a time ruler."""
    if not labelled_trains:
        raise ConfigurationError("nothing to render")
    grid = labelled_trains[0][1].grid
    stop = grid.n_samples if stop is None else stop
    label_width = max(len(label) for label, _unused in labelled_trains)
    lines = []
    for label, train in labelled_trains:
        lines.append(f"{label:>{label_width}s} {render_raster(train, start, stop, width)}")
    t0 = format_time(start * grid.dt)
    t1 = format_time(stop * grid.dt)
    ruler = f"{'':>{label_width}s} {t0}{' ' * max(1, width - len(t0) - len(t1))}{t1}"
    lines.append(ruler)
    return "\n".join(lines)
