"""Text visualisation (ASCII rasters) for the figure reproductions."""

from .raster import render_labelled_rasters, render_raster
from .waveform import render_waveform, render_waveform_with_crossings

__all__ = [
    "render_raster",
    "render_labelled_rasters",
    "render_waveform",
    "render_waveform_with_crossings",
]
