"""ASCII waveform rendering: analog records with crossing markers.

Complements the spike rasters: Figure 1's top panel is really "noise
waveform whose zero crossings become spikes", and inspecting the analog
record is the first debugging step for any noise-source issue.  The
renderer bins the record into character columns, draws the min–max
envelope per column, marks the zero axis, and can overlay the detected
crossing slots.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..spikes.train import SpikeTrain
from ..units import SimulationGrid, format_time

__all__ = ["render_waveform", "render_waveform_with_crossings"]


def render_waveform(
    record: np.ndarray,
    grid: SimulationGrid,
    start: int = 0,
    stop: Optional[int] = None,
    width: int = 100,
    height: int = 9,
) -> str:
    """Render ``record[start:stop]`` as a ``height``-row ASCII plot.

    Each character column spans ``(stop-start)/width`` samples and draws
    the column's min–max envelope with ``*``; the zero axis renders as
    ``-`` where the envelope does not cover it.
    """
    record = np.asarray(record, dtype=float)
    if record.shape != (grid.n_samples,):
        raise ConfigurationError(
            f"record shape {record.shape} does not match grid "
            f"({grid.n_samples} samples)"
        )
    stop = grid.n_samples if stop is None else stop
    if not (0 <= start < stop <= grid.n_samples):
        raise ConfigurationError(f"window [{start}, {stop}) invalid")
    if width < 2 or height < 3:
        raise ConfigurationError("width must be >= 2 and height >= 3")
    if height % 2 == 0:
        height += 1  # odd height keeps a centre row for the zero axis

    window = record[start:stop]
    edges = np.linspace(0, window.size, width + 1).astype(int)
    columns_min = np.empty(width)
    columns_max = np.empty(width)
    for column in range(width):
        chunk = window[edges[column] : max(edges[column] + 1, edges[column + 1])]
        columns_min[column] = chunk.min()
        columns_max[column] = chunk.max()

    scale = max(abs(columns_min.min()), abs(columns_max.max()), 1e-12)
    half = height // 2

    def row_of(value: float) -> int:
        # +scale → row 0 (top); −scale → row height−1; 0 → centre.
        return int(round(half - (value / scale) * half))

    canvas: List[List[str]] = [[" "] * width for _unused in range(height)]
    for column in range(width):
        top = row_of(columns_max[column])
        bottom = row_of(columns_min[column])
        for row in range(max(0, top), min(height, bottom + 1)):
            canvas[row][column] = "*"
    for column in range(width):
        if canvas[half][column] == " ":
            canvas[half][column] = "-"

    lines = ["".join(row) for row in canvas]
    t0 = format_time(start * grid.dt)
    t1 = format_time(stop * grid.dt)
    ruler = f"{t0}{' ' * max(1, width - len(t0) - len(t1))}{t1}"
    return "\n".join(lines + [ruler])


def render_waveform_with_crossings(
    record: np.ndarray,
    grid: SimulationGrid,
    crossings: SpikeTrain,
    start: int = 0,
    stop: Optional[int] = None,
    width: int = 100,
    height: int = 9,
) -> str:
    """Waveform plot plus a crossing-marker row (``|`` per crossing bin)."""
    stop = grid.n_samples if stop is None else stop
    plot = render_waveform(record, grid, start, stop, width, height)
    windowed = crossings.window(start, stop)
    span = stop - start
    marks = np.full(width, ".", dtype="<U1")
    if len(windowed):
        bins = np.minimum(((windowed.indices - start) * width) // span, width - 1)
        marks[np.unique(bins)] = "|"
    lines = plot.split("\n")
    # Insert the marker row just above the time ruler.
    return "\n".join(lines[:-1] + ["".join(marks.tolist())] + lines[-1:])
