"""Command-line interface: run registered experiments through the pipeline.

Usage::

    python -m repro.cli list
    python -m repro.cli run table1
    python -m repro.cli run identify --jobs 4
    python -m repro.cli run speed --seed 7
    python -m repro.cli run all --jobs 4 --output-dir results/
    python -m repro.cli serve --port 8642 --jobs 4
    python -m repro.cli corpus build corpora/noise --rows 100000
    python -m repro.cli corpus info corpora/noise
    python -m repro.cli serve --corpus corpora/noise

``list`` and ``run``'s experiment choices come straight from the
:mod:`repro.pipeline.registry` — registering a new
:class:`~repro.pipeline.spec.ExperimentSpec` is all it takes to appear
here.  ``run`` executes through :class:`~repro.pipeline.runner.Runner`:
``--jobs N`` shards a single shardable experiment across N worker
processes (bit-identical to the serial run) and runs whole experiments
in parallel for ``run all``; ``--output-dir`` archives one JSON and one
text artifact per experiment (plus a manifest for ``run all``) via the
:class:`~repro.pipeline.store.ArtifactStore`.  ``run all`` continues
past failing experiments and ends with a per-experiment pass/fail
summary, exiting non-zero when anything failed.  ``serve`` starts the
packed-bitset RPC front-end (:mod:`repro.serving`): an asyncio server
identifying client wire batches against a deterministic basis, sharded
over the runner's worker pool — see ``docs/serving.md``.

``corpus build`` streams a generated spike recording into an on-disk
:class:`~repro.pipeline.corpus.CorpusStore` (packed segments + a
row-range manifest, one chunk in memory at a time), ``corpus info``
summarises one without reading any payload, and ``serve --corpus``
hosts one read-only so clients can query row ranges by name — the
server computes straight off the memmap.  See ``docs/corpus.md``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Dict, Optional, Sequence

from .pipeline.registry import all_specs, get_spec, spec_names
from .pipeline.runner import Runner, RunReport
from .pipeline.spec import ExperimentSpec
from .pipeline.store import ArtifactStore

__all__ = ["EXPERIMENTS", "build_parser", "main"]

#: Experiment id → registered spec (a registry view, kept for callers
#: that want the mapping without importing the pipeline package).
EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.name: spec for spec in all_specs()
}


def _positive_int(text: str) -> int:
    """argparse type for --jobs: a clean usage error beats a traceback."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'Towards Brain-inspired "
        "Computing' (Gingl, Khatri, Kish).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        choices=spec_names() + ["all"],
        help="experiment id, or 'all'",
    )
    run.add_argument(
        "--seed", type=int, default=2016, help="random seed (default 2016)"
    )
    run.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes: shards one experiment, parallelises 'all' "
        "(default 1)",
    )
    run.add_argument(
        "--output-dir",
        type=pathlib.Path,
        default=None,
        help="archive artifacts as <dir>/<experiment>.{json,txt}",
    )

    serve = sub.add_parser(
        "serve",
        help="start the packed-bitset serving front-end (docs/serving.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8642,
        help="TCP port; 0 binds an ephemeral port (default 8642)",
    )
    serve.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for shard dispatch (default 1: in-process)",
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="server processes accepting on the one port "
        "(SO_REUSEPORT, or a front proxy without it; default 1)",
    )
    serve.add_argument(
        "--seed",
        type=int,
        default=2016,
        help="seed of the deterministic serving basis (default 2016)",
    )
    serve.add_argument(
        "--basis-size",
        type=_positive_int,
        default=16,
        help="number of basis elements M (default 16)",
    )
    serve.add_argument(
        "--n-samples",
        type=_positive_int,
        default=65536,
        help="grid length requests must match (default 65536)",
    )
    serve.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        help="shards per request (default: one per job)",
    )
    serve.add_argument(
        "--fast-path-bytes",
        type=int,
        default=4 * 1024 * 1024,
        help="serve requests up to this payload size inline, skipping "
        "the arena/pool pipeline; 0 disables the fast path "
        "(default 4 MiB)",
    )
    serve.add_argument(
        "--coalesce-window-ms",
        type=float,
        default=0.0,
        help="stack compatible small requests arriving within this "
        "window into one wide batch; 0 disables coalescing (default 0)",
    )
    serve.add_argument(
        "--coalesce-max-wires",
        type=_positive_int,
        default=4096,
        help="flush a coalescing bucket once this many wires "
        "accumulate (default 4096)",
    )
    serve.add_argument(
        "--corpus",
        type=pathlib.Path,
        default=None,
        help="host this corpus directory read-only and answer "
        "corpus-query frames against it (docs/corpus.md); the corpus "
        "grid must match --n-samples",
    )
    serve.add_argument(
        "--corpus-chunk-rows",
        type=_positive_int,
        default=4096,
        help="max rows one corpus-scan chunk maps at a time — bounds "
        "the peak working set of a corpus query (default 4096)",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=0.0,
        help="close connections idle for this many seconds; 0 keeps "
        "them forever (default 0)",
    )
    serve.add_argument(
        "--shard-timeout",
        type=float,
        default=120.0,
        help="seconds to wait for one shard's pool result before "
        "treating its worker as lost and recovering (default 120)",
    )
    serve.add_argument(
        "--shard-retries",
        type=_positive_int,
        default=2,
        help="pool resubmit/restart attempts for a lost shard before "
        "it runs in-process (default 2)",
    )

    corpus = sub.add_parser(
        "corpus",
        help="build and inspect on-disk packed corpora (docs/corpus.md)",
    )
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)
    build = corpus_sub.add_parser(
        "build",
        help="stream a generated Poisson recording into a new corpus",
    )
    build.add_argument(
        "directory", type=pathlib.Path, help="corpus directory to create"
    )
    build.add_argument(
        "--rows",
        type=_positive_int,
        default=4096,
        help="total wire rows to generate (default 4096)",
    )
    build.add_argument(
        "--seed",
        type=int,
        default=2016,
        help="seed of the generated recording (default 2016)",
    )
    build.add_argument(
        "--n-samples",
        type=_positive_int,
        default=65536,
        help="grid length — must match the basis the corpus will be "
        "served against (default 65536)",
    )
    build.add_argument(
        "--isi",
        type=_positive_int,
        default=28,
        help="mean inter-spike interval in samples of the generated "
        "rows (default 28, the serving basis default)",
    )
    build.add_argument(
        "--chunk-rows",
        type=_positive_int,
        default=1024,
        help="rows generated and persisted per segment — the build's "
        "peak working set (default 1024)",
    )
    build.add_argument(
        "--append",
        action="store_true",
        help="append to an existing corpus instead of requiring a "
        "fresh directory",
    )
    info = corpus_sub.add_parser(
        "info", help="summarise a corpus from its manifest (no payload reads)"
    )
    info.add_argument(
        "directory", type=pathlib.Path, help="corpus directory to inspect"
    )
    info.add_argument(
        "--verify",
        action="store_true",
        help="recompute every segment's CRC32 against the manifest "
        "(reads all payload bytes; exits non-zero on corruption)",
    )
    return parser


def _print_list(out) -> None:
    """One registry-derived line per experiment."""
    specs = all_specs()
    width = max(len(spec.name) for spec in specs)
    for spec in specs:
        sharded = "  [shardable]" if spec.shardable else ""
        print(
            f"{spec.name:<{width}s}  [{spec.tier}] {spec.description}{sharded}",
            file=out,
        )


def _print_report(report: RunReport, out) -> None:
    """One experiment's rendered output (or its failure)."""
    if report.ok:
        print(report.rendered, file=out)
    else:
        print(f"{report.name} FAILED:\n{report.error}", file=out)
    print(file=out)


def _print_summary(reports: Sequence[RunReport], out) -> None:
    """The per-experiment pass/fail summary of a multi-experiment run."""
    failed = [report for report in reports if not report.ok]
    width = max(len(report.name) for report in reports)
    print(f"== run summary: {len(reports) - len(failed)}/{len(reports)} ok ==",
          file=out)
    for report in reports:
        status = "ok  " if report.ok else "FAIL"
        print(
            f"  {report.name:<{width}s}  {status}  "
            f"{report.wall_seconds:7.2f}s",
            file=out,
        )
    if failed:
        print(
            f"failed: {', '.join(report.name for report in failed)}",
            file=out,
        )


def main(argv: Optional[Sequence[str]] = None, out=sys.stdout) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        _print_list(out)
        return 0

    if args.command == "run":
        store = (
            ArtifactStore(args.output_dir)
            if args.output_dir is not None
            else None
        )
        with Runner(jobs=args.jobs, store=store) as runner:
            if args.experiment == "all":
                reports = runner.run_many(seed=args.seed)
                for report in reports:
                    _print_report(report, out)
                _print_summary(reports, out)
                return 0 if all(report.ok for report in reports) else 1
            get_spec(args.experiment)  # argparse already validated; fail loud
            report = runner.run(args.experiment, seed=args.seed)
            _print_report(report, out)
            return 0 if report.ok else 1

    if args.command == "serve":
        # Imported here: the serving layer (asyncio, sockets) is only
        # paid for by the one sub-command that needs it.
        from .serving.server import ServerConfig, serve_forever

        config = ServerConfig(
            host=args.host,
            port=args.port,
            seed=args.seed,
            basis_size=args.basis_size,
            n_samples=args.n_samples,
            jobs=args.jobs,
            n_shards=args.shards if args.shards is not None else 0,
            fast_path_bytes=args.fast_path_bytes,
            coalesce_window=args.coalesce_window_ms / 1000.0,
            coalesce_max_wires=args.coalesce_max_wires,
            workers=args.workers,
            corpus=str(args.corpus) if args.corpus is not None else None,
            corpus_chunk_rows=args.corpus_chunk_rows,
            idle_timeout=args.idle_timeout,
            shard_timeout=args.shard_timeout,
            shard_retries=args.shard_retries,
        )
        return serve_forever(config, out=out)

    if args.command == "corpus":
        return _run_corpus(args, out)

    return 2  # unreachable: argparse enforces the sub-commands


def _run_corpus(args, out) -> int:
    """The ``corpus build`` / ``corpus info`` sub-commands."""
    # Imported here for the same reason serve's imports are: only the
    # corpus sub-commands pay for the backend stack.
    import numpy as np

    from .errors import PipelineError
    from .pipeline.corpus import CorpusStore
    from .units import paper_white_grid

    if args.corpus_command == "info":
        import json

        try:
            store = CorpusStore(args.directory)
            payload = store.info()
            if args.verify:
                payload["verify"] = store.verify()
        except PipelineError as exc:
            print(f"repro corpus info: {exc}", file=out)
            return 1
        print(json.dumps(payload, indent=2, sort_keys=True), file=out)
        return 0

    # build: stream Bernoulli/Poisson rows chunk-at-a-time — the
    # working set is one chunk's raster, never the corpus.
    from .backend.batch import SpikeTrainBatch
    from .noise.synthesis import make_rng

    grid = paper_white_grid(n_samples=args.n_samples)
    try:
        if args.append and (args.directory / "manifest.json").exists():
            store = CorpusStore(args.directory)
            if store.grid() != grid:
                print(
                    f"repro corpus build: existing corpus grid does not "
                    f"match --n-samples {args.n_samples}",
                    file=out,
                )
                return 1
        else:
            store = CorpusStore.create(args.directory, grid)
    except PipelineError as exc:
        print(f"repro corpus build: {exc}", file=out)
        return 1
    rng = make_rng(args.seed)
    p_spike = 1.0 / args.isi  # per-slot rate of the target mean ISI
    written = 0
    with store.writer() as writer:
        while written < args.rows:
            n = min(args.chunk_rows, args.rows - written)
            raster = rng.random((n, grid.n_samples)) < p_spike
            writer.append(SpikeTrainBatch.from_raster(raster, grid, copy=False))
            written += n
    summary = store.info()
    print(
        f"repro corpus build: {args.directory} now holds "
        f"{summary['n_rows']} rows in {summary['n_segments']} segments "
        f"({summary['disk_bytes'] / 1e6:.1f} MB packed, "
        f"n_samples={summary['n_samples']}, seed={args.seed})",
        file=out,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
