"""Command-line interface: run paper experiments from the shell.

Usage::

    python -m repro.cli list
    python -m repro.cli run table1
    python -m repro.cli run speed --seed 7
    python -m repro.cli run all --output-dir results/

Every experiment driver in :mod:`repro.experiments` is exposed; ``run``
prints the rendered artifact and optionally archives it.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Dict, Optional, Sequence

from .experiments import (
    run_aliasing,
    run_energy,
    run_figure1,
    run_figure2,
    run_figure3,
    run_gates,
    run_progressive,
    run_robustness,
    run_scaling,
    run_search,
    run_speed,
    run_table1,
    run_table2,
    run_verification,
)

__all__ = ["EXPERIMENTS", "main"]


def _render_table1(seed: int) -> str:
    return run_table1(seed=seed).render()


def _render_table2(seed: int) -> str:
    return run_table2(seed=seed).render()


def _render_figure1(seed: int) -> str:
    return run_figure1(seed=seed).render()


def _render_figure2(seed: int) -> str:
    return run_figure2(seed=seed).render()


def _render_figure3(seed: int) -> str:
    return run_figure3(seed=seed).render()


def _render_speed(seed: int) -> str:
    return run_speed(seed=seed).render()


def _render_aliasing(seed: int) -> str:
    return run_aliasing(seed=seed).render()


def _render_scaling(seed: int) -> str:
    return run_scaling(seed=seed).render()


def _render_progressive(seed: int) -> str:
    return run_progressive(seed=seed).render()


def _render_search(seed: int) -> str:
    return run_search(seed=seed).render()


def _render_robustness(seed: int) -> str:
    return run_robustness(seed=seed).render()


def _render_verification(seed: int) -> str:
    return run_verification(seed=seed).render()


def _render_energy(seed: int) -> str:
    del seed  # the energy model is deterministic
    return run_energy().render()


def _render_gates(seed: int) -> str:
    return run_gates(seed=seed).render()


#: Experiment id → (description, renderer).
EXPERIMENTS: Dict[str, tuple] = {
    "table1": ("Table 1 — demux orthogonator statistics", _render_table1),
    "table2": ("Table 2 — intersection + homogenization", _render_table2),
    "figure1": ("Figure 1 — demux raster", _render_figure1),
    "figure2": ("Figure 2 — intersection raster (uncorrelated)", _render_figure2),
    "figure3": ("Figure 3 — intersection raster (correlated)", _render_figure3),
    "speed": ("C1 — identification speed vs baselines", _render_speed),
    "aliasing": ("C2 — delay aliasing, periodic vs random", _render_aliasing),
    "scaling": ("C3 — exponential hyperspace scaling", _render_scaling),
    "progressive": ("C4 — rough-then-refine readout", _render_progressive),
    "energy": ("C5 — energy per gate operation", _render_energy),
    "gates": ("C6 — gate correctness and latency", _render_gates),
    "search": ("C7 — search vs classical and Grover", _render_search),
    "verification": ("C8 — set-verification latency", _render_verification),
    "robustness": ("C9 — identification robustness sweeps", _render_robustness),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'Towards Brain-inspired "
        "Computing' (Gingl, Khatri, Kish).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id, or 'all'",
    )
    run.add_argument(
        "--seed", type=int, default=2016, help="random seed (default 2016)"
    )
    run.add_argument(
        "--output-dir",
        type=pathlib.Path,
        default=None,
        help="also archive rendered output as <dir>/<experiment>.txt",
    )
    return parser


def _run_one(
    name: str,
    seed: int,
    output_dir: Optional[pathlib.Path],
    out=sys.stdout,
) -> None:
    _description, renderer = EXPERIMENTS[name]
    text = renderer(seed)
    print(text, file=out)
    print(file=out)
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)
        (output_dir / f"{name}.txt").write_text(text + "\n")


def main(argv: Optional[Sequence[str]] = None, out=sys.stdout) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            description, _renderer = EXPERIMENTS[name]
            print(f"{name:<{width}s}  {description}", file=out)
        return 0

    if args.command == "run":
        names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        for name in names:
            _run_one(name, args.seed, args.output_dir, out=out)
        return 0

    return 2  # unreachable: argparse enforces the sub-commands


if __name__ == "__main__":
    sys.exit(main())
