"""Structured, process-aware logging for the serving tier.

One logger hierarchy (``repro.serving``) shared by the single-process
server and every worker of a ``--workers N`` cluster.  Each record is
prefixed with the emitting process id, which is what makes interleaved
multi-worker output attributable — the same per-worker discipline as
syncopy's ``shared/log.py``.

The level comes from the ``REPRO_LOG_LEVEL`` environment variable
(``DEBUG``/``INFO``/``WARNING``/``ERROR``, default ``INFO``), read at
configure time so operators tune verbosity without touching flags.
:func:`configure` is idempotent per process and fork-safe: a forked
worker calls it again and gets a handler bound to its own pid.

Lines a machine consumes stay machine-consumable: the CI smoke jobs
parse the "listening on host:port" banner out of this logger's output,
so the message format keeps the payload verbatim after the prefix.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import IO, Optional

__all__ = ["LEVEL_ENV", "configure", "get_logger", "level_from_env"]

#: Environment variable naming the serving log level.
LEVEL_ENV = "REPRO_LOG_LEVEL"

#: Root of the serving logger hierarchy.
_LOGGER_NAME = "repro.serving"

#: Every record carries the emitting pid — the multi-worker requirement.
_FORMAT = "[%(process)d] %(levelname)s %(name)s: %(message)s"

#: The pid that last configured the logger (fork detection).
_configured_pid: Optional[int] = None


def level_from_env(default: int = logging.INFO) -> int:
    """The level named by :data:`LEVEL_ENV`, or ``default``.

    Unknown names fall back to the default rather than raising — a
    typo in an operator's environment must not stop a server.
    """
    name = os.environ.get(LEVEL_ENV, "").strip().upper()
    if not name:
        return default
    level = logging.getLevelName(name)
    return level if isinstance(level, int) else default


def configure(
    stream: Optional[IO[str]] = None,
    level: Optional[int] = None,
) -> logging.Logger:
    """Attach the serving handler to ``stream`` (default: stdout).

    Replaces any handler a previous :func:`configure` installed — on
    this pid or a fork parent's — so re-configuring after ``fork()``
    or pointing a test at its own buffer never double-logs.  Returns
    the configured logger.
    """
    global _configured_pid
    logger = logging.getLogger(_LOGGER_NAME)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stdout)
    handler.setFormatter(logging.Formatter(_FORMAT))
    logger.addHandler(handler)
    logger.setLevel(level if level is not None else level_from_env())
    logger.propagate = False
    _configured_pid = os.getpid()
    return logger


def get_logger(child: Optional[str] = None) -> logging.Logger:
    """The serving logger (configured on first use per process).

    ``child`` scopes the name (``repro.serving.<child>``); worker
    processes pass e.g. ``"worker"`` so origin is visible even before
    the pid prefix is correlated.
    """
    if _configured_pid != os.getpid():
        configure()
    name = _LOGGER_NAME if not child else f"{_LOGGER_NAME}.{child}"
    return logging.getLogger(name)
