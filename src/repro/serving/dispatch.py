"""Worker-side shard execution for the serving front-end.

The server splits each request's wire batch into contiguous row-range
shards and runs every shard through one function —
:func:`compute_shard` — whether the shard executes in-process or on a
pool worker.  Equal inputs produce equal JSON-ready payloads, so the
dispatch mechanism is invisible in the response, exactly as the
pipeline's shard plans make sharded experiment runs bit-identical to
serial ones.

Two transport pieces make the pool path zero-copy:

* **basis install** — the serving basis is exported once as a
  :class:`BasisTable` (plain picklable arrays, no shared segments) and
  installed into a per-process registry, either inherited by forked
  workers or delivered by one
  :meth:`~repro.pipeline.runner.Runner.broadcast` at server start-up.
  Shard tasks then reference the basis by token, never re-shipping it.
  A long-lived shared-memory export would fight the attachment cache's
  per-arena eviction (each request uses a fresh short-lived arena), so
  the basis deliberately travels by value, once.
* **:class:`ShardTask`** — the per-shard pool task: the request
  batch's :class:`~repro.backend.batch.SharedBatchHandle` plus a row
  range and scan options.  Workers attach the request's shared segments
  and wrap their row range as a *packed-primary view* of the mapped
  bitset (:meth:`~repro.backend.batch.SpikeTrainBatch.from_shared`), so
  shard compute runs the packed kernels straight on the pages the
  server wrote — the payload is never unpacked to a raster anywhere,
  and every shard payload reports its batch's representation residency
  to prove it.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..backend.batch import SharedBatchHandle, SpikeTrainBatch
from ..errors import ServingError
from ..hyperspace.basis import HyperspaceBasis
from ..logic.correlator import CoincidenceCorrelator
from ..logic.netbatch import LogicNetBatch
from ..testing import faults
from ..units import SimulationGrid
from .protocol import ERR_INTERNAL

__all__ = [
    "BasisTable",
    "ShardTask",
    "LogicNetShardTask",
    "export_basis",
    "install_basis",
    "discard_basis",
    "installed_basis",
    "run_shard",
    "compute_shard",
    "run_logicnet_shard",
    "compute_logicnet_shard",
]


@dataclass(frozen=True)
class BasisTable:
    """Picklable plain-array export of a verified basis.

    Element ``i``'s sorted slots are ``values[ptr[i]:ptr[i + 1]]`` —
    the same table :class:`~repro.hyperspace.basis.BasisArtifact` ships
    through shared memory, but carried by value so it can be installed
    once per process and outlive any request arena.  ``token``
    identifies the install; shard tasks carry the token only.
    """

    token: str
    labels: Tuple[str, ...]
    values: np.ndarray
    ptr: np.ndarray
    n_samples: int
    dt: float


@dataclass(frozen=True)
class ShardTask:
    """One serving shard: a row range of a shared request batch.

    Pickles as metadata only — the wire payload stays in the server's
    per-request :class:`~repro.backend.shared.SharedArena` and the
    worker attaches it.
    """

    token: str
    wires: SharedBatchHandle
    row_start: int
    row_stop: int
    mode: str
    start_slot: int = 0
    limit: Optional[int] = None


@dataclass(frozen=True)
class LogicNetShardTask:
    """One logicnet serving shard: a network range of a seeded family.

    Unlike :class:`ShardTask` there is no shared payload at all — the
    input lines are the installed basis (referenced by token) and the
    networks rebuild from ``spawn_rng(seed, i)`` spawn keys, so the
    task pickles as a handful of integers.
    """

    token: str
    seed: int
    n_gates: int
    depth: int
    net_start: int
    net_stop: int


#: token → installed basis, per process.  Populated in the server
#: process before the pool forks (workers inherit it for free) and by
#: the install broadcast for pools that already exist.
_INSTALLED: Dict[str, HyperspaceBasis] = {}


def export_basis(basis: HyperspaceBasis, token: Optional[str] = None) -> BasisTable:
    """Export ``basis`` as a :class:`BasisTable` (fresh token by default)."""
    values, ptr = basis.as_batch().csr()
    return BasisTable(
        token=token if token is not None else uuid.uuid4().hex,
        labels=basis.labels,
        values=values,
        ptr=ptr,
        n_samples=basis.grid.n_samples,
        dt=basis.grid.dt,
    )


def install_basis(table: BasisTable) -> str:
    """Install ``table`` into this process's basis registry.

    Reconstruction trusts the exporting basis's orthogonality check
    (:meth:`~repro.hyperspace.basis.HyperspaceBasis._from_table`), so
    installing is cheap enough to broadcast at server start-up.
    Idempotent per token; returns the token.
    """
    if table.token not in _INSTALLED:
        grid = SimulationGrid(n_samples=table.n_samples, dt=table.dt)
        _INSTALLED[table.token] = HyperspaceBasis._from_table(
            np.asarray(table.values, dtype=np.int64),
            np.asarray(table.ptr, dtype=np.int64),
            table.labels,
            grid,
        )
    return table.token


def discard_basis(token: str) -> bool:
    """Drop one installed basis (graceful-shutdown broadcast target)."""
    return _INSTALLED.pop(token, None) is not None


def installed_basis(token: str) -> HyperspaceBasis:
    """The basis installed under ``token`` in this process."""
    basis = _INSTALLED.get(token)
    if basis is None:
        raise ServingError(
            ERR_INTERNAL,
            f"no basis installed under token {token!r} in this worker — "
            "the server must broadcast install_basis before dispatching",
        )
    return basis


def run_shard(task: ShardTask) -> dict:
    """Pool target: attach the shard's rows and compute its payload."""
    faults.maybe_fire("serving.run_shard")
    rows = SpikeTrainBatch.from_shared(
        task.wires, rows=(task.row_start, task.row_stop)
    )
    return compute_shard(
        installed_basis(task.token),
        rows,
        task.row_start,
        task.row_stop,
        mode=task.mode,
        start_slot=task.start_slot,
        limit=task.limit,
    )


def compute_shard(
    basis: HyperspaceBasis,
    rows: SpikeTrainBatch,
    row_start: int,
    row_stop: int,
    *,
    mode: str,
    start_slot: int = 0,
    limit: Optional[int] = None,
) -> dict:
    """Run one shard's receiver pass and return its payload dict.

    The common core of the pool, in-process, fast and coalesced paths.
    Array fields stay NumPy arrays (``membership`` boolean) — the
    response encoder picks the wire form at the boundary: version-2
    binary result frames ship the buffers directly, the version-1 JSON
    path converts through
    :func:`~repro.serving.protocol.jsonable_payload`.  ``rows`` is
    expected packed-primary; the payload's ``residency`` block records
    which representations the batch held *after* the pass, which is how
    the integration tests (and any auditing client) verify the bitset
    was computed on directly — ``raster`` must come back False.
    """
    faults.maybe_fire("serving.compute_shard")
    started = time.perf_counter()
    correlator = CoincidenceCorrelator(basis)
    if mode == "identify":
        outcome = correlator.identify_batch(
            rows, start_slot=start_slot, missing="none"
        )
        body = {
            "elements": outcome.elements,
            "decision_slots": outcome.decision_slots,
            "spikes_inspected": outcome.spikes_inspected,
        }
    elif mode == "membership":
        outcome = correlator.detect_members_batch(rows, until_slot=limit)
        body = {
            "membership": outcome.membership,
            "first_slots": outcome.first_slots,
        }
    else:
        raise ServingError(ERR_INTERNAL, f"unknown shard mode {mode!r}")
    body.update(
        row_start=int(row_start),
        row_stop=int(row_stop),
        wall_seconds=time.perf_counter() - started,
        residency={
            "packed": rows.packed_materialised,
            "csr": rows.csr_materialised,
            "raster": rows.raster_materialised,
        },
    )
    return body


def run_logicnet_shard(task: LogicNetShardTask) -> dict:
    """Pool target: rebuild the shard's networks and evaluate them.

    Fires the same ``serving.run_shard`` fault point as bitset shards,
    so the supervision ladder (resubmit → respawn → inline) covers
    logicnet traffic identically.
    """
    faults.maybe_fire("serving.run_shard")
    return compute_logicnet_shard(
        installed_basis(task.token),
        seed=task.seed,
        n_gates=task.n_gates,
        depth=task.depth,
        net_start=task.net_start,
        net_stop=task.net_stop,
    )


def compute_logicnet_shard(
    basis: HyperspaceBasis,
    *,
    seed: int,
    n_gates: int,
    depth: int,
    net_start: int,
    net_stop: int,
) -> dict:
    """Evaluate networks ``[net_start, net_stop)`` against ``basis``.

    The common core of the pool and in-process logicnet paths.  The
    basis batch's packed words are the shared input lines (one per
    basis element); the shard's networks rebuild from their spawn keys,
    so equal tasks produce equal payloads in any process.  As with
    :func:`compute_shard`, the ``residency`` block records the input
    batch's representations after the pass — ``raster`` must come back
    False, proving the layer evaluation ran on packed words.
    """
    faults.maybe_fire("serving.compute_shard")
    started = time.perf_counter()
    inputs = basis.as_batch()
    nets = LogicNetBatch.random(
        net_stop - net_start,
        n_gates,
        depth,
        inputs.n_trains,
        seed,
        net_start=net_start,
    )
    popcounts, checksums = nets.evaluate(
        inputs.packed_words(), inputs.grid.n_samples
    )
    return {
        "popcounts": popcounts,
        "checksums": checksums,
        "row_start": int(net_start),
        "row_stop": int(net_stop),
        "wall_seconds": time.perf_counter() - started,
        "residency": {
            "packed": inputs.packed_materialised,
            "csr": inputs.csr_materialised,
            "raster": inputs.raster_materialised,
        },
    }
