"""Multi-worker serving: N server processes behind one listener.

``repro serve --workers N`` forks N full :class:`~repro.serving.server.
SpikeServer` processes from one parent.  The parent does the expensive,
shared work exactly once before forking:

* it builds the serving basis and exports it into a cluster-lifetime
  :class:`~repro.backend.shared.SharedArena`; every worker *attaches*
  the same read-only pages
  (:meth:`~repro.hyperspace.basis.HyperspaceBasis.from_artifact`)
  instead of re-running the synthesis pipeline;
* it binds N ``SO_REUSEPORT`` sockets on **one** concrete port, so the
  kernel load-balances incoming connections across the workers with no
  user-space hop.  Hosts without ``SO_REUSEPORT`` (or callers forcing
  it) get the fallback: a tiny asyncio front proxy in the parent that
  round-robins connections to per-worker loopback ports — same
  topology, one extra byte-splice;
* it allocates one fork-inherited :class:`ClusterStatsBlock` — a
  shared counter matrix plus per-worker latency rings.  Each worker's
  :class:`WorkerStats` mirrors every :class:`~repro.serving.server.
  ServerStats` update into its own row (single writer per row, no
  locks), and *any* worker can answer a cluster-scope ``STATS``
  request by summing the block — the aggregated reply documented in
  ``docs/protocol.md``.

Shutdown is coordinated: the parent signals every worker, each worker
runs its own graceful :meth:`~repro.serving.server.SpikeServer.close`
(drain in-flight requests, release pool attachments), the parent joins
them all, and **only then** unlinks the startup arena — a worker never
sees its basis pages disappear mid-drain.

Embedding (tests and the ``--workers 2`` bench) uses
:class:`ServerCluster` directly; the blocking CLI path is
:func:`serve_cluster`.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import os
import signal
import socket
import sys
import threading
from dataclasses import replace
from typing import List, Optional

import numpy as np

from ..backend.shared import SharedArena
from ..errors import ServingError
from ..hyperspace.basis import BasisArtifact, HyperspaceBasis
from . import log, protocol
from .server import ServerConfig, ServerStats, SpikeServer, build_serving_basis

__all__ = [
    "ClusterStatsBlock",
    "WorkerStats",
    "ServerCluster",
    "serve_cluster",
]

#: Fork start method: workers must inherit the pre-bound sockets, the
#: attached basis artifact metadata and the stats block by address
#: space, not by pickle.
_MP = multiprocessing.get_context("fork")

#: Columns of the shared counter matrix, in ServerStats field order.
_COUNTER_FIELDS = (
    "requests_served",
    "fast_path_requests",
    "pool_path_requests",
    "coalesced_requests",
    "coalesced_batches",
    "errors",
)

#: True when the kernel can fan one port out to many listeners.
HAVE_REUSEPORT = hasattr(socket, "SO_REUSEPORT")


class ClusterStatsBlock:
    """Fork-shared per-worker counters and latency rings.

    One int64 row of :data:`_COUNTER_FIELDS` per worker plus a float64
    latency ring (write position in ``positions``), all backed by
    anonymous shared mappings (``multiprocessing.RawArray``) that every
    forked worker inherits writable.  Each worker writes only its own
    row — the single-writer discipline that makes the lock-free
    aggregation sound — and any process may :meth:`aggregate`.
    """

    def __init__(self, workers: int, window: int = 1024) -> None:
        if workers < 1:
            raise ServingError(
                protocol.ERR_INTERNAL, f"workers must be >= 1, got {workers}"
            )
        self.workers = int(workers)
        self.window = int(window)
        self._counters_raw = _MP.RawArray("q", self.workers * len(_COUNTER_FIELDS))
        self._latencies_raw = _MP.RawArray("d", self.workers * self.window)
        self._positions_raw = _MP.RawArray("q", self.workers)
        self._pids_raw = _MP.RawArray("q", self.workers)
        self._ports_raw = _MP.RawArray("q", self.workers)
        self._respawns_raw = _MP.RawArray("q", 1)
        self.counters = np.frombuffer(self._counters_raw, dtype=np.int64).reshape(
            self.workers, len(_COUNTER_FIELDS)
        )
        self.latencies = np.frombuffer(
            self._latencies_raw, dtype=np.float64
        ).reshape(self.workers, self.window)
        self.positions = np.frombuffer(self._positions_raw, dtype=np.int64)
        self.pids = np.frombuffer(self._pids_raw, dtype=np.int64)
        # Workers publish their accepting port here after start (the
        # proxy fallback reads it *live*, so a respawned worker's new
        # port takes effect; informational under SO_REUSEPORT).
        self.ports = np.frombuffer(self._ports_raw, dtype=np.int64)
        # How many worker respawns the supervisor performed, cluster
        # lifetime.  Written by the parent's monitor thread, read by
        # any worker answering a cluster-scope STATS request.
        self.respawns = np.frombuffer(self._respawns_raw, dtype=np.int64)

    def record_latency(self, index: int, seconds: float) -> None:
        """Push one request wall time onto worker ``index``'s ring."""
        pos = int(self.positions[index])
        self.latencies[index, pos % self.window] = float(seconds)
        self.positions[index] = pos + 1

    def _pooled_latencies(self) -> np.ndarray:
        """Every valid ring entry across workers, as one array."""
        parts = []
        for index in range(self.workers):
            valid = min(int(self.positions[index]), self.window)
            if valid:
                parts.append(np.asarray(self.latencies[index, :valid]))
        if not parts:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(parts)

    def aggregate(self) -> dict:
        """The cluster-wide STATS payload.

        Same counter keys as a single server's snapshot (summed), with
        latency quantiles over the pooled rings, plus the additive
        cluster keys ``scope``/``workers``/``per_worker`` — clients
        already tolerate unknown STATS keys, so a version-2 client
        pointed at a cluster just sees bigger numbers.
        """
        counters = self.counters.copy()
        totals = counters.sum(axis=0)
        pooled = self._pooled_latencies()
        payload = {"kind": "stats"}
        payload.update(
            {
                field: int(totals[column])
                for column, field in enumerate(_COUNTER_FIELDS)
            }
        )
        payload.update(
            {
                "latency_window": int(pooled.size),
                "latency_p50_seconds": (
                    float(np.quantile(pooled, 0.50)) if pooled.size else None
                ),
                "latency_p99_seconds": (
                    float(np.quantile(pooled, 0.99)) if pooled.size else None
                ),
                "scope": "cluster",
                "workers": self.workers,
                "respawns": int(self.respawns[0]),
                "per_worker": [
                    dict(
                        {"pid": int(self.pids[index])},
                        **{
                            field: int(counters[index, column])
                            for column, field in enumerate(_COUNTER_FIELDS)
                        },
                    )
                    for index in range(self.workers)
                ],
            }
        )
        return payload

    def summary(self) -> str:
        """One human line for the cluster shutdown log."""
        stats = self.aggregate()
        p50 = stats["latency_p50_seconds"]
        p99 = stats["latency_p99_seconds"]
        latency = (
            f"p50={p50 * 1e3:.2f}ms p99={p99 * 1e3:.2f}ms "
            f"over last {stats['latency_window']}"
            if p50 is not None
            else "no latency samples"
        )
        return (
            f"served {stats['requests_served']} requests across "
            f"{stats['workers']} workers "
            f"({stats['fast_path_requests']} fast-path, "
            f"{stats['pool_path_requests']} pool, "
            f"{stats['coalesced_requests']} coalesced in "
            f"{stats['coalesced_batches']} batches), "
            f"{stats['errors']} errors, {stats['respawns']} worker "
            f"respawn(s), {latency}"
        )


class WorkerStats(ServerStats):
    """A :class:`ServerStats` mirroring into one stats-block row.

    The server updates its stats three ways — :meth:`record`, and
    direct ``+= 1`` bumps of ``errors`` and ``coalesced_batches`` — so
    every counter is a property backed by this worker's row of the
    shared block: any mutation path lands in shared memory without the
    server knowing it runs clustered.  The latency deque stays local
    (it feeds the *local*-scope snapshot); :meth:`record` additionally
    pushes onto the shared ring for cluster aggregation.

    ``preserve=True`` (a *respawned* worker taking over a dead
    sibling's row) skips the counter zeroing in
    :meth:`~repro.serving.server.ServerStats._reset_counters` — the
    predecessor's served-request counts survive the crash, keeping the
    cluster-wide STATS aggregate monotonic across respawns.
    """

    def __init__(
        self,
        block: ClusterStatsBlock,
        index: int,
        *,
        preserve: bool = False,
    ) -> None:
        self._block = block
        self._index = int(index)
        self._preserve = bool(preserve)
        super().__init__(window=block.window)

    def _reset_counters(self) -> None:
        if self._preserve:
            return
        super()._reset_counters()

    def record(self, transport: str, seconds: float) -> None:
        super().record(transport, seconds)
        self._block.record_latency(self._index, seconds)


def _counter_property(column: int):
    def getter(self: WorkerStats) -> int:
        return int(self._block.counters[self._index, column])

    def setter(self: WorkerStats, value: int) -> None:
        self._block.counters[self._index, column] = int(value)

    return property(getter, setter)


for _column, _field in enumerate(_COUNTER_FIELDS):
    setattr(WorkerStats, _field, _counter_property(_column))
del _column, _field


def _reuseport_sockets(host: str, port: int, count: int) -> List[socket.socket]:
    """``count`` sockets bound to one ``(host, port)`` via SO_REUSEPORT.

    With ``port == 0`` the first bind picks the ephemeral port and the
    rest join it.  Every socket must exist before the first worker
    forks, so each worker inherits (and keeps exactly) its own.
    """
    sockets: List[socket.socket] = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((host, port))
            if port == 0:
                port = sock.getsockname()[1]
            sockets.append(sock)
    except BaseException:
        for sock in sockets:
            sock.close()
        raise
    return sockets


def _worker_main(
    index: int,
    config: ServerConfig,
    artifact: BasisArtifact,
    sockets: Optional[List[socket.socket]],
    block: ClusterStatsBlock,
    ready,
    preserve_stats: bool = False,
) -> None:
    """Process entry of worker ``index`` (runs in the forked child)."""
    sock = None
    if sockets is not None:
        # Each worker serves exactly one of the pre-bound listeners;
        # the sibling fds close here so this child cannot accept a
        # connection the kernel hashed to another worker's socket.
        # (The *parent* keeps every fd open on purpose — same kernel
        # socket, never accepted on — so a respawned child can inherit
        # the dead worker's listener and drain what queued on it.)
        sock = sockets[index]
        for other_index, other in enumerate(sockets):
            if other_index != index:
                other.close()
    log.configure()  # rebind the handler to this pid
    try:
        asyncio.run(
            _worker_serve(
                index, config, artifact, sock, block, ready, preserve_stats
            )
        )
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass


async def _worker_serve(
    index: int,
    config: ServerConfig,
    artifact: BasisArtifact,
    sock: Optional[socket.socket],
    block: ClusterStatsBlock,
    ready,
    preserve_stats: bool = False,
) -> None:
    """One worker's lifetime: attach, serve until signalled, drain."""
    logger = log.get_logger("worker")
    basis = HyperspaceBasis.from_artifact(artifact)
    server = SpikeServer(
        config,
        sock=sock,
        stats=WorkerStats(block, index, preserve=preserve_stats),
        stats_aggregator=block.aggregate,
        basis=basis,
    )
    await server.start()
    block.pids[index] = os.getpid()
    block.ports[index] = server.port
    ready.set()
    logger.debug("worker %d: accepting on port %d", index, server.port)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    try:
        await stop.wait()
    finally:
        await server.close()
        logger.info("worker %d: %s", index, server.stats.summary())


class _FrontProxy:
    """Asyncio round-robin TCP splice — the no-SO_REUSEPORT fallback.

    Listens on the public ``(host, port)`` in a daemon thread and
    splices each accepted connection to the next worker's loopback
    port.  Purely byte-level: the REPB framing passes through intact,
    so a proxied cluster behaves exactly like a reuseport one (plus
    one copy per chunk).

    ``targets`` is the cluster's **live** shared port table
    (:attr:`ClusterStatsBlock.ports`), not a frozen copy: a respawned
    worker rebinds an ephemeral port and publishes it to the table, and
    the proxy's next pick reads the new value.  A refused connect (the
    gap between a worker dying and its replacement publishing) rotates
    to the next worker instead of dropping the client.
    """

    def __init__(self, host: str, port: int, targets) -> None:
        self._host = host
        self._port = port
        self._ports = targets
        self._rr = itertools.count()
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.port: Optional[int] = None

    def start(self) -> "_FrontProxy":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-serve-proxy",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise ServingError(
                protocol.ERR_INTERNAL, "front proxy failed to start in 30s"
            )
        if self._startup_error is not None:
            raise self._startup_error
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle, self._host, self._port
            )
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            self._startup_error = exc
            self._ready.set()
            return
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        up_reader = up_writer = None
        for _ in range(max(1, len(self._ports))):
            target = int(self._ports[next(self._rr) % len(self._ports)])
            try:
                up_reader, up_writer = await asyncio.open_connection(
                    "127.0.0.1", target
                )
                break
            except OSError:
                continue  # dead worker's port: rotate to a live sibling
        if up_writer is None:
            writer.close()
            return
        try:
            await asyncio.gather(
                self._pump(reader, up_writer), self._pump(up_reader, writer)
            )
        except asyncio.CancelledError:
            pass  # proxy shutting down with the splice still open
        finally:
            for stream in (writer, up_writer):
                stream.close()

    @staticmethod
    async def _pump(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                chunk = await reader.read(1 << 16)
                if not chunk:
                    break
                writer.write(chunk)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            # Half-close so a client's EOF reaches the worker (and the
            # worker's final frames still flow back the other way).
            try:
                if writer.can_write_eof():
                    writer.write_eof()
            except (OSError, RuntimeError):
                pass

    def close(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            return
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30.0)


class ServerCluster:
    """N forked :class:`SpikeServer` processes behind one address.

    Usable embedded (tests, the bench) or from :func:`serve_cluster`::

        with ServerCluster(ServerConfig(workers=2, ...)) as cluster:
            client = ServingClient(cluster.host, cluster.port)
            ...

    ``force_proxy=True`` exercises the front-proxy fallback even where
    ``SO_REUSEPORT`` exists (how the fallback stays tested on Linux).
    """

    def __init__(
        self,
        config: ServerConfig,
        workers: Optional[int] = None,
        *,
        force_proxy: bool = False,
    ) -> None:
        self.config = config
        self.workers = int(workers if workers is not None else config.workers)
        if self.workers < 1:
            raise ServingError(
                protocol.ERR_INTERNAL,
                f"workers must be >= 1, got {self.workers}",
            )
        self._use_reuseport = HAVE_REUSEPORT and not force_proxy
        self._arena: Optional[SharedArena] = None
        self._processes: List = []
        self._parent_sockets: List[socket.socket] = []
        self._proxy: Optional[_FrontProxy] = None
        self._port: Optional[int] = None
        self.block = ClusterStatsBlock(self.workers)
        # Respawn machinery: the spawn inputs outlive start() so the
        # monitor thread can fork a replacement worker at any time.
        self._worker_config: Optional[ServerConfig] = None
        self._artifact: Optional[BasisArtifact] = None
        self._sockets: Optional[List[socket.socket]] = None
        self._monitor: Optional[threading.Thread] = None
        self._closing = threading.Event()

    @property
    def host(self) -> str:
        """The public bind host."""
        return self.config.host

    @property
    def port(self) -> int:
        """The one public port every worker is reachable through."""
        if self._port is None:
            raise ServingError(protocol.ERR_INTERNAL, "cluster not started")
        return self._port

    def _spawn_worker(self, index: int, *, preserve_stats: bool = False):
        """Fork worker ``index`` and return its readiness event.

        Used both at start-up and by the monitor thread respawning a
        crashed worker: a respawn re-forks from the parent, so the
        child re-inherits the pre-fork basis arena pages, its stats-row
        (preserved, not zeroed) and — under ``SO_REUSEPORT`` — the dead
        worker's still-open listener fd.
        """
        ready = _MP.Event()
        process = _MP.Process(
            target=_worker_main,
            args=(
                index,
                self._worker_config,
                self._artifact,
                self._sockets,
                self.block,
                ready,
                preserve_stats,
            ),
            name=f"repro-serve-worker-{index}",
            daemon=True,
        )
        process.start()
        return process, ready

    def start(self, ready_timeout: float = 120.0) -> "ServerCluster":
        """Build shared state, fork the workers, wait for readiness."""
        self._arena = SharedArena()
        self._closing.clear()
        try:
            basis = build_serving_basis(self.config)
            self._artifact = basis.to_artifact(self._arena)
            self._worker_config = replace(self.config, workers=1)
            if self._use_reuseport:
                self._sockets = _reuseport_sockets(
                    self.config.host, self.config.port, self.workers
                )
                # The parent keeps its fds open for the cluster's whole
                # life: they are the same kernel sockets the children
                # accept on (never accepted on here), and a respawned
                # child can only inherit a listener that still exists.
                self._parent_sockets = list(self._sockets)
                self._port = self._sockets[0].getsockname()[1]
            else:
                self._worker_config = replace(
                    self._worker_config, host="127.0.0.1", port=0
                )
            events = []
            for index in range(self.workers):
                process, ready = self._spawn_worker(index)
                self._processes.append(process)
                events.append(ready)
            for index, event in enumerate(events):
                if not event.wait(timeout=ready_timeout):
                    raise ServingError(
                        protocol.ERR_INTERNAL,
                        f"worker {index} failed to start within "
                        f"{ready_timeout:.0f}s",
                    )
            if not self._use_reuseport:
                self._proxy = _FrontProxy(
                    self.config.host,
                    self.config.port,
                    self.block.ports,
                ).start()
                self._port = self._proxy.port
            self._monitor = threading.Thread(
                target=self._monitor_loop,
                name="repro-serve-monitor",
                daemon=True,
            )
            self._monitor.start()
        except BaseException:
            self.close()
            raise
        return self

    def _monitor_loop(self, poll_interval: float = 0.2) -> None:
        """Supervise the workers: respawn any that die unexpectedly.

        Runs in a parent daemon thread.  A worker exiting while the
        cluster is not shutting down (crash, OOM kill, SIGKILL) is
        replaced at the same index — re-forked from the parent so it
        re-attaches the pre-fork basis arena and takes over the dead
        worker's stats row without zeroing it.  Every respawn bumps the
        shared ``respawns`` counter that cluster STATS reports.
        """
        logger = log.get_logger("cluster")
        while not self._closing.wait(poll_interval):
            for index, process in enumerate(self._processes):
                if process.is_alive() or self._closing.is_set():
                    continue
                logger.warning(
                    "worker %d (pid %s) died with exitcode %s; respawning",
                    index,
                    process.pid,
                    process.exitcode,
                )
                replacement, ready = self._spawn_worker(
                    index, preserve_stats=True
                )
                self._processes[index] = replacement
                self.block.respawns[0] += 1
                if not ready.wait(timeout=60.0):
                    logger.error(
                        "respawned worker %d failed to become ready in 60s",
                        index,
                    )
                else:
                    logger.info(
                        "worker %d respawned as pid %d (port %d)",
                        index,
                        replacement.pid,
                        int(self.block.ports[index]),
                    )

    def aggregate(self) -> dict:
        """The cluster-wide STATS payload (parent-side convenience)."""
        return self.block.aggregate()

    def close(self, join_timeout: float = 60.0) -> dict:
        """Coordinated shutdown; returns the final aggregated stats.

        Order matters: stop supervising (or the monitor would respawn
        the workers being shut down), stop admitting (proxy first,
        where present), signal every worker, let each drain gracefully,
        join them all, and only then unlink the startup arena the
        workers' bases were attached to.
        """
        self._closing.set()
        if self._monitor is not None:
            self._monitor.join(timeout=30.0)
            self._monitor = None
        if self._proxy is not None:
            self._proxy.close()
            self._proxy = None
        for process in self._processes:
            if process.is_alive() and process.pid is not None:
                try:
                    os.kill(process.pid, signal.SIGTERM)
                except ProcessLookupError:  # pragma: no cover - exited
                    pass
        for process in self._processes:
            process.join(timeout=join_timeout)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5.0)
        self._processes = []
        # The kept listener fds close only now, with every worker gone.
        for sock in self._parent_sockets:
            sock.close()
        self._parent_sockets = []
        self._sockets = None
        stats = self.block.aggregate()
        if self._arena is not None:
            self._arena.close()
            self._arena = None
        return stats

    def __enter__(self) -> "ServerCluster":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def serve_cluster(config: ServerConfig, out=sys.stdout) -> int:
    """Blocking multi-worker entry behind ``repro serve --workers N``."""
    logger = log.configure(stream=out)
    cluster = ServerCluster(config)
    cluster.start()
    logger.info(
        "repro serve: listening on %s:%d (M=%d, n_samples=%d, jobs=%d, "
        "seed=%d, workers=%d)",
        cluster.host,
        cluster.port,
        config.basis_size,
        config.n_samples,
        config.jobs,
        config.seed,
        cluster.workers,
    )
    stop = threading.Event()

    def _on_signal(signum, frame) -> None:  # noqa: ARG001 - signal API
        stop.set()

    previous = {
        signum: signal.signal(signum, _on_signal)
        for signum in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        stop.wait()
    except KeyboardInterrupt:  # pragma: no cover - double Ctrl-C
        pass
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        logger.info("repro serve: shutting down")
        cluster.close()
        logger.info("repro serve: %s", cluster.block.summary())
    return 0
