"""The packed-bitset wire protocol: versioned, length-prefixed frames.

The serving front-end (:mod:`repro.serving.server`) and the reference
client (:mod:`repro.serving.client`) speak a small binary protocol
whose request payload *is* the compute representation: the
``np.packbits`` bitset of a :class:`~repro.backend.batch.SpikeTrainBatch`
(N wires × ``ceil(n_samples / 8)`` bytes, MSB-first within each byte —
slot ``k`` of a row is bit ``7 - (k % 8)`` of byte ``k // 8``).  A
server therefore never parses, sorts or unpacks spike indices at the
boundary — it wraps the payload with
:meth:`~repro.backend.batch.SpikeTrainBatch.from_packed` and the batch
stays packed-primary all the way through shared-memory dispatch and the
packed kernels.

Framing (all integers little-endian)::

    u32 length | 16-byte frame header | payload (length - 16 bytes)

The frame header is ``magic "REPB" | version u8 | type u8 | flags u16 |
request_id u32 | reserved u32``.  Requests carry a fixed 28-byte
request header (wire counts, grid geometry, scan options) followed by
the bitset; responses carry UTF-8 JSON.  The byte-level layout, the
versioning rules and the error codes are documented in
``docs/protocol.md`` — this module is their single executable source.

Version policy: ``PROTOCOL_VERSION`` bumps on any incompatible header
or payload change; a decoder rejects frames whose version it does not
implement with :data:`ERR_BAD_VERSION` (the magic never changes, so a
version mismatch is always reportable).  ``flags`` and the ``reserved``
fields must be zero in version 1.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..backend import packed as packed_kernels
from ..errors import ProtocolError
from ..units import SimulationGrid

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "FRAME_IDENTIFY",
    "FRAME_MEMBERSHIP",
    "FRAME_SHARD",
    "FRAME_DONE",
    "FRAME_ERROR",
    "LIMIT_FULL",
    "DEFAULT_MAX_FRAME_BYTES",
    "ERR_BAD_MAGIC",
    "ERR_BAD_VERSION",
    "ERR_BAD_FRAME",
    "ERR_FRAME_TOO_LARGE",
    "ERR_BAD_TYPE",
    "ERR_BAD_GRID",
    "ERR_OVERLOADED",
    "ERR_INTERNAL",
    "ERROR_NAMES",
    "Frame",
    "Request",
    "FrameReader",
    "encode_frame",
    "encode_request",
    "parse_request",
    "encode_json_frame",
    "parse_json_frame",
    "encode_error",
    "request_nbytes",
]

#: First four bytes of every frame body ("REpro Packed Bitset").
MAGIC = b"REPB"

#: Current protocol version; bumped on incompatible layout changes.
PROTOCOL_VERSION = 1

# Frame types.  Requests sit below 0x80, responses at or above it, so a
# misdirected frame is caught by the type check rather than a payload
# parse.
FRAME_IDENTIFY = 0x01
FRAME_MEMBERSHIP = 0x02
FRAME_SHARD = 0x81
FRAME_DONE = 0x82
FRAME_ERROR = 0xFF

_REQUEST_TYPES = (FRAME_IDENTIFY, FRAME_MEMBERSHIP)
_RESPONSE_TYPES = (FRAME_SHARD, FRAME_DONE, FRAME_ERROR)

_MODE_BY_TYPE = {FRAME_IDENTIFY: "identify", FRAME_MEMBERSHIP: "membership"}
_TYPE_BY_MODE = {mode: ftype for ftype, mode in _MODE_BY_TYPE.items()}

#: ``limit`` sentinel meaning "the whole grid" (membership requests).
LIMIT_FULL = 0xFFFFFFFF

#: Default per-frame size cap (header + payload).  At the paper grid
#: (65536 slots → 8 KiB/wire) this admits ~8k wires per request.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

# Error codes (the ``code`` field of an error frame's JSON payload).
ERR_BAD_MAGIC = 1
ERR_BAD_VERSION = 2
ERR_BAD_FRAME = 3
ERR_FRAME_TOO_LARGE = 4
ERR_BAD_TYPE = 5
ERR_BAD_GRID = 6
ERR_OVERLOADED = 7
ERR_INTERNAL = 8

#: code → symbolic name, echoed in error payloads for human readers.
ERROR_NAMES: Dict[int, str] = {
    ERR_BAD_MAGIC: "BAD_MAGIC",
    ERR_BAD_VERSION: "BAD_VERSION",
    ERR_BAD_FRAME: "BAD_FRAME",
    ERR_FRAME_TOO_LARGE: "FRAME_TOO_LARGE",
    ERR_BAD_TYPE: "BAD_TYPE",
    ERR_BAD_GRID: "BAD_GRID",
    ERR_OVERLOADED: "OVERLOADED",
    ERR_INTERNAL: "INTERNAL",
}

#: ``u32 length`` prefix framing each body.
_LENGTH = struct.Struct("<I")

#: Frame header: magic, version, type, flags, request_id, reserved.
_HEADER = struct.Struct("<4sBBHII")

#: Request header: n_wires, n_samples, dt, start_slot, limit,
#: n_shards, reserved.
_REQUEST = struct.Struct("<IIdIIHH")

HEADER_BYTES = _HEADER.size  # 16
REQUEST_HEADER_BYTES = _REQUEST.size  # 28


@dataclass(frozen=True)
class Frame:
    """One decoded frame: header fields plus the raw payload bytes."""

    version: int
    frame_type: int
    request_id: int
    payload: bytes
    flags: int = 0


@dataclass(frozen=True)
class Request:
    """A parsed request frame.

    ``packed`` is a read-only ``(n_wires, ceil(n_samples / 8))``
    ``uint8`` view of the frame's payload bytes — parsing allocates no
    array and copies nothing.
    """

    mode: str
    request_id: int
    packed: np.ndarray
    n_samples: int
    dt: float
    start_slot: int
    limit: Optional[int]
    n_shards: int

    @property
    def n_wires(self) -> int:
        """Number of wire rows in the payload."""
        return int(self.packed.shape[0])

    def grid(self) -> SimulationGrid:
        """The simulation grid the payload claims to live on."""
        return SimulationGrid(n_samples=self.n_samples, dt=self.dt)


def request_nbytes(n_wires: int, n_samples: int) -> int:
    """Total frame-body bytes of a request with the given dimensions."""
    return (
        HEADER_BYTES
        + REQUEST_HEADER_BYTES
        + n_wires * packed_kernels.n_packed_bytes(n_samples)
    )


def encode_frame(
    frame_type: int,
    request_id: int,
    payload: bytes,
    *,
    version: int = PROTOCOL_VERSION,
) -> bytes:
    """Assemble one length-prefixed frame from its parts."""
    if not (0 <= request_id < 2**32):
        raise ProtocolError(
            ERR_BAD_FRAME, f"request_id {request_id} outside uint32"
        )
    header = _HEADER.pack(MAGIC, version, frame_type, 0, request_id, 0)
    return _LENGTH.pack(len(header) + len(payload)) + header + payload


def encode_request(
    packed: np.ndarray,
    n_samples: int,
    dt: float,
    *,
    mode: str = "identify",
    start_slot: int = 0,
    limit: Optional[int] = None,
    n_shards: int = 0,
    request_id: int = 0,
) -> bytes:
    """Encode one request frame around an ``np.packbits`` bitset.

    ``packed`` must already be the ``(N, ceil(n_samples / 8))``
    ``uint8`` transport form (e.g.
    :meth:`~repro.backend.batch.SpikeTrainBatch.packbits`); the encoder
    frames it verbatim — no per-spike work, no unpacking.  ``n_shards``
    0 asks the server to use its own default; ``limit`` bounds a
    membership scan (None: the whole grid).
    """
    if mode not in _TYPE_BY_MODE:
        raise ProtocolError(ERR_BAD_TYPE, f"unknown request mode {mode!r}")
    packed = np.ascontiguousarray(packed, dtype=np.uint8)
    n_bytes = packed_kernels.n_packed_bytes(n_samples)
    if packed.ndim != 2 or packed.shape[1] != n_bytes:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"packed shape {packed.shape} does not match "
            f"(N, {n_bytes}) for {n_samples} samples",
        )
    if packed.shape[0] < 1:
        raise ProtocolError(ERR_BAD_FRAME, "a request needs at least one wire")
    if not (0 <= start_slot <= n_samples):
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"start_slot {start_slot} outside grid of {n_samples} samples",
        )
    wire_limit = LIMIT_FULL if limit is None else int(limit)
    if not (0 <= wire_limit <= LIMIT_FULL):
        raise ProtocolError(ERR_BAD_FRAME, f"limit {limit} outside uint32")
    if not (0 <= n_shards < 2**16):
        raise ProtocolError(ERR_BAD_FRAME, f"n_shards {n_shards} outside uint16")
    body = _REQUEST.pack(
        packed.shape[0], n_samples, float(dt), start_slot, wire_limit,
        n_shards, 0,
    )
    return encode_frame(
        _TYPE_BY_MODE[mode], request_id, body + packed.tobytes()
    )


def parse_request(frame: Frame) -> Request:
    """Parse (and validate) one request frame.

    Rejects truncated payloads, trailing bytes, zero-wire requests and
    impossible grids — the exact payload length is implied by the
    request header, so any mismatch is :data:`ERR_BAD_FRAME`.
    """
    if frame.frame_type not in _REQUEST_TYPES:
        raise ProtocolError(
            ERR_BAD_TYPE,
            f"frame type 0x{frame.frame_type:02x} is not a request",
        )
    if len(frame.payload) < REQUEST_HEADER_BYTES:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"request payload truncated: {len(frame.payload)} bytes "
            f"< {REQUEST_HEADER_BYTES}-byte request header",
        )
    n_wires, n_samples, dt, start_slot, limit, n_shards, reserved = (
        _REQUEST.unpack_from(frame.payload)
    )
    if reserved != 0:
        raise ProtocolError(
            ERR_BAD_FRAME, "reserved request-header field must be zero"
        )
    if n_wires < 1:
        raise ProtocolError(ERR_BAD_FRAME, "a request needs at least one wire")
    if n_samples < 1 or not (dt > 0.0) or not np.isfinite(dt):
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"impossible grid: n_samples={n_samples}, dt={dt}",
        )
    if start_slot > n_samples:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"start_slot {start_slot} outside grid of {n_samples} samples",
        )
    n_bytes = packed_kernels.n_packed_bytes(n_samples)
    expected = REQUEST_HEADER_BYTES + n_wires * n_bytes
    if len(frame.payload) != expected:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"payload is {len(frame.payload)} bytes, expected {expected} "
            f"for {n_wires} wires x {n_bytes} packed bytes",
        )
    packed = np.frombuffer(
        frame.payload, dtype=np.uint8, offset=REQUEST_HEADER_BYTES
    ).reshape(n_wires, n_bytes)
    return Request(
        mode=_MODE_BY_TYPE[frame.frame_type],
        request_id=frame.request_id,
        packed=packed,
        n_samples=int(n_samples),
        dt=float(dt),
        start_slot=int(start_slot),
        limit=None if limit == LIMIT_FULL else int(limit),
        n_shards=int(n_shards),
    )


def encode_json_frame(frame_type: int, request_id: int, obj) -> bytes:
    """Encode one response frame whose payload is UTF-8 JSON."""
    if frame_type not in _RESPONSE_TYPES:
        raise ProtocolError(
            ERR_BAD_TYPE, f"frame type 0x{frame_type:02x} is not a response"
        )
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    return encode_frame(frame_type, request_id, payload)


def parse_json_frame(frame: Frame) -> dict:
    """Decode a response frame's JSON payload."""
    if frame.frame_type not in _RESPONSE_TYPES:
        raise ProtocolError(
            ERR_BAD_TYPE,
            f"frame type 0x{frame.frame_type:02x} is not a response",
        )
    try:
        obj = json.loads(frame.payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(
            ERR_BAD_FRAME, f"undecodable JSON payload: {exc}"
        ) from None
    if not isinstance(obj, dict):
        raise ProtocolError(ERR_BAD_FRAME, "response payload must be an object")
    return obj


def encode_error(request_id: int, code: int, message: str) -> bytes:
    """Encode one error frame (JSON ``{code, error, message}``)."""
    return encode_json_frame(
        FRAME_ERROR,
        request_id,
        {
            "code": int(code),
            "error": ERROR_NAMES.get(int(code), "UNKNOWN"),
            "message": str(message),
        },
    )


class FrameReader:
    """Incremental frame decoder over a byte stream.

    Feed it whatever the transport delivers; it buffers partial frames
    and returns each complete :class:`Frame` exactly once.  Framing
    violations (bad magic, unsupported version, nonzero reserved
    fields, a declared length below the header size or above
    ``max_frame_bytes``) raise :class:`~repro.errors.ProtocolError`
    immediately — after a framing error the stream boundary is lost and
    the connection must be dropped, which is why these are errors and
    not skipped frames.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        if max_frame_bytes < HEADER_BYTES:
            raise ProtocolError(
                ERR_BAD_FRAME,
                f"max_frame_bytes must be >= {HEADER_BYTES}, "
                f"got {max_frame_bytes}",
            )
        self.max_frame_bytes = int(max_frame_bytes)
        self._buffer = bytearray()
        self._poisoned: Optional[ProtocolError] = None

    @property
    def buffered_bytes(self) -> int:
        """Bytes held waiting for the rest of a frame."""
        return len(self._buffer)

    @property
    def pending_error(self) -> Optional["ProtocolError"]:
        """The deferred framing error, if the stream is poisoned.

        Set when :meth:`feed` swallowed a violation to hand back the
        frames completed before it; consumers that want to fail fast
        (the server answers the error without waiting for more bytes)
        check this after draining a chunk's frames.
        """
        return self._poisoned

    def feed(self, data: bytes) -> List[Frame]:
        """Buffer ``data`` and return every frame it completed.

        When a chunk completes good frames *and then* hits a framing
        violation, the good frames are returned first and the error is
        raised by the next call — a pipelining peer's valid requests
        must not vanish because a later frame in the same TCP segment
        was corrupt.
        """
        if self._poisoned is not None:
            raise self._poisoned
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            try:
                frame = self._next_frame()
            except ProtocolError as exc:
                if frames:
                    self._poisoned = exc
                    return frames
                raise
            if frame is None:
                return frames
            frames.append(frame)

    def _next_frame(self) -> Optional[Frame]:
        """Pop one complete frame off the buffer, or None to wait."""
        if len(self._buffer) < _LENGTH.size:
            return None
        (length,) = _LENGTH.unpack_from(self._buffer)
        if length < HEADER_BYTES:
            raise ProtocolError(
                ERR_BAD_FRAME,
                f"declared frame length {length} is below the "
                f"{HEADER_BYTES}-byte header",
            )
        if length > self.max_frame_bytes:
            raise ProtocolError(
                ERR_FRAME_TOO_LARGE,
                f"declared frame length {length} exceeds the "
                f"{self.max_frame_bytes}-byte cap",
            )
        if len(self._buffer) < _LENGTH.size + length:
            return None
        body = bytes(self._buffer[_LENGTH.size : _LENGTH.size + length])
        del self._buffer[: _LENGTH.size + length]
        magic, version, frame_type, flags, request_id, reserved = (
            _HEADER.unpack_from(body)
        )
        if magic != MAGIC:
            raise ProtocolError(
                ERR_BAD_MAGIC, f"bad magic {magic!r} (expected {MAGIC!r})"
            )
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                ERR_BAD_VERSION,
                f"unsupported protocol version {version} "
                f"(this build speaks {PROTOCOL_VERSION})",
            )
        if flags != 0 or reserved != 0:
            raise ProtocolError(
                ERR_BAD_FRAME,
                "reserved header fields must be zero in version 1",
            )
        return Frame(
            version=version,
            frame_type=frame_type,
            request_id=request_id,
            payload=body[HEADER_BYTES:],
            flags=flags,
        )
