"""The packed-bitset wire protocol: versioned, length-prefixed frames.

The serving front-end (:mod:`repro.serving.server`) and the reference
client (:mod:`repro.serving.client`) speak a small binary protocol
whose request payload *is* the compute representation: the
``np.packbits`` bitset of a :class:`~repro.backend.batch.SpikeTrainBatch`
(N wires × ``ceil(n_samples / 8)`` bytes, MSB-first within each byte —
slot ``k`` of a row is bit ``7 - (k % 8)`` of byte ``k // 8``).  A
server therefore never parses, sorts or unpacks spike indices at the
boundary — it wraps the payload with
:meth:`~repro.backend.batch.SpikeTrainBatch.from_packed` and the batch
stays packed-primary all the way through shared-memory dispatch and the
packed kernels.

Framing (all integers little-endian)::

    u32 length | 16-byte frame header | payload (length - 16 bytes)

The frame header is ``magic "REPB" | version u8 | type u8 | flags u16 |
request_id u32 | reserved u32``.  Requests carry a fixed 28-byte
request header (wire counts, grid geometry, scan options) followed by
the bitset.  The byte-level layout, the versioning rules and the error
codes are documented in ``docs/protocol.md`` — this module is their
single executable source.

Two response encodings exist, **negotiated per request frame**: the
version byte a client stamps on its request selects the encoding of
every response frame for that request.  Version 1 responses are UTF-8
JSON (``FRAME_SHARD``); version 2 responses carry each shard's result
as one binary ``FRAME_RESULT`` — a 24-byte result header followed by
little-endian arrays (identify) or the ``np.packbits`` membership bits
plus first-slot array (membership), so the hot serving path never
JSON-encodes per-shard arrays.  DONE, ERROR and STATS payloads stay
JSON in both versions (one small frame per request, and clients must
tolerate unknown keys there).

Version 3 adds the *corpus-query* request (``FRAME_CORPUS_QUERY``): a
24-byte query header naming a row range plus the UTF-8 name of a
corpus the server hosts — no bitset payload at all, the data already
lives on the server's disk (:mod:`repro.pipeline.corpus`).  Responses
to a v3 request reuse the v2 binary result-frame encoding.  Version 3
also adds the ``FRAME_PING`` health probe, answered with a tiny JSON
``FRAME_PONG`` — but PING, like STATS, is accepted at any supported
version (new frame types are not themselves a version break; the
header bump marks the corpus-query payload layout).

Version 4 assigns the frame header's reserved ``u32`` — the escape
hatch versions 1-3 kept zero — as ``deadline_ms``: a per-request
deadline in milliseconds (0: none).  A server drops expired work and
answers :data:`ERR_DEADLINE` instead of computing a result nobody is
waiting for; the field is meaningful on request frames only and every
response frame keeps it zero.  Version 4 also adds the two *typed
retry* error codes — :data:`ERR_DEADLINE` and :data:`ERR_RETRYABLE` —
and :data:`RETRYABLE_CODES`, the executable half of the client retry
contract (``docs/fault_tolerance.md``).

Version 5 adds the *logicnet* request (``FRAME_LOGICNET``): a fixed
20-byte query header asking the server to evaluate a contiguous range
of a deterministic random-logic-network family
(:class:`~repro.logic.netbatch.LogicNetBatch`, keyed by seed and
shape) against its hosted basis lines.  Like a corpus query it ships
no bitset — the inputs already live on the server and the networks
rebuild from `SeedSequence` spawn keys — so a gate-choice sweep costs
a few dozen request bytes per slice.  Responses reuse the binary
result-frame encoding with a third mode: per-gate output spike counts
(i64) plus per-network uint64 checksums.

Version policy: ``PROTOCOL_VERSION`` bumps on any incompatible header
or payload change; a decoder rejects frames whose version it does not
implement (not in :data:`SUPPORTED_VERSIONS`) with
:data:`ERR_BAD_VERSION` (the magic never changes, so a version
mismatch is always reportable).  ``flags`` must be zero in versions
1-5; the header ``reserved`` field must be zero in versions 1-3 and
carries ``deadline_ms`` from version 4 on.
"""

from __future__ import annotations

import json
import struct
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

import numpy as np

from ..backend import packed as packed_kernels
from ..errors import ProtocolError, ServingError
from ..units import SimulationGrid

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "FRAME_IDENTIFY",
    "FRAME_MEMBERSHIP",
    "FRAME_CORPUS_QUERY",
    "FRAME_LOGICNET",
    "FRAME_STATS",
    "FRAME_PING",
    "FRAME_SHARD",
    "FRAME_DONE",
    "FRAME_RESULT",
    "FRAME_STATS_REPLY",
    "FRAME_PONG",
    "FRAME_ERROR",
    "LIMIT_FULL",
    "DEFAULT_MAX_FRAME_BYTES",
    "ERR_BAD_MAGIC",
    "ERR_BAD_VERSION",
    "ERR_BAD_FRAME",
    "ERR_FRAME_TOO_LARGE",
    "ERR_BAD_TYPE",
    "ERR_BAD_GRID",
    "ERR_OVERLOADED",
    "ERR_INTERNAL",
    "ERR_NO_CORPUS",
    "ERR_DEADLINE",
    "ERR_RETRYABLE",
    "ERROR_NAMES",
    "RETRYABLE_CODES",
    "MAX_DEADLINE_MS",
    "Frame",
    "Request",
    "CorpusQuery",
    "LogicNetQuery",
    "FrameReader",
    "encode_frame",
    "encode_request",
    "encode_request_parts",
    "parse_request",
    "encode_corpus_query",
    "parse_corpus_query",
    "encode_logicnet_query",
    "parse_logicnet_query",
    "encode_ping",
    "encode_json_frame",
    "parse_json_frame",
    "encode_result_frame",
    "parse_result_frame",
    "encode_stats_request",
    "stats_scope",
    "encode_error",
    "jsonable_payload",
    "request_nbytes",
]

#: First four bytes of every frame body ("REpro Packed Bitset").
MAGIC = b"REPB"

#: Current protocol version; bumped on incompatible layout changes.
PROTOCOL_VERSION = 5

#: Versions this build decodes.  Version 1 responses are JSON,
#: versions 2+ responses are binary result frames; version 3 adds the
#: corpus-query request layout; version 4 assigns the frame header's
#: reserved field as the request deadline; version 5 adds the logicnet
#: query layout and result mode.  Bitset request layout is identical
#: in all five.
SUPPORTED_VERSIONS = (1, 2, 3, 4, 5)

# Frame types.  Requests sit below 0x80, responses at or above it, so a
# misdirected frame is caught by the type check rather than a payload
# parse.
FRAME_IDENTIFY = 0x01
FRAME_MEMBERSHIP = 0x02
FRAME_CORPUS_QUERY = 0x03
FRAME_LOGICNET = 0x04
FRAME_STATS = 0x10
FRAME_PING = 0x11
FRAME_SHARD = 0x81
FRAME_DONE = 0x82
FRAME_RESULT = 0x83
FRAME_STATS_REPLY = 0x84
FRAME_PONG = 0x85
FRAME_ERROR = 0xFF

_REQUEST_TYPES = (FRAME_IDENTIFY, FRAME_MEMBERSHIP)
_JSON_RESPONSE_TYPES = (
    FRAME_SHARD,
    FRAME_DONE,
    FRAME_STATS_REPLY,
    FRAME_PONG,
    FRAME_ERROR,
)
_RESPONSE_TYPES = _JSON_RESPONSE_TYPES + (FRAME_RESULT,)

_MODE_BY_TYPE = {FRAME_IDENTIFY: "identify", FRAME_MEMBERSHIP: "membership"}
_TYPE_BY_MODE = {mode: ftype for ftype, mode in _MODE_BY_TYPE.items()}

#: ``limit`` sentinel meaning "the whole grid" (membership requests).
LIMIT_FULL = 0xFFFFFFFF

#: Default per-frame size cap (header + payload).  At the paper grid
#: (65536 slots → 8 KiB/wire) this admits ~8k wires per request.
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

# Error codes (the ``code`` field of an error frame's JSON payload).
ERR_BAD_MAGIC = 1
ERR_BAD_VERSION = 2
ERR_BAD_FRAME = 3
ERR_FRAME_TOO_LARGE = 4
ERR_BAD_TYPE = 5
ERR_BAD_GRID = 6
ERR_OVERLOADED = 7
ERR_INTERNAL = 8
ERR_NO_CORPUS = 9
ERR_DEADLINE = 10
ERR_RETRYABLE = 11

#: code → symbolic name, echoed in error payloads for human readers.
ERROR_NAMES: Dict[int, str] = {
    ERR_BAD_MAGIC: "BAD_MAGIC",
    ERR_BAD_VERSION: "BAD_VERSION",
    ERR_BAD_FRAME: "BAD_FRAME",
    ERR_FRAME_TOO_LARGE: "FRAME_TOO_LARGE",
    ERR_BAD_TYPE: "BAD_TYPE",
    ERR_BAD_GRID: "BAD_GRID",
    ERR_OVERLOADED: "OVERLOADED",
    ERR_INTERNAL: "INTERNAL",
    ERR_NO_CORPUS: "NO_CORPUS",
    ERR_DEADLINE: "DEADLINE",
    ERR_RETRYABLE: "RETRYABLE",
}

#: Codes whose failures are transient: re-issuing the same idempotent
#: request (after reconnecting if need be) could succeed.  Everything
#: else is structural — the identical request would fail identically
#: forever — and a client must surface it instead of retrying.
#: ``DEADLINE`` is here because expiry measures transient load, not
#: the request; ``OVERLOADED`` is **not** — it is reserved for
#: requests that could never fit the server's whole budget.
RETRYABLE_CODES = frozenset({ERR_DEADLINE, ERR_RETRYABLE})

# The codes live here; ServingError.retryable consults them (the
# reverse assignment would invert the import direction).
ServingError.RETRYABLE_CODES = RETRYABLE_CODES

#: Largest encodable request deadline (the reserved field is u32).
MAX_DEADLINE_MS = 2**32 - 1

#: ``u32 length`` prefix framing each body.
_LENGTH = struct.Struct("<I")

#: Frame header: magic, version, type, flags, request_id, reserved.
_HEADER = struct.Struct("<4sBBHII")

#: Request header: n_wires, n_samples, dt, start_slot, limit,
#: n_shards, reserved.
_REQUEST = struct.Struct("<IIdIIHH")

#: Binary result header (version 2): mode, residency bits, reserved,
#: row_start, row_stop, n_cols, wall_seconds.
_RESULT = struct.Struct("<BBHIIId")

#: Corpus-query header (version 3): mode, reserved, name_len,
#: row_start, row_stop, start_slot, limit, n_shards, reserved —
#: followed by ``name_len`` bytes of UTF-8 corpus name.  No bitset.
_CORPUS_QUERY = struct.Struct("<BBHIIIIHH")

#: Logicnet-query header (version 5): seed, net_start, net_stop,
#: n_gates, depth, n_shards.  The whole payload — no bitset, no name;
#: the family rebuilds from the seed and the server's basis lines.
_LOGICNET_QUERY = struct.Struct("<IIIIHH")

HEADER_BYTES = _HEADER.size  # 16
REQUEST_HEADER_BYTES = _REQUEST.size  # 28
RESULT_HEADER_BYTES = _RESULT.size  # 24
CORPUS_QUERY_HEADER_BYTES = _CORPUS_QUERY.size  # 24
LOGICNET_QUERY_BYTES = _LOGICNET_QUERY.size  # 20

#: Residency bits of the binary result header.
_RES_PACKED = 0x01
_RES_CSR = 0x02
_RES_RASTER = 0x04

_MODE_CODES = {"identify": 1, "membership": 2, "logicnet": 3}
_MODE_BY_CODE = {code: mode for mode, code in _MODE_CODES.items()}


@dataclass(frozen=True)
class Frame:
    """One decoded frame: header fields plus the raw payload bytes.

    ``payload`` is a read-only :class:`memoryview` over the frame body
    when decoded by :class:`FrameReader` (zero-copy — consumers like
    ``np.frombuffer`` and ``struct.unpack_from`` read it in place),
    but plain ``bytes`` are accepted anywhere a ``Frame`` is built by
    hand.
    """

    version: int
    frame_type: int
    request_id: int
    payload: bytes
    flags: int = 0
    #: Version-4 request deadline in milliseconds (0: none).  Rides in
    #: the header field versions 1-3 reserve as zero; always 0 on
    #: response frames.
    deadline_ms: int = 0


@dataclass(frozen=True)
class Request:
    """A parsed request frame.

    ``packed`` is a read-only ``(n_wires, ceil(n_samples / 8))``
    ``uint8`` view of the frame's payload bytes — parsing allocates no
    array and copies nothing.
    """

    mode: str
    request_id: int
    packed: np.ndarray
    n_samples: int
    dt: float
    start_slot: int
    limit: Optional[int]
    n_shards: int
    #: Protocol version of the request frame — the response encoding
    #: the client asked for (1: JSON shards, 2: binary result frames).
    version: int = PROTOCOL_VERSION
    #: Request deadline in milliseconds (version 4; 0: none).  The
    #: budget starts when the server *parses* the frame — clocks are
    #: never compared across hosts.
    deadline_ms: int = 0

    @property
    def n_wires(self) -> int:
        """Number of wire rows in the payload."""
        return int(self.packed.shape[0])

    def grid(self) -> SimulationGrid:
        """The simulation grid the payload claims to live on."""
        return SimulationGrid(n_samples=self.n_samples, dt=self.dt)


@dataclass(frozen=True)
class CorpusQuery:
    """A parsed corpus-query frame (version 3).

    References rows the *server* already holds — the request ships a
    corpus name and a row range instead of a bitset, so its size is
    ~tens of bytes no matter how many wires it asks about.
    """

    mode: str
    request_id: int
    corpus: str
    row_start: int
    row_stop: int
    start_slot: int
    limit: Optional[int]
    n_shards: int
    version: int = PROTOCOL_VERSION
    #: Request deadline in milliseconds (version 4; 0: none).
    deadline_ms: int = 0

    @property
    def n_wires(self) -> int:
        """Number of corpus rows the query covers."""
        return int(self.row_stop - self.row_start)


@dataclass(frozen=True)
class LogicNetQuery:
    """A parsed logicnet-query frame (version 5).

    Names networks ``[net_start, net_stop)`` of the deterministic
    random-network family keyed by ``(seed, n_gates, depth)`` — the
    server evaluates them against its hosted basis lines, rebuilding
    each shard's tables from `SeedSequence` spawn keys.  No bitset, no
    corpus: the whole request is the 20-byte query header.
    """

    request_id: int
    seed: int
    net_start: int
    net_stop: int
    n_gates: int
    depth: int
    n_shards: int
    version: int = PROTOCOL_VERSION
    #: Request deadline in milliseconds (version 4; 0: none).
    deadline_ms: int = 0

    @property
    def n_networks(self) -> int:
        """Number of networks the query covers."""
        return int(self.net_stop - self.net_start)

    @property
    def mode(self) -> str:
        """The result mode this query's response frames carry."""
        return "logicnet"


def request_nbytes(n_wires: int, n_samples: int) -> int:
    """Total frame-body bytes of a request with the given dimensions."""
    return (
        HEADER_BYTES
        + REQUEST_HEADER_BYTES
        + n_wires * packed_kernels.n_packed_bytes(n_samples)
    )


def _check_deadline_ms(deadline_ms: int, version: int) -> int:
    """Validate a deadline for encoding at ``version``."""
    deadline_ms = int(deadline_ms)
    if not (0 <= deadline_ms <= MAX_DEADLINE_MS):
        raise ProtocolError(
            ERR_BAD_FRAME, f"deadline_ms {deadline_ms} outside uint32"
        )
    if deadline_ms and version < 4:
        raise ProtocolError(
            ERR_BAD_VERSION,
            f"deadlines need protocol version >= 4, got {version}",
        )
    return deadline_ms


def encode_frame(
    frame_type: int,
    request_id: int,
    payload: bytes,
    *,
    version: int = PROTOCOL_VERSION,
    deadline_ms: int = 0,
) -> bytes:
    """Assemble one length-prefixed frame from its parts."""
    if not (0 <= request_id < 2**32):
        raise ProtocolError(
            ERR_BAD_FRAME, f"request_id {request_id} outside uint32"
        )
    deadline_ms = _check_deadline_ms(deadline_ms, version)
    header = _HEADER.pack(
        MAGIC, version, frame_type, 0, request_id, deadline_ms
    )
    return _LENGTH.pack(len(header) + len(payload)) + header + payload


def encode_request_parts(
    packed: np.ndarray,
    n_samples: int,
    dt: float,
    *,
    mode: str = "identify",
    start_slot: int = 0,
    limit: Optional[int] = None,
    n_shards: int = 0,
    request_id: int = 0,
    version: int = PROTOCOL_VERSION,
    deadline_ms: int = 0,
) -> List[memoryview]:
    """Encode one request frame as ``[prefix, bitset]`` buffer parts.

    The zero-copy flavour of :func:`encode_request`: the first part is
    the length prefix + frame header + request header, the second a
    read-only view of the caller's bitset — nothing is concatenated, so
    a client can hand both straight to ``socket.sendmsg`` /
    ``StreamWriter.writelines`` without ever copying the payload.
    ``packed`` must already be the ``(N, ceil(n_samples / 8))``
    ``uint8`` transport form (e.g.
    :meth:`~repro.backend.batch.SpikeTrainBatch.packbits`).  ``n_shards``
    0 asks the server to use its own default; ``limit`` bounds a
    membership scan (None: the whole grid); ``deadline_ms`` (version 4
    only) asks the server to abandon the request once that many
    milliseconds have passed since it parsed the frame (0: no
    deadline).
    """
    if mode not in _TYPE_BY_MODE:
        raise ProtocolError(ERR_BAD_TYPE, f"unknown request mode {mode!r}")
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            ERR_BAD_VERSION, f"cannot encode protocol version {version}"
        )
    packed = np.ascontiguousarray(packed, dtype=np.uint8)
    n_bytes = packed_kernels.n_packed_bytes(n_samples)
    if packed.ndim != 2 or packed.shape[1] != n_bytes:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"packed shape {packed.shape} does not match "
            f"(N, {n_bytes}) for {n_samples} samples",
        )
    if packed.shape[0] < 1:
        raise ProtocolError(ERR_BAD_FRAME, "a request needs at least one wire")
    if not (0 <= start_slot <= n_samples):
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"start_slot {start_slot} outside grid of {n_samples} samples",
        )
    wire_limit = LIMIT_FULL if limit is None else int(limit)
    if not (0 <= wire_limit <= LIMIT_FULL):
        raise ProtocolError(ERR_BAD_FRAME, f"limit {limit} outside uint32")
    if not (0 <= n_shards < 2**16):
        raise ProtocolError(ERR_BAD_FRAME, f"n_shards {n_shards} outside uint16")
    if not (0 <= request_id < 2**32):
        raise ProtocolError(
            ERR_BAD_FRAME, f"request_id {request_id} outside uint32"
        )
    deadline_ms = _check_deadline_ms(deadline_ms, version)
    body = _REQUEST.pack(
        packed.shape[0], n_samples, float(dt), start_slot, wire_limit,
        n_shards, 0,
    )
    header = _HEADER.pack(
        MAGIC, version, _TYPE_BY_MODE[mode], 0, request_id, deadline_ms
    )
    length = _LENGTH.pack(len(header) + len(body) + packed.nbytes)
    view = memoryview(packed).cast("B")
    view = view.toreadonly() if hasattr(view, "toreadonly") else view
    return [memoryview(length + header + body), view]


def encode_request(
    packed: np.ndarray,
    n_samples: int,
    dt: float,
    *,
    mode: str = "identify",
    start_slot: int = 0,
    limit: Optional[int] = None,
    n_shards: int = 0,
    request_id: int = 0,
    version: int = PROTOCOL_VERSION,
    deadline_ms: int = 0,
) -> bytes:
    """Encode one request frame around an ``np.packbits`` bitset.

    One contiguous ``bytes`` built from the same parts as
    :func:`encode_request_parts` (which transports avoiding the payload
    copy should prefer).
    """
    return b"".join(
        encode_request_parts(
            packed,
            n_samples,
            dt,
            mode=mode,
            start_slot=start_slot,
            limit=limit,
            n_shards=n_shards,
            request_id=request_id,
            version=version,
            deadline_ms=deadline_ms,
        )
    )


def parse_request(frame: Frame) -> Request:
    """Parse (and validate) one request frame.

    Rejects truncated payloads, trailing bytes, zero-wire requests and
    impossible grids — the exact payload length is implied by the
    request header, so any mismatch is :data:`ERR_BAD_FRAME`.
    """
    if frame.frame_type not in _REQUEST_TYPES:
        raise ProtocolError(
            ERR_BAD_TYPE,
            f"frame type 0x{frame.frame_type:02x} is not a request",
        )
    if len(frame.payload) < REQUEST_HEADER_BYTES:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"request payload truncated: {len(frame.payload)} bytes "
            f"< {REQUEST_HEADER_BYTES}-byte request header",
        )
    n_wires, n_samples, dt, start_slot, limit, n_shards, reserved = (
        _REQUEST.unpack_from(frame.payload)
    )
    if reserved != 0:
        raise ProtocolError(
            ERR_BAD_FRAME, "reserved request-header field must be zero"
        )
    if n_wires < 1:
        raise ProtocolError(ERR_BAD_FRAME, "a request needs at least one wire")
    if n_samples < 1 or not (dt > 0.0) or not np.isfinite(dt):
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"impossible grid: n_samples={n_samples}, dt={dt}",
        )
    if start_slot > n_samples:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"start_slot {start_slot} outside grid of {n_samples} samples",
        )
    n_bytes = packed_kernels.n_packed_bytes(n_samples)
    expected = REQUEST_HEADER_BYTES + n_wires * n_bytes
    if len(frame.payload) != expected:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"payload is {len(frame.payload)} bytes, expected {expected} "
            f"for {n_wires} wires x {n_bytes} packed bytes",
        )
    packed = np.frombuffer(
        frame.payload, dtype=np.uint8, offset=REQUEST_HEADER_BYTES
    ).reshape(n_wires, n_bytes)
    return Request(
        mode=_MODE_BY_TYPE[frame.frame_type],
        request_id=frame.request_id,
        packed=packed,
        n_samples=int(n_samples),
        dt=float(dt),
        start_slot=int(start_slot),
        limit=None if limit == LIMIT_FULL else int(limit),
        n_shards=int(n_shards),
        version=frame.version,
        deadline_ms=frame.deadline_ms,
    )


def encode_corpus_query(
    corpus: str,
    row_start: int,
    row_stop: int,
    *,
    mode: str = "identify",
    start_slot: int = 0,
    limit: Optional[int] = None,
    n_shards: int = 0,
    request_id: int = 0,
    version: int = PROTOCOL_VERSION,
    deadline_ms: int = 0,
) -> bytes:
    """Encode one corpus-query frame (version 3+).

    Asks the server to run ``mode`` over rows ``[row_start, row_stop)``
    of the corpus it hosts under ``corpus`` — the payload carries no
    bitset, only the 24-byte query header plus the corpus name, so the
    request costs the same few dozen bytes whether it covers ten rows
    or a million.  ``n_shards`` 0 lets the server chunk by its own
    configured window; ``limit`` bounds a membership scan.
    """
    if mode not in _MODE_CODES:
        raise ProtocolError(ERR_BAD_TYPE, f"unknown request mode {mode!r}")
    if version not in SUPPORTED_VERSIONS or version < 3:
        raise ProtocolError(
            ERR_BAD_VERSION,
            f"corpus queries need protocol version >= 3, got {version}",
        )
    name = str(corpus).encode("utf-8")
    if not (0 < len(name) < 2**16):
        raise ProtocolError(
            ERR_BAD_FRAME, f"corpus name must be 1-65535 bytes, got {corpus!r}"
        )
    row_start, row_stop = int(row_start), int(row_stop)
    if not (0 <= row_start < row_stop < 2**32):
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"corpus row range [{row_start}, {row_stop}) is empty or "
            f"outside uint32",
        )
    if not (0 <= start_slot < 2**32):
        raise ProtocolError(
            ERR_BAD_FRAME, f"start_slot {start_slot} outside uint32"
        )
    wire_limit = LIMIT_FULL if limit is None else int(limit)
    if not (0 <= wire_limit <= LIMIT_FULL):
        raise ProtocolError(ERR_BAD_FRAME, f"limit {limit} outside uint32")
    if not (0 <= n_shards < 2**16):
        raise ProtocolError(ERR_BAD_FRAME, f"n_shards {n_shards} outside uint16")
    body = _CORPUS_QUERY.pack(
        _MODE_CODES[mode], 0, len(name), row_start, row_stop,
        start_slot, wire_limit, n_shards, 0,
    )
    return encode_frame(
        FRAME_CORPUS_QUERY,
        request_id,
        body + name,
        version=version,
        deadline_ms=deadline_ms,
    )


def parse_corpus_query(frame: Frame) -> CorpusQuery:
    """Parse (and validate) one corpus-query frame.

    The exact payload length is implied by the query header's
    ``name_len``, so truncation and trailing bytes are both
    :data:`ERR_BAD_FRAME`; whether the named corpus exists (and whether
    the range fits it) is the server's call, not the parser's.
    """
    if frame.frame_type != FRAME_CORPUS_QUERY:
        raise ProtocolError(
            ERR_BAD_TYPE,
            f"frame type 0x{frame.frame_type:02x} is not a corpus query",
        )
    if frame.version < 3:
        raise ProtocolError(
            ERR_BAD_VERSION,
            f"corpus queries need protocol version >= 3, got {frame.version}",
        )
    if len(frame.payload) < CORPUS_QUERY_HEADER_BYTES:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"corpus-query payload truncated: {len(frame.payload)} bytes "
            f"< {CORPUS_QUERY_HEADER_BYTES}-byte query header",
        )
    (
        mode_code, reserved_a, name_len, row_start, row_stop,
        start_slot, limit, n_shards, reserved_b,
    ) = _CORPUS_QUERY.unpack_from(frame.payload)
    if reserved_a != 0 or reserved_b != 0:
        raise ProtocolError(
            ERR_BAD_FRAME, "reserved corpus-query fields must be zero"
        )
    mode = _MODE_BY_CODE.get(mode_code)
    if mode is None:
        raise ProtocolError(
            ERR_BAD_FRAME, f"unknown query mode code {mode_code}"
        )
    expected = CORPUS_QUERY_HEADER_BYTES + name_len
    if len(frame.payload) != expected:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"corpus-query payload is {len(frame.payload)} bytes, expected "
            f"{expected} for a {name_len}-byte name",
        )
    if name_len < 1:
        raise ProtocolError(ERR_BAD_FRAME, "a corpus query needs a name")
    if row_stop <= row_start:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"a corpus query needs at least one row: "
            f"[{row_start}, {row_stop})",
        )
    try:
        corpus = bytes(
            frame.payload[CORPUS_QUERY_HEADER_BYTES:]
        ).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(
            ERR_BAD_FRAME, f"undecodable corpus name: {exc}"
        ) from None
    return CorpusQuery(
        mode=mode,
        request_id=frame.request_id,
        corpus=corpus,
        row_start=int(row_start),
        row_stop=int(row_stop),
        start_slot=int(start_slot),
        limit=None if limit == LIMIT_FULL else int(limit),
        n_shards=int(n_shards),
        version=frame.version,
        deadline_ms=frame.deadline_ms,
    )


def encode_logicnet_query(
    seed: int,
    net_start: int,
    net_stop: int,
    *,
    n_gates: int,
    depth: int,
    n_shards: int = 0,
    request_id: int = 0,
    version: int = PROTOCOL_VERSION,
    deadline_ms: int = 0,
) -> bytes:
    """Encode one logicnet-query frame (version 5).

    Asks the server to evaluate networks ``[net_start, net_stop)`` of
    the family ``(seed, n_gates, depth)`` against its hosted basis —
    the request is 20 bytes of query header, nothing else.
    ``n_shards`` 0 lets the server pick its configured split.
    """
    if version not in SUPPORTED_VERSIONS or version < 5:
        raise ProtocolError(
            ERR_BAD_VERSION,
            f"logicnet queries need protocol version >= 5, got {version}",
        )
    net_start, net_stop = int(net_start), int(net_stop)
    if not (0 <= net_start < net_stop < 2**32):
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"logicnet network range [{net_start}, {net_stop}) is empty "
            f"or outside uint32",
        )
    if not (0 <= int(seed) < 2**32):
        raise ProtocolError(ERR_BAD_FRAME, f"seed {seed} outside uint32")
    if not (1 <= int(n_gates) < 2**32):
        raise ProtocolError(
            ERR_BAD_FRAME, f"n_gates {n_gates} must be in [1, 2**32)"
        )
    if not (1 <= int(depth) < 2**16):
        raise ProtocolError(
            ERR_BAD_FRAME, f"depth {depth} must be in [1, 65536)"
        )
    if not (0 <= n_shards < 2**16):
        raise ProtocolError(ERR_BAD_FRAME, f"n_shards {n_shards} outside uint16")
    body = _LOGICNET_QUERY.pack(
        int(seed), net_start, net_stop, int(n_gates), int(depth), int(n_shards)
    )
    return encode_frame(
        FRAME_LOGICNET,
        request_id,
        body,
        version=version,
        deadline_ms=deadline_ms,
    )


def parse_logicnet_query(frame: Frame) -> LogicNetQuery:
    """Parse (and validate) one logicnet-query frame.

    The payload is exactly the 20-byte query header; truncation and
    trailing bytes are both :data:`ERR_BAD_FRAME`.  Whether the range
    and shape fit the server's limits is the server's call.
    """
    if frame.frame_type != FRAME_LOGICNET:
        raise ProtocolError(
            ERR_BAD_TYPE,
            f"frame type 0x{frame.frame_type:02x} is not a logicnet query",
        )
    if frame.version < 5:
        raise ProtocolError(
            ERR_BAD_VERSION,
            f"logicnet queries need protocol version >= 5, "
            f"got {frame.version}",
        )
    if len(frame.payload) != LOGICNET_QUERY_BYTES:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"logicnet-query payload is {len(frame.payload)} bytes, "
            f"expected exactly {LOGICNET_QUERY_BYTES}",
        )
    seed, net_start, net_stop, n_gates, depth, n_shards = (
        _LOGICNET_QUERY.unpack_from(frame.payload)
    )
    if net_stop <= net_start:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"a logicnet query needs at least one network: "
            f"[{net_start}, {net_stop})",
        )
    if n_gates < 1 or depth < 1:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"logicnet shape needs n_gates >= 1 and depth >= 1, "
            f"got {n_gates} x {depth}",
        )
    return LogicNetQuery(
        request_id=frame.request_id,
        seed=int(seed),
        net_start=int(net_start),
        net_stop=int(net_stop),
        n_gates=int(n_gates),
        depth=int(depth),
        n_shards=int(n_shards),
        version=frame.version,
        deadline_ms=frame.deadline_ms,
    )


def encode_ping(
    request_id: int = 0,
    *,
    version: int = PROTOCOL_VERSION,
) -> bytes:
    """Encode one PING health probe (answered with a JSON PONG).

    An empty payload by design: the cheapest possible liveness
    round-trip for load-balancer probes — no compute, no pool, no
    STATS aggregation.  Accepted at any supported version, like STATS.
    """
    return encode_frame(FRAME_PING, request_id, b"", version=version)


def encode_json_frame(
    frame_type: int,
    request_id: int,
    obj,
    *,
    version: int = PROTOCOL_VERSION,
) -> bytes:
    """Encode one response frame whose payload is UTF-8 JSON.

    ``version`` stamps the frame header — responses must answer in the
    version the request was made in, or a version-1 peer's reader
    would reject them.
    """
    if frame_type not in _JSON_RESPONSE_TYPES:
        raise ProtocolError(
            ERR_BAD_TYPE,
            f"frame type 0x{frame_type:02x} is not a JSON response",
        )
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    return encode_frame(frame_type, request_id, payload, version=version)


def parse_json_frame(frame: Frame) -> dict:
    """Decode a response frame's JSON payload."""
    if frame.frame_type not in _JSON_RESPONSE_TYPES:
        raise ProtocolError(
            ERR_BAD_TYPE,
            f"frame type 0x{frame.frame_type:02x} is not a JSON response",
        )
    try:
        obj = json.loads(bytes(frame.payload).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(
            ERR_BAD_FRAME, f"undecodable JSON payload: {exc}"
        ) from None
    if not isinstance(obj, dict):
        raise ProtocolError(ERR_BAD_FRAME, "response payload must be an object")
    return obj


def jsonable_payload(payload: dict) -> dict:
    """A shard payload with every array field JSON-encodable.

    Shard compute returns NumPy arrays
    (:func:`~repro.serving.dispatch.compute_shard`); the version-1 JSON
    encoding converts them to plain lists at the boundary (boolean
    matrices as 0/1), exactly the shapes version-1 clients always saw.
    """
    out = {}
    for key, value in payload.items():
        if isinstance(value, np.ndarray):
            if value.dtype == np.bool_:
                value = value.astype(int)
            value = value.tolist()
        out[key] = value
    return out


def _residency_bits(residency: dict) -> int:
    bits = 0
    if residency.get("packed"):
        bits |= _RES_PACKED
    if residency.get("csr"):
        bits |= _RES_CSR
    if residency.get("raster"):
        bits |= _RES_RASTER
    return bits


def encode_result_frame(
    request_id: int,
    payload: dict,
    *,
    mode: str,
    version: int = PROTOCOL_VERSION,
) -> bytes:
    """Encode one shard result as a binary ``FRAME_RESULT`` (version 2).

    ``payload`` is a :func:`~repro.serving.dispatch.compute_shard`
    payload: ``row_start``/``row_stop``/``wall_seconds``/``residency``
    plus the mode's arrays.  Identify results travel as little-endian
    ``elements`` (i32), ``decision_slots`` (i64) and
    ``spikes_inspected`` (i64), one entry per row; membership results
    as the ``np.packbits`` bits of the ``(n_rows, M)`` membership
    matrix followed by the ``first_slots`` i64 matrix; logicnet
    results (version 5) as the ``(n_rows, G)`` per-gate ``popcounts``
    i64 matrix followed by the per-network ``checksums`` u64 vector,
    with the row range counting networks and ``n_cols`` carrying G.
    No JSON, no Python lists — the arrays' own buffers are the
    payload.
    """
    if mode not in _MODE_CODES:
        raise ProtocolError(ERR_BAD_TYPE, f"unknown result mode {mode!r}")
    row_start = int(payload["row_start"])
    row_stop = int(payload["row_stop"])
    n_rows = row_stop - row_start
    if mode == "identify":
        elements = np.ascontiguousarray(payload["elements"], dtype="<i4")
        slots = np.ascontiguousarray(payload["decision_slots"], dtype="<i8")
        inspected = np.ascontiguousarray(
            payload["spikes_inspected"], dtype="<i8"
        )
        if not (elements.size == slots.size == inspected.size == n_rows):
            raise ProtocolError(
                ERR_BAD_FRAME,
                f"identify arrays sized {elements.size} do not match "
                f"rows [{row_start}, {row_stop})",
            )
        n_cols = 0
        blob = elements.tobytes() + slots.tobytes() + inspected.tobytes()
    elif mode == "logicnet":
        popcounts = np.ascontiguousarray(payload["popcounts"], dtype="<i8")
        checksums = np.ascontiguousarray(payload["checksums"], dtype="<u8")
        if (
            popcounts.ndim != 2
            or popcounts.shape[0] != n_rows
            or checksums.shape != (n_rows,)
        ):
            raise ProtocolError(
                ERR_BAD_FRAME,
                f"logicnet arrays {popcounts.shape}/{checksums.shape} do "
                f"not match networks [{row_start}, {row_stop})",
            )
        n_cols = popcounts.shape[1]
        blob = popcounts.tobytes() + checksums.tobytes()
    else:
        membership = np.ascontiguousarray(
            payload["membership"], dtype=np.bool_
        )
        first_slots = np.ascontiguousarray(
            payload["first_slots"], dtype="<i8"
        )
        if (
            membership.ndim != 2
            or membership.shape[0] != n_rows
            or first_slots.shape != membership.shape
        ):
            raise ProtocolError(
                ERR_BAD_FRAME,
                f"membership matrices {membership.shape} do not match "
                f"rows [{row_start}, {row_stop})",
            )
        n_cols = membership.shape[1]
        blob = (
            np.packbits(membership, axis=1).tobytes()
            + first_slots.tobytes()
        )
    header = _RESULT.pack(
        _MODE_CODES[mode],
        _residency_bits(payload.get("residency", {})),
        0,
        row_start,
        row_stop,
        n_cols,
        float(payload.get("wall_seconds", 0.0)),
    )
    return encode_frame(FRAME_RESULT, request_id, header + blob, version=version)


def parse_result_frame(frame: Frame) -> dict:
    """Decode one binary result frame into a shard-payload dict.

    The inverse of :func:`encode_result_frame`: the returned dict
    carries the same keys as the version-1 JSON shard payload — array
    fields as NumPy arrays, ``membership`` as booleans — so merging
    code is encoding-agnostic.
    """
    if frame.frame_type != FRAME_RESULT:
        raise ProtocolError(
            ERR_BAD_TYPE,
            f"frame type 0x{frame.frame_type:02x} is not a result frame",
        )
    if len(frame.payload) < RESULT_HEADER_BYTES:
        raise ProtocolError(
            ERR_BAD_FRAME,
            f"result payload truncated: {len(frame.payload)} bytes "
            f"< {RESULT_HEADER_BYTES}-byte result header",
        )
    mode_code, residency_bits, reserved, row_start, row_stop, n_cols, wall = (
        _RESULT.unpack_from(frame.payload)
    )
    if reserved != 0:
        raise ProtocolError(
            ERR_BAD_FRAME, "reserved result-header field must be zero"
        )
    mode = _MODE_BY_CODE.get(mode_code)
    if mode is None:
        raise ProtocolError(
            ERR_BAD_FRAME, f"unknown result mode code {mode_code}"
        )
    if row_stop < row_start:
        raise ProtocolError(
            ERR_BAD_FRAME, f"impossible row range [{row_start}, {row_stop})"
        )
    n_rows = row_stop - row_start
    body = memoryview(frame.payload)[RESULT_HEADER_BYTES:]
    payload = {
        "kind": "shard",
        "row_start": int(row_start),
        "row_stop": int(row_stop),
        "wall_seconds": float(wall),
        "residency": {
            "packed": bool(residency_bits & _RES_PACKED),
            "csr": bool(residency_bits & _RES_CSR),
            "raster": bool(residency_bits & _RES_RASTER),
        },
    }
    if mode == "identify":
        if n_cols != 0:
            raise ProtocolError(
                ERR_BAD_FRAME, "identify results carry no column count"
            )
        expected = n_rows * (4 + 8 + 8)
        if len(body) != expected:
            raise ProtocolError(
                ERR_BAD_FRAME,
                f"identify result payload is {len(body)} bytes, expected "
                f"{expected} for {n_rows} rows",
            )
        payload["elements"] = np.frombuffer(
            body, dtype="<i4", count=n_rows
        ).astype(np.int64)
        payload["decision_slots"] = np.frombuffer(
            body, dtype="<i8", count=n_rows, offset=4 * n_rows
        )
        payload["spikes_inspected"] = np.frombuffer(
            body, dtype="<i8", count=n_rows, offset=12 * n_rows
        )
    elif mode == "logicnet":
        expected = n_rows * n_cols * 8 + n_rows * 8
        if len(body) != expected:
            raise ProtocolError(
                ERR_BAD_FRAME,
                f"logicnet result payload is {len(body)} bytes, expected "
                f"{expected} for {n_rows} networks x {n_cols} gates",
            )
        payload["popcounts"] = np.frombuffer(
            body, dtype="<i8", count=n_rows * n_cols
        ).reshape(n_rows, n_cols)
        payload["checksums"] = np.frombuffer(
            body, dtype="<u8", count=n_rows, offset=n_rows * n_cols * 8
        )
    else:
        mask_bytes = n_rows * ((n_cols + 7) // 8)
        expected = mask_bytes + n_rows * n_cols * 8
        if len(body) != expected:
            raise ProtocolError(
                ERR_BAD_FRAME,
                f"membership result payload is {len(body)} bytes, expected "
                f"{expected} for {n_rows} rows x {n_cols} elements",
            )
        bits = np.frombuffer(body, dtype=np.uint8, count=mask_bytes)
        if n_rows:
            payload["membership"] = np.unpackbits(
                bits.reshape(n_rows, -1), axis=1, count=n_cols
            ).astype(bool)
        else:
            payload["membership"] = np.empty((0, n_cols), dtype=bool)
        payload["first_slots"] = np.frombuffer(
            body, dtype="<i8", offset=mask_bytes
        ).reshape(n_rows, n_cols)
    return payload


def encode_stats_request(
    request_id: int = 0,
    *,
    version: int = PROTOCOL_VERSION,
    scope: Optional[str] = None,
) -> bytes:
    """Encode one STATS request (answered with JSON).

    ``scope`` selects which counters a multi-worker server answers
    with: ``"cluster"`` (the default on clustered servers) aggregates
    every worker's counters into one reply with per-worker detail,
    ``"local"`` returns only the worker that happened to accept this
    connection.  The scope rides as a tiny JSON payload
    (``{"scope": ...}``); ``None`` keeps the payload empty — the
    pre-aggregation encoding, which every server treats as the default
    scope, so old clients keep working against new servers and new
    clients against old servers (which ignore the payload entirely).
    """
    payload = (
        json.dumps({"scope": scope}, separators=(",", ":")).encode("utf-8")
        if scope is not None
        else b""
    )
    return encode_frame(FRAME_STATS, request_id, payload, version=version)


def stats_scope(frame: Frame) -> Optional[str]:
    """The scope of a STATS request frame (None: default scope).

    Tolerant by design — an empty, undecodable or scope-less payload
    is the default scope, never an error: STATS must keep answering
    whatever a client managed to send.
    """
    if not frame.payload:
        return None
    try:
        obj = json.loads(bytes(frame.payload).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(obj, dict):
        return None
    scope = obj.get("scope")
    return scope if isinstance(scope, str) else None


def encode_error(
    request_id: int,
    code: int,
    message: str,
    *,
    version: int = PROTOCOL_VERSION,
) -> bytes:
    """Encode one error frame (JSON ``{code, error, message}``)."""
    return encode_json_frame(
        FRAME_ERROR,
        request_id,
        {
            "code": int(code),
            "error": ERROR_NAMES.get(int(code), "UNKNOWN"),
            "message": str(message),
        },
        version=version,
    )


class FrameReader:
    """Incremental frame decoder over a byte stream.

    Feed it whatever the transport delivers; it buffers partial frames
    and returns each complete :class:`Frame` exactly once.  Framing
    violations (bad magic, unsupported version, nonzero reserved
    fields, a declared length below the header size or above
    ``max_frame_bytes``) raise :class:`~repro.errors.ProtocolError`
    immediately — after a framing error the stream boundary is lost and
    the connection must be dropped, which is why these are errors and
    not skipped frames.

    The reader is **zero-copy on the hot path**: fed chunks are held
    by reference (never concatenated into a rolling buffer), each
    complete frame's body is assembled with at most one join, and the
    returned frame's payload is a read-only view of that body —
    a multi-megabyte request costs one copy between the socket and
    ``np.frombuffer``, not four.

    For transports that can read *into* caller memory
    (``asyncio.BufferedProtocol``, ``socket.recv_into``) the
    :meth:`get_buffer`/:meth:`buffer_updated` pair goes one better:
    once a frame's length prefix declares a body larger than the
    scratch window, an exact-size assembly buffer is allocated and the
    transport lands the remaining bytes **directly in place** — a
    large request reaches ``np.frombuffer`` with no user-space copy at
    all, and the kernel drains in buffer-sized reads instead of the
    transport's default small chunks.
    """

    _SCRATCH_BYTES = 256 * 1024

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        if max_frame_bytes < HEADER_BYTES:
            raise ProtocolError(
                ERR_BAD_FRAME,
                f"max_frame_bytes must be >= {HEADER_BYTES}, "
                f"got {max_frame_bytes}",
            )
        self.max_frame_bytes = int(max_frame_bytes)
        self._chunks: Deque[bytes] = deque()
        self._buffered = 0
        self._poisoned: Optional[ProtocolError] = None
        self._scratch: Optional[bytearray] = None
        self._assembly: Optional[bytearray] = None
        self._filled = 0

    @property
    def buffered_bytes(self) -> int:
        """Bytes held waiting for the rest of a frame."""
        return self._buffered

    @property
    def pending_error(self) -> Optional["ProtocolError"]:
        """The deferred framing error, if the stream is poisoned.

        Set when :meth:`feed` swallowed a violation to hand back the
        frames completed before it; consumers that want to fail fast
        (the server answers the error without waiting for more bytes)
        check this after draining a chunk's frames.
        """
        return self._poisoned

    def feed(self, data: bytes) -> List[Frame]:
        """Buffer ``data`` and return every frame it completed.

        When a chunk completes good frames *and then* hits a framing
        violation, the good frames are returned first and the error is
        raised by the next call — a pipelining peer's valid requests
        must not vanish because a later frame in the same TCP segment
        was corrupt.
        """
        if self._poisoned is not None:
            raise self._poisoned
        if data:
            # Held by reference: chunks are only stitched together once
            # a frame completes, and only across its own boundary.
            self._chunks.append(bytes(data))
            self._buffered += len(data)
        frames: List[Frame] = []
        while True:
            try:
                frame = self._next_frame()
            except ProtocolError as exc:
                if frames:
                    self._poisoned = exc
                    return frames
                raise
            if frame is None:
                return frames
            frames.append(frame)

    def _take(self, n: int) -> bytes:
        """Pop exactly ``n`` buffered bytes, joining chunks only as needed.

        When the first chunk alone covers ``n`` bytes with nothing to
        spare, it is returned as-is — zero copies; a chunk that
        overshoots is split (the small remainder is the only copy).
        """
        pieces: List[bytes] = []
        taken = 0
        while taken < n:
            chunk = self._chunks.popleft()
            need = n - taken
            if len(chunk) > need:
                self._chunks.appendleft(chunk[need:])
                chunk = chunk[:need]
            pieces.append(chunk)
            taken += len(chunk)
        self._buffered -= n
        return pieces[0] if len(pieces) == 1 else b"".join(pieces)

    def _next_frame(self) -> Optional[Frame]:
        """Pop one complete frame off the buffer, or None to wait."""
        if self._buffered < _LENGTH.size:
            return None
        if len(self._chunks[0]) < _LENGTH.size:
            self._chunks.appendleft(self._take(_LENGTH.size))
            self._buffered += _LENGTH.size
        (length,) = _LENGTH.unpack_from(self._chunks[0])
        if length < HEADER_BYTES:
            raise ProtocolError(
                ERR_BAD_FRAME,
                f"declared frame length {length} is below the "
                f"{HEADER_BYTES}-byte header",
            )
        if length > self.max_frame_bytes:
            raise ProtocolError(
                ERR_FRAME_TOO_LARGE,
                f"declared frame length {length} exceeds the "
                f"{self.max_frame_bytes}-byte cap",
            )
        if self._buffered < _LENGTH.size + length:
            return None
        body = memoryview(self._take(_LENGTH.size + length))
        return self._frame_from_body(body)

    def _frame_from_body(self, body: memoryview) -> Frame:
        """Validate one complete prefix+header+payload body into a Frame."""
        magic, version, frame_type, flags, request_id, reserved = (
            _HEADER.unpack_from(body, _LENGTH.size)
        )
        if magic != MAGIC:
            raise ProtocolError(
                ERR_BAD_MAGIC, f"bad magic {magic!r} (expected {MAGIC!r})"
            )
        if version not in SUPPORTED_VERSIONS:
            raise ProtocolError(
                ERR_BAD_VERSION,
                f"unsupported protocol version {version} "
                f"(this build speaks {SUPPORTED_VERSIONS})",
            )
        if flags != 0:
            raise ProtocolError(
                ERR_BAD_FRAME, "header flags must be zero in versions 1-5"
            )
        if reserved != 0 and version < 4:
            raise ProtocolError(
                ERR_BAD_FRAME,
                "reserved header field must be zero in versions 1-3",
            )
        return Frame(
            version=version,
            frame_type=frame_type,
            request_id=request_id,
            payload=body[_LENGTH.size + HEADER_BYTES :].toreadonly(),
            flags=flags,
            deadline_ms=reserved if version >= 4 else 0,
        )

    # -- read-into ingestion (asyncio.BufferedProtocol shape) ----------

    def get_buffer(self, sizehint: int = -1) -> memoryview:
        """Writable memory for the transport's next ``recv_into``.

        Mid-assembly of a large frame this is the remaining slice of
        that frame's exact-size buffer (the payload lands in place);
        otherwise it is a reusable scratch window.
        """
        if self._assembly is not None:
            return memoryview(self._assembly)[self._filled :]
        if self._scratch is None:
            self._scratch = bytearray(self._SCRATCH_BYTES)
        return memoryview(self._scratch)

    def buffer_updated(self, nbytes: int) -> List[Frame]:
        """Account ``nbytes`` written into :meth:`get_buffer`'s memory.

        Returns every frame completed, with :meth:`feed`'s exact
        poison-and-defer semantics (the two modes share the decode and
        validation path).
        """
        if self._assembly is not None:
            self._filled += nbytes
            if self._filled < len(self._assembly):
                return []
            body = memoryview(self._assembly).toreadonly()
            self._assembly = None
            self._filled = 0
            if self._poisoned is not None:  # pragma: no cover - defensive
                raise self._poisoned
            frame = self._frame_from_body(body)
            return [frame]
        frames = self.feed(
            bytes(memoryview(self._scratch)[:nbytes]) if nbytes else b""
        )
        self._maybe_assemble_direct()
        return frames

    def _maybe_assemble_direct(self) -> None:
        """Switch to in-place assembly when a large frame is pending.

        Called with a partial frame buffered: if its declared size is
        known, exceeds the scratch window, and the remainder is still
        in flight, the buffered prefix moves into an exact-size buffer
        and :meth:`get_buffer` starts exposing the unfilled tail.
        """
        if self._poisoned is not None or self._buffered < _LENGTH.size:
            return
        if len(self._chunks[0]) < _LENGTH.size:
            self._chunks.appendleft(self._take(_LENGTH.size))
            self._buffered += _LENGTH.size
        (length,) = _LENGTH.unpack_from(self._chunks[0])
        # Bounds were validated by the feed() pass that left this
        # partial frame buffered.
        total = _LENGTH.size + length
        if total <= self._SCRATCH_BYTES or self._buffered >= total:
            return
        have = self._buffered
        assembly = bytearray(total)
        assembly[:have] = self._take(have)
        self._assembly = assembly
        self._filled = have
