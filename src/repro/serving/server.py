"""Asyncio serving front-end: stream packed-bitset wires into the shard pool.

:class:`SpikeServer` is the repo's network entry point — the layer the
ROADMAP called "stream wires into batches at an RPC boundary".  One
asyncio TCP server accepts length-prefixed protocol frames
(:mod:`repro.serving.protocol`), and each request flows through the
four existing layers without the payload ever unpacking to a raster:

1. the frame's bitset wraps as a *packed-primary*
   :class:`~repro.backend.batch.SpikeTrainBatch` (``from_packed`` —
   no CSR decode, no raster);
2. the batch exports into a per-request
   :class:`~repro.backend.shared.SharedArena`
   (``to_shared`` ships the word-aligned bitset; the row offsets come
   from a popcount pass, still no decode);
3. contiguous row-range :class:`~repro.serving.dispatch.ShardTask`\\ s
   dispatch onto the :class:`~repro.pipeline.runner.Runner`'s
   persistent pool (``Runner.submit``), where workers attach the
   mapped bitset and run the packed receiver kernels on it;
4. each shard's result streams back to the client as one JSON frame,
   in shard order as results complete (a slow early shard delays the
   later shards' *frames*, never their compute), followed by a summary
   frame recording wall time and the server batch's representation
   residency.

Single-job servers (or hosts without shared memory) run the same
shards in-process on a worker thread — bit-identical results, one code
path for the compute (:func:`~repro.serving.dispatch.compute_shard`).

Flow control is a bounded **in-flight arena budget**: request payloads
admit only while the bytes pinned in per-request arenas stay under
``max_inflight_bytes``; later requests wait (the TCP receive window
then pushes back on the client) instead of growing server memory.
Graceful shutdown drains in-flight requests, then releases every
worker's shared-memory attachments through the runner's end-of-run
broadcast and discards the installed basis.

``ServerThread`` runs the whole server on a private event loop in a
daemon thread — the harness the tests, the benchmark, the example and
the CI smoke job all share.  ``serve_forever`` is the blocking entry
behind ``repro serve``.
"""

from __future__ import annotations

import asyncio
import socket
import sys
import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Set

import numpy as np

from ..backend.batch import SpikeTrainBatch
from ..backend.shared import HAVE_SHARED_MEMORY, SharedArena
from ..errors import ProtocolError, ServingError
from ..hyperspace.basis import HyperspaceBasis
from ..noise.synthesis import make_rng
from ..orthogonator.demux import DemuxOrthogonator
from ..pipeline.runner import Runner
from ..spikes.generators import poisson_train
from ..units import paper_white_grid
from . import dispatch, protocol

__all__ = [
    "ServerConfig",
    "SpikeServer",
    "ServerThread",
    "build_serving_basis",
    "serve_forever",
]


@dataclass(frozen=True)
class ServerConfig:
    """Everything one serving process needs to know.

    The basis knobs (``seed``, ``basis_size``, ``source_isi_samples``,
    ``n_samples``) deterministically fix the hyperspace the server
    identifies against — the same synthesis path as the ``identify``
    experiment, so a client holding the same knobs can reproduce the
    server's basis exactly.  ``port`` 0 binds an ephemeral port
    (exposed as :attr:`SpikeServer.port` once started).
    """

    host: str = "127.0.0.1"
    port: int = 0
    seed: int = 2016
    basis_size: int = 16
    source_isi_samples: int = 28
    n_samples: int = 65536
    jobs: int = 1
    n_shards: int = 0  # per-request default: 0 → one shard per job
    max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES
    max_inflight_bytes: int = 256 * 1024 * 1024


def build_serving_basis(config: ServerConfig) -> HyperspaceBasis:
    """The server's reference basis, deterministic in the config knobs."""
    grid = paper_white_grid(n_samples=config.n_samples)
    rng = make_rng(config.seed)
    source = poisson_train(
        rate_hz=1.0 / (config.source_isi_samples * grid.dt),
        grid=grid,
        rng=rng,
    )
    output = DemuxOrthogonator.with_outputs(config.basis_size).transform(
        source
    )
    return HyperspaceBasis.from_orthogonator(output)


class _InflightBudget:
    """Async byte budget bounding the arenas pinned by live requests.

    Admission is FIFO: a waiter is admitted only when it is at the
    head of the arrival queue *and* its bytes fit — without the queue,
    a stream of small requests could starve a large one forever (each
    small acquire would slip into the headroom the large waiter is
    waiting for).
    """

    def __init__(self, max_bytes: int) -> None:
        self.max_bytes = int(max_bytes)
        self.in_flight = 0
        self._queue: Deque[int] = deque()
        self._next_ticket = 0
        self._condition: Optional[asyncio.Condition] = None

    @property
    def _changed(self) -> asyncio.Condition:
        # Created lazily inside the running loop: constructing an
        # asyncio primitive outside one misbinds on Python 3.9.
        if self._condition is None:
            self._condition = asyncio.Condition()
        return self._condition

    async def acquire(self, nbytes: int) -> None:
        """Wait until ``nbytes`` fits under the cap, then claim it.

        A single payload larger than the whole budget can never fit —
        that is rejected immediately as OVERLOADED instead of
        deadlocking the connection.
        """
        if nbytes > self.max_bytes:
            raise ServingError(
                protocol.ERR_OVERLOADED,
                f"request pins {nbytes} bytes, over the server's "
                f"{self.max_bytes}-byte in-flight budget",
            )
        async with self._changed:
            ticket = self._next_ticket
            self._next_ticket += 1
            self._queue.append(ticket)
            try:
                await self._changed.wait_for(
                    lambda: self._queue[0] == ticket
                    and self.in_flight + nbytes <= self.max_bytes
                )
            except BaseException:
                # Cancellation (a dropped connection) must not leave a
                # dead ticket blocking the queue head.
                self._queue.remove(ticket)
                self._changed.notify_all()
                raise
            self._queue.popleft()
            self.in_flight += nbytes
            self._changed.notify_all()

    async def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the budget and wake waiters."""
        async with self._changed:
            self.in_flight -= nbytes
            self._changed.notify_all()

    async def drained(self) -> None:
        """Block until no request bytes are in flight."""
        async with self._changed:
            await self._changed.wait_for(lambda: self.in_flight == 0)


class SpikeServer:
    """The packed-bitset RPC server (see the module docstring).

    Construct, ``await start()``, and either hold onto it (tests) or
    ``await`` :meth:`wait_closed`.  ``runner=None`` makes the server
    own a :class:`~repro.pipeline.runner.Runner` with ``config.jobs``
    workers and close it on shutdown; passing a runner shares an
    existing pool (the caller keeps ownership).
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        runner: Optional[Runner] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self._runner = runner
        self._owns_runner = runner is None
        self._server: Optional[asyncio.AbstractServer] = None
        self._basis: Optional[HyperspaceBasis] = None
        self._basis_token: Optional[str] = None
        self._budget = _InflightBudget(self.config.max_inflight_bytes)
        self._writers: Set[asyncio.StreamWriter] = set()
        self._closing = False
        self.requests_served = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``config.port == 0``)."""
        if self._server is None:
            raise ServingError(protocol.ERR_INTERNAL, "server not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def basis(self) -> HyperspaceBasis:
        """The reference basis requests are identified against."""
        if self._basis is None:
            raise ServingError(protocol.ERR_INTERNAL, "server not started")
        return self._basis

    def _use_pool(self) -> bool:
        """True when shards go to the worker pool (vs in-process)."""
        return (
            self._runner is not None
            and self._runner.jobs > 1
            and HAVE_SHARED_MEMORY
        )

    async def start(self) -> None:
        """Build the basis, warm the pool, bind the socket."""
        if self._runner is None:
            self._runner = Runner(jobs=self.config.jobs)
        self._basis = build_serving_basis(self.config)
        table = dispatch.export_basis(self._basis)
        self._basis_token = table.token
        # Install in this process first: a pool forked later inherits
        # the registry for free.  The broadcast covers pools that
        # already exist (shared runners) and spawn-based hosts.
        dispatch.install_basis(table)
        if self._use_pool():
            self._runner.broadcast(dispatch.install_basis, table)
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )

    async def wait_closed(self) -> None:
        """Block until the listening socket shuts down."""
        if self._server is not None:
            await self._server.wait_closed()

    async def close(self, drain_timeout: float = 30.0) -> None:
        """Graceful shutdown: drain, release worker attachments, stop.

        Stops accepting, waits up to ``drain_timeout`` seconds for
        in-flight requests (their arenas) to finish, closes the
        remaining connections, then broadcasts the basis discard and
        the end-of-run attachment release over the pool so workers
        drop every mapping of this serving session before the runner
        (if owned) tears down.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._budget.drained(), drain_timeout)
        except asyncio.TimeoutError:  # pragma: no cover - stuck shard
            pass
        for writer in list(self._writers):
            writer.close()
        if self._runner is not None:
            if self._use_pool() and self._basis_token is not None:
                try:
                    self._runner.broadcast(
                        dispatch.discard_basis, self._basis_token
                    )
                except Exception:  # pragma: no cover - dying pool
                    pass
            self._runner.release_worker_attachments()
            if self._owns_runner:
                self._runner.close()
        if self._basis_token is not None:
            dispatch.discard_basis(self._basis_token)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: frames in, response streams out.

        Requests on a connection are served in arrival order.  Framing
        errors (bad magic/version/length) poison the byte stream, so
        they answer with one error frame and drop the connection;
        request-level errors (bad grid, overload, a failing shard)
        answer with an error frame and keep the connection alive.
        """
        frames = protocol.FrameReader(self.config.max_frame_bytes)
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # Shard frames are small and latency-bound: never Nagle them.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._writers.add(writer)
        try:
            while not self._closing:
                data = await reader.read(1024 * 1024)
                if not data:
                    break
                try:
                    complete = frames.feed(data)
                except ProtocolError as exc:
                    await self._send(
                        writer, protocol.encode_error(0, exc.code, str(exc))
                    )
                    break
                for frame in complete:
                    await self._handle_frame(frame, writer)
                poison = frames.pending_error
                if poison is not None:
                    # Frames completed before the violation were served
                    # above; now answer the violation and drop the
                    # connection — the stream boundary is lost.
                    await self._send(
                        writer,
                        protocol.encode_error(0, poison.code, str(poison)),
                    )
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _send(self, writer: asyncio.StreamWriter, frame: bytes) -> None:
        """Write one encoded frame and respect the transport's flow control."""
        writer.write(frame)
        await writer.drain()

    async def _handle_frame(
        self, frame: protocol.Frame, writer: asyncio.StreamWriter
    ) -> None:
        """Parse, admit (budget), process and answer one request frame."""
        try:
            request = protocol.parse_request(frame)
        except ProtocolError as exc:
            await self._send(
                writer,
                protocol.encode_error(frame.request_id, exc.code, str(exc)),
            )
            return
        try:
            self._check_grid(request)
            await self._budget.acquire(request.packed.nbytes)
        except ServingError as exc:
            await self._send(
                writer,
                protocol.encode_error(request.request_id, exc.code, str(exc)),
            )
            return
        try:
            await self._process(request, writer)
            self.requests_served += 1
        except ServingError as exc:
            await self._send(
                writer,
                protocol.encode_error(request.request_id, exc.code, str(exc)),
            )
        except Exception as exc:  # noqa: BLE001 - must answer the client
            await self._send(
                writer,
                protocol.encode_error(
                    request.request_id,
                    protocol.ERR_INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                ),
            )
        finally:
            await self._budget.release(request.packed.nbytes)

    def _check_grid(self, request: protocol.Request) -> None:
        """Requests must live on the server basis's exact grid."""
        grid = self.basis.grid
        if request.n_samples != grid.n_samples or request.dt != grid.dt:
            raise ServingError(
                protocol.ERR_BAD_GRID,
                f"request grid (n_samples={request.n_samples}, "
                f"dt={request.dt}) does not match the serving basis grid "
                f"(n_samples={grid.n_samples}, dt={grid.dt})",
            )

    # ------------------------------------------------------------------
    # Request processing
    # ------------------------------------------------------------------

    def _shard_bounds(self, request: protocol.Request) -> np.ndarray:
        """Row boundaries of the request's shard plan.

        The requested shard count (0: the server default, itself
        defaulting to one shard per worker of the *runner actually
        dispatching* — which may be a shared runner with more jobs
        than the config names) is clamped to the wire count; like the
        pipeline's shard plans, the split depends only on the request,
        never on which workers pick the shards up.
        """
        pool_jobs = (
            self._runner.jobs if self._runner is not None else self.config.jobs
        )
        wanted = request.n_shards or self.config.n_shards or max(1, pool_jobs)
        n_shards = max(1, min(int(wanted), request.n_wires))
        return np.linspace(0, request.n_wires, n_shards + 1).astype(np.int64)

    async def _process(
        self, request: protocol.Request, writer: asyncio.StreamWriter
    ) -> None:
        """Run one admitted request and stream its response frames."""
        loop = asyncio.get_running_loop()
        started = loop.time()
        batch = SpikeTrainBatch.from_packed(request.packed, request.grid())
        bounds = self._shard_bounds(request)
        if self._use_pool():
            transport = "shared-arena"
            shards = await self._dispatch_pool(request, batch, bounds, writer)
        else:
            transport = "in-process"
            shards = await self._dispatch_inline(
                request, batch, bounds, writer
            )
        summary = {
            "kind": "done",
            "mode": request.mode,
            "n_wires": request.n_wires,
            "n_shards": len(shards),
            "labels": list(self.basis.labels),
            "transport": transport,
            "wall_seconds": loop.time() - started,
            "server_residency": {
                "packed": batch.packed_materialised,
                "csr": batch.csr_materialised,
                "raster": batch.raster_materialised,
            },
        }
        await self._send(
            writer,
            protocol.encode_json_frame(
                protocol.FRAME_DONE, request.request_id, summary
            ),
        )

    async def _dispatch_pool(self, request, batch, bounds, writer):
        """Shard over the worker pool through a per-request arena."""
        with SharedArena() as arena:
            handle = batch.to_shared(arena)
            pending = [
                self._runner.submit(
                    dispatch.run_shard,
                    dispatch.ShardTask(
                        token=self._basis_token,
                        wires=handle,
                        row_start=int(lo),
                        row_stop=int(hi),
                        mode=request.mode,
                        start_slot=request.start_slot,
                        limit=request.limit,
                    ),
                )
                for lo, hi in zip(bounds[:-1], bounds[1:])
            ]
            return await self._stream_shards(
                request, [lambda r=r: r.get() for r in pending], writer
            )
        # Arena closed here: segments unlink once the last worker
        # detaches (the runner's release broadcast covers shutdown).

    async def _dispatch_inline(self, request, batch, bounds, writer):
        """Run the same shards in-process, off the event loop."""
        jobs = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            rows = (
                batch
                if (lo, hi) == (0, request.n_wires)
                else batch.select_rows(np.arange(lo, hi))
            )
            jobs.append(
                lambda rows=rows, lo=int(lo), hi=int(hi): (
                    dispatch.compute_shard(
                        self.basis,
                        rows,
                        lo,
                        hi,
                        mode=request.mode,
                        start_slot=request.start_slot,
                        limit=request.limit,
                    )
                )
            )
        return await self._stream_shards(request, jobs, writer)

    async def _stream_shards(self, request, getters, writer):
        """Await each shard result off-loop and stream it as a frame."""
        shards = []
        for get in getters:
            payload = await asyncio.to_thread(get)
            payload["kind"] = "shard"
            shards.append(payload)
            await self._send(
                writer,
                protocol.encode_json_frame(
                    protocol.FRAME_SHARD, request.request_id, payload
                ),
            )
        return shards


class ServerThread:
    """A :class:`SpikeServer` on a private event loop in a daemon thread.

    The embedding harness shared by the tests, the benchmark, the
    example and the CI smoke job::

        with ServerThread(ServerConfig(n_samples=4096)) as handle:
            client = ServingClient(handle.host, handle.port)
            ...

    ``close()`` (or leaving the ``with`` block) performs the server's
    graceful shutdown and joins the thread.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        runner: Optional[Runner] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self._runner = runner
        self.server: Optional[SpikeServer] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.port: Optional[int] = None

    @property
    def host(self) -> str:
        """The configured bind host."""
        return self.config.host

    def start(self) -> "ServerThread":
        """Start the loop thread and block until the socket is bound."""
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-serving",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=60.0):
            raise ServingError(
                protocol.ERR_INTERNAL, "server thread failed to start in 60s"
            )
        if self._startup_error is not None:
            raise self._startup_error
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = SpikeServer(self.config, self._runner)
        try:
            await server.start()
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            self._startup_error = exc
            self._ready.set()
            return
        self.server = server
        self.port = server.port
        self._ready.set()
        await self._stop.wait()
        await server.close()

    def close(self) -> None:
        """Gracefully shut the server down and join the thread."""
        if self._thread is None or not self._thread.is_alive():
            return
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60.0)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


async def _serve_until_signal(config: ServerConfig, out) -> None:
    """Run one server until SIGINT/SIGTERM (or cancellation)."""
    import signal

    server = SpikeServer(config)
    await server.start()
    print(
        f"repro serve: listening on {config.host}:{server.port} "
        f"(M={config.basis_size}, n_samples={config.n_samples}, "
        f"jobs={config.jobs}, seed={config.seed})",
        file=out,
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    try:
        await stop.wait()
    finally:
        print("repro serve: shutting down", file=out, flush=True)
        await server.close()


def serve_forever(config: ServerConfig, out=sys.stdout) -> int:
    """Blocking entry point behind ``repro serve``."""
    try:
        asyncio.run(_serve_until_signal(config, out))
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    return 0
