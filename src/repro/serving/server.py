"""Asyncio serving front-end: stream packed-bitset wires into the shard pool.

:class:`SpikeServer` is the repo's network entry point — the layer the
ROADMAP called "stream wires into batches at an RPC boundary".  One
asyncio TCP server accepts length-prefixed protocol frames
(:mod:`repro.serving.protocol`), and each request flows through the
four existing layers without the payload ever unpacking to a raster:

1. the frame's bitset wraps as a *packed-primary*
   :class:`~repro.backend.batch.SpikeTrainBatch` (``from_packed`` —
   no CSR decode, no raster);
2. the batch exports into a per-request
   :class:`~repro.backend.shared.SharedArena`
   (``to_shared`` ships the word-aligned bitset; the row offsets come
   from a popcount pass, still no decode);
3. contiguous row-range :class:`~repro.serving.dispatch.ShardTask`\\ s
   dispatch onto the :class:`~repro.pipeline.runner.Runner`'s
   persistent pool (``Runner.submit``), where workers attach the
   mapped bitset and run the packed receiver kernels on it;
4. each shard's result streams back to the client as one JSON frame,
   in shard order as results complete (a slow early shard delays the
   later shards' *frames*, never their compute), followed by a summary
   frame recording wall time and the server batch's representation
   residency.

Single-job servers (or hosts without shared memory) run the same
shards in-process on a worker thread — bit-identical results, one code
path for the compute (:func:`~repro.serving.dispatch.compute_shard`).

Three hot-path optimisations sit in front of that sharded pipeline,
all serving bit-identical results through the same
:func:`~repro.serving.dispatch.compute_shard` core:

* **fast path** — a request smaller than ``fast_path_bytes`` that does
  not ask for explicit sharding skips the arena export, the pool
  dispatch *and* the in-flight byte budget: the payload wraps
  ``from_packed`` and computes directly, answering in one result
  frame (transport ``"fast-path"``).  The budget exists to bound
  bytes pinned in per-request arenas; a fast-path request pins
  nothing beyond its own frame, so counting it would let a burst of
  tiny requests spuriously starve (or OVERLOAD) real arena work.
* **pipelining** — each request frame is served by its own asyncio
  task, so many requests per connection are in flight concurrently
  and responses interleave by request id (every frame is written in
  one ``write()`` call, keeping frames atomic on the stream).
* **coalescing** — with ``coalesce_window > 0``, fast-path-sized
  requests whose scan headers match (mode, ``start_slot``,
  ``limit``; the grid is already checked) accumulate for up to the
  window and compute as *one* wide batch — one ``from_packed``, one
  receiver pass — then split back per request id (transport
  ``"coalesced"``).  Many small clients thus amortise into the wide
  batched operations the packed kernels are built for.

Flow control is a bounded **in-flight arena budget**: request payloads
admit to the sharded path only while the bytes pinned in per-request
arenas stay under ``max_inflight_bytes``; later requests wait (the TCP
receive window then pushes back on the client) instead of growing
server memory.  Graceful shutdown drains in-flight requests, then
releases every worker's shared-memory attachments through the runner's
end-of-run broadcast and discards the installed basis.

Every server keeps a :class:`ServerStats` — request counts per path,
coalesced batches, error count and a rolling latency window — served
to any client as a JSON ``STATS`` reply and printed as the
``repro serve`` shutdown summary.

``ServerThread`` runs the whole server on a private event loop in a
daemon thread — the harness the tests, the benchmark, the example and
the CI smoke job all share.  ``serve_forever`` is the blocking entry
behind ``repro serve``.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import pathlib
import socket
import sys
import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple

import numpy as np

from ..backend.batch import SpikeTrainBatch
from ..backend.shared import HAVE_SHARED_MEMORY, SharedArena
from ..errors import ProtocolError, ServingError
from ..hyperspace.basis import HyperspaceBasis
from ..noise.synthesis import make_rng
from ..orthogonator.demux import DemuxOrthogonator
from ..pipeline.corpus import CorpusStore
from ..pipeline.runner import Runner
from ..spikes.generators import poisson_train
from ..testing import faults
from ..units import paper_white_grid
from . import dispatch, log, protocol

__all__ = [
    "ServerConfig",
    "ServerStats",
    "SpikeServer",
    "ServerThread",
    "build_serving_basis",
    "serve_forever",
]


@dataclass(frozen=True)
class ServerConfig:
    """Everything one serving process needs to know.

    The basis knobs (``seed``, ``basis_size``, ``source_isi_samples``,
    ``n_samples``) deterministically fix the hyperspace the server
    identifies against — the same synthesis path as the ``identify``
    experiment, so a client holding the same knobs can reproduce the
    server's basis exactly.  ``port`` 0 binds an ephemeral port
    (exposed as :attr:`SpikeServer.port` once started).

    ``fast_path_bytes`` caps the payload size served inline without an
    arena or pool dispatch (0 disables the fast path entirely — every
    request takes the sharded pipeline).  ``coalesce_window`` > 0
    turns on request coalescing: fast-path-sized requests with equal
    scan headers buffer up to that many seconds (or until
    ``coalesce_max_wires`` rows accumulate) and compute as one wide
    batch.

    ``workers`` > 1 turns ``repro serve`` into a process cluster: that
    many server processes accept on **one** port (``SO_REUSEPORT``
    where the OS has it, a small front proxy otherwise) and report one
    aggregated STATS reply — see :mod:`repro.serving.cluster`.  A
    single :class:`SpikeServer` ignores the field.

    ``corpus`` names a :class:`~repro.pipeline.corpus.CorpusStore`
    directory to host read-only: the server then answers version-3
    ``FRAME_CORPUS_QUERY`` requests against it (by the directory's
    basename), computing chunk-at-a-time straight off the memmap —
    ``corpus_chunk_rows`` caps the rows any one chunk maps and
    therefore the peak working set of a corpus scan, no matter how
    many rows the query spans.  The corpus must live on the serving
    basis's exact grid (checked at startup).  Cluster workers each
    open their own read-only mapping of the same files; the OS page
    cache is shared between them for free.
    """

    host: str = "127.0.0.1"
    port: int = 0
    seed: int = 2016
    basis_size: int = 16
    source_isi_samples: int = 28
    n_samples: int = 65536
    jobs: int = 1
    n_shards: int = 0  # per-request default: 0 → one shard per job
    max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES
    max_inflight_bytes: int = 256 * 1024 * 1024
    fast_path_bytes: int = 4 * 1024 * 1024
    coalesce_window: float = 0.0  # seconds; 0 → coalescing off
    coalesce_max_wires: int = 4096
    workers: int = 1
    corpus: Optional[str] = None
    corpus_chunk_rows: int = 4096
    #: Seconds a connection may sit with no bytes arriving and no
    #: request in flight before the server closes it (0: never) — a
    #: dead client must not pin receive buffers forever.
    idle_timeout: float = 0.0
    #: Per-attempt timeout awaiting one pool shard's result.  The
    #: backstop for a hung worker; a *dead* worker is detected within
    #: a probe interval regardless (see
    #: :meth:`repro.pipeline.runner.Runner.await_result`).
    shard_timeout: float = 120.0
    #: Pool attempts for a lost shard before it degrades to in-process
    #: execution (:meth:`repro.pipeline.runner.Runner.submit_supervised`).
    shard_retries: int = 2


def build_serving_basis(config: ServerConfig) -> HyperspaceBasis:
    """The server's reference basis, deterministic in the config knobs."""
    grid = paper_white_grid(n_samples=config.n_samples)
    rng = make_rng(config.seed)
    source = poisson_train(
        rate_hz=1.0 / (config.source_isi_samples * grid.dt),
        grid=grid,
        rng=rng,
    )
    output = DemuxOrthogonator.with_outputs(config.basis_size).transform(
        source
    )
    return HyperspaceBasis.from_orthogonator(output)


class ServerStats:
    """Per-server counters plus a rolling latency window.

    Updated on the event loop only (no locking).  ``snapshot()`` is
    the JSON payload of a ``STATS`` reply; ``summary()`` is the
    one-line shutdown log.  Latency quantiles are computed over the
    last ``window`` request wall times (arrival to DONE frame written),
    so a long-running server reports current behaviour, not its whole
    history.
    """

    def __init__(self, window: int = 1024) -> None:
        self._reset_counters()
        self._latencies: Deque[float] = deque(maxlen=int(window))

    def _reset_counters(self) -> None:
        """Zero every counter; subclasses backed by shared memory that
        must survive a process respawn override this to preserve the
        predecessor's counts (cluster STATS stays monotonic)."""
        self.requests_served = 0
        self.fast_path_requests = 0
        self.pool_path_requests = 0
        self.coalesced_requests = 0
        self.coalesced_batches = 0
        self.errors = 0

    def record(self, transport: str, seconds: float) -> None:
        """Count one served request and its wall time."""
        self.requests_served += 1
        if transport == "fast-path":
            self.fast_path_requests += 1
        elif transport == "coalesced":
            self.coalesced_requests += 1
        else:
            self.pool_path_requests += 1
        self._latencies.append(float(seconds))

    def _quantile(self, q: float) -> Optional[float]:
        if not self._latencies:
            return None
        return float(np.quantile(np.asarray(self._latencies), q))

    def snapshot(self) -> dict:
        """The JSON-ready stats payload served to STATS requests."""
        return {
            "kind": "stats",
            "requests_served": self.requests_served,
            "fast_path_requests": self.fast_path_requests,
            "pool_path_requests": self.pool_path_requests,
            "coalesced_requests": self.coalesced_requests,
            "coalesced_batches": self.coalesced_batches,
            "errors": self.errors,
            "latency_window": len(self._latencies),
            "latency_p50_seconds": self._quantile(0.50),
            "latency_p99_seconds": self._quantile(0.99),
        }

    def summary(self) -> str:
        """One human line for the shutdown log."""
        p50 = self._quantile(0.50)
        p99 = self._quantile(0.99)
        latency = (
            f"p50={p50 * 1e3:.2f}ms p99={p99 * 1e3:.2f}ms "
            f"over last {len(self._latencies)}"
            if p50 is not None
            else "no latency samples"
        )
        return (
            f"served {self.requests_served} requests "
            f"({self.fast_path_requests} fast-path, "
            f"{self.pool_path_requests} pool, "
            f"{self.coalesced_requests} coalesced in "
            f"{self.coalesced_batches} batches), "
            f"{self.errors} errors, {latency}"
        )


class _Coalescer:
    """Short-window accumulator stacking small requests into one batch.

    Requests routed here buffer per bucket — keyed by the scan header
    ``(mode, start_slot, limit)``; the grid was already checked against
    the basis — until either ``window`` seconds pass since the bucket
    opened or ``max_wires`` rows accumulate.  A flush concatenates the
    buckets' packed payloads row-wise (still packed — no decode), runs
    **one** ``compute_shard`` over the wide batch off-loop, and splits
    the per-row result arrays back per request id.  Both receiver modes
    are row-independent, so the split results are bit-identical to
    per-request serial computes — the tests assert it.
    """

    def __init__(
        self, server: "SpikeServer", window: float, max_wires: int
    ) -> None:
        self._server = server
        self._window = float(window)
        self._max_wires = int(max_wires)
        self._buckets: Dict[tuple, List[Tuple[protocol.Request, asyncio.Future]]] = {}
        self._timers: Dict[tuple, asyncio.TimerHandle] = {}
        self._flushes: Set[asyncio.Task] = set()

    async def submit(self, request: protocol.Request) -> dict:
        """Buffer one request; resolves to its slice of the batch result."""
        loop = asyncio.get_running_loop()
        key = (request.mode, request.start_slot, request.limit)
        future: asyncio.Future = loop.create_future()
        bucket = self._buckets.setdefault(key, [])
        bucket.append((request, future))
        if sum(r.n_wires for r, _ in bucket) >= self._max_wires:
            self._flush_now(key)
        elif len(bucket) == 1:
            self._timers[key] = loop.call_later(
                self._window, self._flush_now, key
            )
        return await future

    def _flush_now(self, key: tuple) -> None:
        """Detach one bucket and start its flush task."""
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        bucket = self._buckets.pop(key, None)
        if not bucket:
            return
        task = asyncio.create_task(self._flush(key, bucket))
        self._flushes.add(task)
        task.add_done_callback(self._flushes.discard)

    async def _flush(self, key, bucket) -> None:
        mode, start_slot, limit = key
        try:
            rows = [request.packed for request, _ in bucket]
            packed = rows[0] if len(rows) == 1 else np.concatenate(rows)
            batch = SpikeTrainBatch.from_packed(
                packed, self._server.basis.grid
            )
            n_total = int(packed.shape[0])
            if packed.nbytes <= self._server.config.fast_path_bytes:
                # Micro-batches are fast-path-sized by construction:
                # the receiver pass is cheaper than a thread handoff
                # (the same trade the fast path makes), so compute
                # inline on the loop.
                payload = dispatch.compute_shard(
                    self._server.basis,
                    batch,
                    0,
                    n_total,
                    mode=mode,
                    start_slot=start_slot,
                    limit=limit,
                )
            else:
                payload = await asyncio.to_thread(
                    dispatch.compute_shard,
                    self._server.basis,
                    batch,
                    0,
                    n_total,
                    mode=mode,
                    start_slot=start_slot,
                    limit=limit,
                )
            self._server.stats.coalesced_batches += 1
            lo = 0
            for request, future in bucket:
                hi = lo + request.n_wires
                if not future.done():
                    future.set_result(self._slice(payload, mode, lo, hi))
                lo = hi
        except Exception as exc:  # noqa: BLE001 - handed to each waiter
            for _, future in bucket:
                if not future.done():
                    future.set_exception(exc)

    @staticmethod
    def _slice(payload: dict, mode: str, lo: int, hi: int) -> dict:
        """One request's rows of the wide batch payload, re-rooted at 0."""
        fields = (
            ("elements", "decision_slots", "spikes_inspected")
            if mode == "identify"
            else ("membership", "first_slots")
        )
        sub = {field: payload[field][lo:hi] for field in fields}
        sub.update(
            row_start=0,
            row_stop=hi - lo,
            wall_seconds=payload["wall_seconds"],
            residency=payload["residency"],
        )
        return sub

    async def close(self) -> None:
        """Flush everything buffered and wait for the flush tasks."""
        for key in list(self._buckets):
            self._flush_now(key)
        while self._flushes:
            await asyncio.gather(
                *list(self._flushes), return_exceptions=True
            )


class _InflightBudget:
    """Async byte budget bounding the arenas pinned by live requests.

    Admission is FIFO: a waiter is admitted only when it is at the
    head of the arrival queue *and* its bytes fit — without the queue,
    a stream of small requests could starve a large one forever (each
    small acquire would slip into the headroom the large waiter is
    waiting for).
    """

    def __init__(self, max_bytes: int) -> None:
        self.max_bytes = int(max_bytes)
        self.in_flight = 0
        self._queue: Deque[int] = deque()
        self._next_ticket = 0
        self._condition: Optional[asyncio.Condition] = None

    @property
    def _changed(self) -> asyncio.Condition:
        # Created lazily inside the running loop: constructing an
        # asyncio primitive outside one misbinds on Python 3.9.
        if self._condition is None:
            self._condition = asyncio.Condition()
        return self._condition

    async def acquire(self, nbytes: int) -> None:
        """Wait until ``nbytes`` fits under the cap, then claim it.

        A single payload larger than the whole budget can never fit —
        that is rejected immediately as OVERLOADED instead of
        deadlocking the connection.
        """
        if nbytes > self.max_bytes:
            raise ServingError(
                protocol.ERR_OVERLOADED,
                f"request pins {nbytes} bytes, over the server's "
                f"{self.max_bytes}-byte in-flight budget",
            )
        async with self._changed:
            ticket = self._next_ticket
            self._next_ticket += 1
            self._queue.append(ticket)
            try:
                await self._changed.wait_for(
                    lambda: self._queue[0] == ticket
                    and self.in_flight + nbytes <= self.max_bytes
                )
            except BaseException:
                # Cancellation (a dropped connection) must not leave a
                # dead ticket blocking the queue head.
                self._queue.remove(ticket)
                self._changed.notify_all()
                raise
            self._queue.popleft()
            self.in_flight += nbytes
            self._changed.notify_all()

    async def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the budget and wake waiters."""
        async with self._changed:
            self.in_flight -= nbytes
            self._changed.notify_all()

    async def drained(self) -> None:
        """Block until no request bytes are in flight."""
        async with self._changed:
            await self._changed.wait_for(lambda: self.in_flight == 0)


class _Connection(asyncio.BufferedProtocol):
    """One accepted connection: transport bytes straight into frames.

    A hand-rolled :class:`asyncio.BufferedProtocol` instead of the
    stream reader/writer pair: the transport ``recv_into``\\ s the
    :class:`~repro.serving.protocol.FrameReader`'s own buffers, so a
    large request's payload lands **in place** in an exact-size frame
    buffer — zero user-space copies between the socket and
    ``np.frombuffer``, where the stream-reader path cost three (stream
    buffer append, ``read()`` slice, join) plus small-chunk reads.
    At multi-megabyte requests that copy tax was a measurable slice of
    the serving overhead this module exists to delete.

    Connections are **pipelined**: every complete frame starts its own
    task, so a connection may have many requests in flight and
    response frames from different requests interleave — each carries
    its request id, and each is written atomically (one ``write()``
    per frame).  Framing errors (bad magic / version / length) poison
    the byte stream: in-flight requests finish answering, then one
    connection-scope error frame (request id 0, stamped version 1 so
    every client decodes it) closes the connection.  Request-level
    errors are answered upstream and keep the connection alive.

    The object doubles as the writer handed to the request handlers:
    ``write``/``drain`` front the transport with its high-water flow
    control, and ``close``/``wait_closed``/``get_extra_info`` mirror
    the ``StreamWriter`` surface the shutdown path expects.
    """

    def __init__(self, server: "SpikeServer") -> None:
        self._server = server
        self._frames = protocol.FrameReader(server.config.max_frame_bytes)
        self._transport: Optional[asyncio.Transport] = None
        self._tasks: Set[asyncio.Task] = set()
        self._can_write = asyncio.Event()
        self._can_write.set()
        self._closed = asyncio.get_running_loop().create_future()
        self._poisoned = False
        self._idle_timer: Optional[asyncio.TimerHandle] = None

    # -- transport callbacks -------------------------------------------

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self._transport = transport
        sock = transport.get_extra_info("socket")
        if sock is not None:
            # Shard frames are small and latency-bound: never Nagle them.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # Multi-megabyte requests should fit the kernel buffer in
            # one piece: every extra exchange is a scheduler round trip
            # between the client and this loop.
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_RCVBUF, 4 * 1024 * 1024
            )
        self._server._writers.add(self)
        self._touch_idle()

    def get_buffer(self, sizehint: int) -> memoryview:
        return self._frames.get_buffer(sizehint)

    def buffer_updated(self, nbytes: int) -> None:
        self._touch_idle()
        if self._poisoned:
            return
        try:
            complete = self._frames.buffer_updated(nbytes)
        except ProtocolError as exc:
            self._poison(exc)
            return
        for frame in complete:
            self._spawn(self._server._handle_frame(frame, self))
        poison = self._frames.pending_error
        if poison is not None:
            self._poison(poison)

    def eof_received(self) -> bool:
        # Half-close: the client is done sending but still expects the
        # responses for requests already in flight.
        self._spawn(self._finish_and_close())
        return True

    def connection_lost(self, exc: Optional[Exception]) -> None:
        if self._idle_timer is not None:
            self._idle_timer.cancel()
            self._idle_timer = None
        self._server._writers.discard(self)
        self._can_write.set()  # unblock drains; they raise on the check
        if not self._closed.done():
            self._closed.set_result(None)

    # -- idle-connection reaping ---------------------------------------

    def _touch_idle(self) -> None:
        """(Re)arm the idle timer: bytes arrived or the check deferred."""
        timeout = self._server.config.idle_timeout
        if timeout <= 0:
            return
        if self._idle_timer is not None:
            self._idle_timer.cancel()
        self._idle_timer = asyncio.get_running_loop().call_later(
            timeout, self._idle_expired
        )

    def _idle_expired(self) -> None:
        """Close the connection unless a request is still in flight.

        A slow *response* (long shard compute, flow-controlled write)
        keeps its task alive — only a connection with nothing in
        flight and nothing arriving is dead weight pinning its receive
        buffers, which is exactly what the timeout exists to reap.
        """
        self._idle_timer = None
        if self._tasks:
            self._touch_idle()
            return
        self.close()

    def pause_writing(self) -> None:
        self._can_write.clear()

    def resume_writing(self) -> None:
        self._can_write.set()

    # -- frame dispatch ------------------------------------------------

    def _spawn(self, coro) -> None:
        task = asyncio.create_task(coro)
        self._tasks.add(task)
        self._server._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        task.add_done_callback(self._server._tasks.discard)

    def _poison(self, exc: ProtocolError) -> None:
        self._poisoned = True
        self._spawn(self._answer_poison(exc))

    async def _answer_poison(self, exc: ProtocolError) -> None:
        # Frames completed before the violation are already in flight;
        # let them answer, then report the violation and drop the
        # connection — the stream boundary is lost.
        await self._settle()
        try:
            self.write(
                protocol.encode_error(0, exc.code, str(exc), version=1)
            )
            await self.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        self.close()

    async def _finish_and_close(self) -> None:
        await self._settle()
        self.close()

    async def _settle(self) -> None:
        """Wait for every other in-flight task on this connection."""
        while True:
            others = self._tasks - {asyncio.current_task()}
            if not others:
                return
            await asyncio.gather(*others, return_exceptions=True)

    # -- the writer surface handed to request handlers -----------------

    def write(self, data: bytes) -> None:
        if self._transport is None or self._transport.is_closing():
            raise ConnectionResetError("connection is closed")
        self._transport.write(data)

    async def drain(self) -> None:
        await self._can_write.wait()
        if self._transport is None or self._transport.is_closing():
            raise ConnectionResetError("connection is closed")

    def close(self) -> None:
        if self._transport is not None:
            self._transport.close()

    async def wait_closed(self) -> None:
        await self._closed

    def get_extra_info(self, name: str, default=None):
        if self._transport is None:
            return default
        return self._transport.get_extra_info(name, default)


class SpikeServer:
    """The packed-bitset RPC server (see the module docstring).

    Construct, ``await start()``, and either hold onto it (tests) or
    ``await`` :meth:`wait_closed`.  ``runner=None`` makes the server
    own a :class:`~repro.pipeline.runner.Runner` with ``config.jobs``
    workers and close it on shutdown; passing a runner shares an
    existing pool (the caller keeps ownership).
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        runner: Optional[Runner] = None,
        *,
        sock=None,
        stats: Optional[ServerStats] = None,
        stats_aggregator=None,
        basis: Optional[HyperspaceBasis] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self._runner = runner
        self._owns_runner = runner is None
        self._server: Optional[asyncio.AbstractServer] = None
        self._basis: Optional[HyperspaceBasis] = basis
        self._basis_token: Optional[str] = None
        self._budget = _InflightBudget(self.config.max_inflight_bytes)
        self._writers: Set["_Connection"] = set()
        self._tasks: Set[asyncio.Task] = set()
        self._coalescer: Optional[_Coalescer] = None
        self._closing = False
        # The cluster tier injects all three: a pre-bound SO_REUSEPORT
        # socket (every worker accepts on one port), a stats object
        # mirroring into the cluster's shared block, and the aggregator
        # answering cluster-scope STATS from that block.
        self._sock = sock
        self.stats = stats if stats is not None else ServerStats()
        self._stats_aggregator = stats_aggregator
        self._corpus = None  # CorpusStore once start() opens config.corpus
        self._corpus_name: Optional[str] = None

    @property
    def requests_served(self) -> int:
        """Total requests answered successfully (all transports)."""
        return self.stats.requests_served

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``config.port == 0``)."""
        if self._server is None:
            raise ServingError(protocol.ERR_INTERNAL, "server not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def basis(self) -> HyperspaceBasis:
        """The reference basis requests are identified against."""
        if self._basis is None:
            raise ServingError(protocol.ERR_INTERNAL, "server not started")
        return self._basis

    def _use_pool(self) -> bool:
        """True when shards go to the worker pool (vs in-process)."""
        return (
            self._runner is not None
            and self._runner.jobs > 1
            and HAVE_SHARED_MEMORY
        )

    async def start(self) -> None:
        """Build the basis, warm the pool, bind the socket."""
        if self._runner is None:
            self._runner = Runner(jobs=self.config.jobs)
        if self._basis is None:
            # Cluster workers inject a basis attached from the shared
            # startup arena instead of re-running the synthesis.
            self._basis = build_serving_basis(self.config)
        table = dispatch.export_basis(self._basis)
        self._basis_token = table.token
        # Install in this process first: a pool forked later inherits
        # the registry for free.  The broadcast covers pools that
        # already exist (shared runners) and spawn-based hosts.
        dispatch.install_basis(table)
        if self._use_pool():
            self._runner.broadcast(dispatch.install_basis, table)
        if self.config.corpus is not None:
            self._open_corpus()
        if self.config.coalesce_window > 0:
            self._coalescer = _Coalescer(
                self,
                self.config.coalesce_window,
                self.config.coalesce_max_wires,
            )
        loop = asyncio.get_running_loop()
        if self._sock is not None:
            self._server = await loop.create_server(
                lambda: _Connection(self), sock=self._sock
            )
        else:
            self._server = await loop.create_server(
                lambda: _Connection(self), self.config.host, self.config.port
            )

    def _open_corpus(self) -> None:
        """Open the configured corpus read-only and pin its identity.

        Startup-time validation: the corpus must live on the serving
        basis's exact grid, so a query can never silently score mapped
        rows against a basis from a different geometry.  The corpus is
        addressed by its directory basename in ``FRAME_CORPUS_QUERY``
        frames (also advertised in PONG replies).
        """
        root = pathlib.Path(self.config.corpus)
        store = CorpusStore(root)
        grid = self.basis.grid
        corpus_grid = store.grid()
        if corpus_grid != grid:
            raise ServingError(
                protocol.ERR_BAD_GRID,
                f"corpus at {root} lives on n_samples="
                f"{corpus_grid.n_samples}, dt={corpus_grid.dt}; the serving "
                f"basis needs n_samples={grid.n_samples}, dt={grid.dt}",
            )
        self._corpus = store
        self._corpus_name = root.name

    @property
    def corpus_name(self) -> Optional[str]:
        """Name the hosted corpus answers to (None: no corpus hosted)."""
        return self._corpus_name

    async def wait_closed(self) -> None:
        """Block until the listening socket shuts down."""
        if self._server is not None:
            await self._server.wait_closed()

    async def close(self, drain_timeout: float = 30.0) -> None:
        """Graceful shutdown: drain, release worker attachments, stop.

        Stops accepting, waits up to ``drain_timeout`` seconds for
        in-flight requests (their arenas) to finish — then **forcibly
        cancels** whatever is still running (logging a summary of what
        was cut down) rather than leaking stuck tasks: shutdown must
        terminate even when a request hangs.  Closes the remaining
        connections, then broadcasts the basis discard and the
        end-of-run attachment release over the pool so workers drop
        every mapping of this serving session before the runner (if
        owned) tears down.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._coalescer is not None:
            await self._coalescer.close()
        if self._tasks:
            _done, stuck = await asyncio.wait(
                list(self._tasks), timeout=drain_timeout
            )
            if stuck:
                # Forced cancel: a request that did not finish inside
                # the drain window is cut down so shutdown terminates;
                # its budget bytes release through the cancel's finally.
                for task in stuck:
                    task.cancel()
                await asyncio.gather(*stuck, return_exceptions=True)
                log.get_logger("server").warning(
                    "shutdown drain expired after %.1fs: force-cancelled "
                    "%d in-flight request task(s)",
                    drain_timeout,
                    len(stuck),
                )
        try:
            await asyncio.wait_for(self._budget.drained(), drain_timeout)
        except asyncio.TimeoutError:
            log.get_logger("server").warning(
                "shutdown proceeding with %d byte(s) still pinned in the "
                "in-flight budget (stuck shard work)",
                self._budget.in_flight,
            )
        for writer in list(self._writers):
            writer.close()
        if self._runner is not None:
            if self._use_pool() and self._basis_token is not None:
                try:
                    self._runner.broadcast(
                        dispatch.discard_basis, self._basis_token
                    )
                except Exception:  # pragma: no cover - dying pool
                    pass
            self._runner.release_worker_attachments()
            if self._owns_runner:
                self._runner.close()
        if self._basis_token is not None:
            dispatch.discard_basis(self._basis_token)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _send(self, writer: "_Connection", frame: bytes) -> None:
        """Write one encoded frame and respect the transport's flow control."""
        fault = faults.maybe_fire("serving.send_frame")
        if fault is not None and fault.action == "truncate":
            # Chaos harness: deliver a prefix of the frame and drop the
            # connection — the mid-write crash a client must survive.
            writer.write(bytes(frame[: fault.param_int]))
            writer.close()
            raise ConnectionResetError("fault injected: frame truncated")
        writer.write(frame)
        await writer.drain()

    async def _handle_frame(
        self, frame: protocol.Frame, writer: "_Connection"
    ) -> None:
        """Parse, route, process and answer one frame.

        Only the sharded route passes through the in-flight byte
        budget: fast-path and coalesced requests never pin an arena,
        so charging them would let a burst of tiny requests queue
        behind (or spuriously OVERLOAD) real arena work.
        """
        if frame.frame_type == protocol.FRAME_STATS:
            # Clustered workers answer cluster-wide counters unless the
            # client explicitly asked for this worker's ("local").  A
            # plain server has no aggregator and always answers itself.
            scope = protocol.stats_scope(frame)
            if self._stats_aggregator is not None and scope != "local":
                payload = self._stats_aggregator()
            else:
                payload = self.stats.snapshot()
            await self._send(
                writer,
                protocol.encode_json_frame(
                    protocol.FRAME_STATS_REPLY,
                    frame.request_id,
                    payload,
                    version=frame.version,
                ),
            )
            return
        if frame.frame_type == protocol.FRAME_PING:
            # The load-balancer probe: answered inline on the event
            # loop, no compute, no pool, no aggregation — a server that
            # answers PONG is accepting and parsing frames.  The reply
            # advertises the hosted corpus (if any) so a probe doubles
            # as discovery.
            await self._send(
                writer,
                protocol.encode_json_frame(
                    protocol.FRAME_PONG,
                    frame.request_id,
                    {
                        "kind": "pong",
                        "ready": not self._closing,
                        "protocol_version": protocol.PROTOCOL_VERSION,
                        "corpus": self._corpus_name,
                        "corpus_rows": (
                            self._corpus.n_rows
                            if self._corpus is not None
                            else None
                        ),
                    },
                    version=frame.version,
                ),
            )
            return
        if self._closing:
            # A typed refusal instead of silence: the request is
            # retryable by definition (it never started computing), and
            # answering it is what lets a client fail over to a healthy
            # worker instead of hanging until its own timeout.
            try:
                await self._send(
                    writer,
                    protocol.encode_error(
                        frame.request_id,
                        protocol.ERR_RETRYABLE,
                        "server is draining for shutdown; retry the request",
                        version=frame.version,
                    ),
                )
            except (ConnectionResetError, BrokenPipeError):
                pass
            return
        faults.maybe_fire("serving.handle_frame")
        if frame.frame_type == protocol.FRAME_CORPUS_QUERY:
            await self._handle_corpus_query(frame, writer)
            return
        if frame.frame_type == protocol.FRAME_LOGICNET:
            await self._handle_logicnet(frame, writer)
            return
        try:
            request = protocol.parse_request(frame)
        except ProtocolError as exc:
            self.stats.errors += 1
            await self._send(
                writer,
                protocol.encode_error(
                    frame.request_id, exc.code, str(exc), version=frame.version
                ),
            )
            return
        deadline = self._deadline_at(request.deadline_ms)
        try:
            self._check_grid(request)
            transport = self._route(request)
            if transport == "sharded":
                await self._acquire_budget(request.packed.nbytes, deadline)
                try:
                    await self._process(request, writer, deadline)
                finally:
                    await self._budget.release(request.packed.nbytes)
            elif transport == "coalesced":
                self._check_deadline(deadline, "before coalescing")
                await self._process_coalesced(request, writer)
            else:
                self._check_deadline(deadline, "before compute")
                await self._process_fast(request, writer)
        except (ConnectionResetError, BrokenPipeError):
            raise
        except ServingError as exc:
            self.stats.errors += 1
            await self._send(
                writer,
                protocol.encode_error(
                    request.request_id,
                    exc.code,
                    str(exc),
                    version=request.version,
                ),
            )
        except Exception as exc:  # noqa: BLE001 - must answer the client
            self.stats.errors += 1
            await self._send(
                writer,
                protocol.encode_error(
                    request.request_id,
                    protocol.ERR_INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                    version=request.version,
                ),
            )

    def _route(self, request: protocol.Request) -> str:
        """Pick the transport for one admitted request.

        Explicit sharding (a nonzero request or config shard count)
        always takes the sharded pipeline; below that, payloads within
        ``fast_path_bytes`` go to the coalescer when one is running,
        else straight to the fast path.
        """
        wants_shards = bool(request.n_shards or self.config.n_shards)
        if wants_shards or request.packed.nbytes > self.config.fast_path_bytes:
            return "sharded"
        if (
            self._coalescer is not None
            and request.n_wires <= self.config.coalesce_max_wires
        ):
            return "coalesced"
        return "fast-path"

    def _check_grid(self, request: protocol.Request) -> None:
        """Requests must live on the server basis's exact grid."""
        grid = self.basis.grid
        if request.n_samples != grid.n_samples or request.dt != grid.dt:
            raise ServingError(
                protocol.ERR_BAD_GRID,
                f"request grid (n_samples={request.n_samples}, "
                f"dt={request.dt}) does not match the serving basis grid "
                f"(n_samples={grid.n_samples}, dt={grid.dt})",
            )

    # ------------------------------------------------------------------
    # Deadlines (protocol version 4)
    # ------------------------------------------------------------------

    @staticmethod
    def _deadline_at(deadline_ms: int) -> Optional[float]:
        """The request's absolute loop-time deadline (None: none).

        The budget starts the moment the server looks at the request —
        client and server clocks are never compared, only the duration
        crosses the wire.
        """
        if not deadline_ms:
            return None
        return asyncio.get_running_loop().time() + deadline_ms / 1000.0

    @staticmethod
    def _check_deadline(deadline: Optional[float], where: str) -> None:
        """Abandon the request once its deadline passed.

        Called between pipeline stages (never inside a kernel): expired
        work stops at the next stage boundary, its budget bytes release
        through the caller's ``finally``, and the client gets the typed
        :data:`~repro.serving.protocol.ERR_DEADLINE` instead of a
        result it has stopped waiting for.
        """
        if (
            deadline is not None
            and asyncio.get_running_loop().time() >= deadline
        ):
            raise ServingError(
                protocol.ERR_DEADLINE, f"request deadline expired {where}"
            )

    async def _acquire_budget(
        self, nbytes: int, deadline: Optional[float]
    ) -> None:
        """Budget admission bounded by the request deadline.

        A request whose deadline expires while *queued* is the cheapest
        possible deadline miss — nothing was computed, nothing pinned
        (the cancelled acquire retracts its ticket), and the waiters
        behind it move up.
        """
        if deadline is None:
            await self._budget.acquire(nbytes)
            return
        remaining = deadline - asyncio.get_running_loop().time()
        if remaining > 0:
            try:
                await asyncio.wait_for(
                    self._budget.acquire(nbytes), remaining
                )
                return
            except asyncio.TimeoutError:
                pass
        raise ServingError(
            protocol.ERR_DEADLINE,
            "request deadline expired waiting for the in-flight budget",
        )

    # ------------------------------------------------------------------
    # Request processing
    # ------------------------------------------------------------------

    def _shard_bounds(self, request: protocol.Request) -> np.ndarray:
        """Row boundaries of the request's shard plan.

        The requested shard count (0: the server default, itself
        defaulting to one shard per worker of the *runner actually
        dispatching* — which may be a shared runner with more jobs
        than the config names) is clamped to the wire count; like the
        pipeline's shard plans, the split depends only on the request,
        never on which workers pick the shards up.
        """
        pool_jobs = (
            self._runner.jobs if self._runner is not None else self.config.jobs
        )
        wanted = request.n_shards or self.config.n_shards or max(1, pool_jobs)
        n_shards = max(1, min(int(wanted), request.n_wires))
        return np.linspace(0, request.n_wires, n_shards + 1).astype(np.int64)

    def _shard_frame(
        self, request: protocol.Request, payload: dict
    ) -> bytes:
        """Encode one shard payload in the request's negotiated version."""
        if request.version >= 2:
            return protocol.encode_result_frame(
                request.request_id,
                payload,
                mode=request.mode,
                version=request.version,
            )
        body = protocol.jsonable_payload(payload)
        body["kind"] = "shard"
        return protocol.encode_json_frame(
            protocol.FRAME_SHARD,
            request.request_id,
            body,
            version=request.version,
        )

    async def _send_done(
        self,
        request: protocol.Request,
        writer: "_Connection",
        *,
        transport: str,
        n_shards: int,
        wall_seconds: float,
        batch: SpikeTrainBatch,
    ) -> None:
        """Send the summary frame closing one request's response."""
        summary = {
            "kind": "done",
            "mode": request.mode,
            "n_wires": request.n_wires,
            "n_shards": n_shards,
            "labels": list(self.basis.labels),
            "transport": transport,
            "wall_seconds": wall_seconds,
            "server_residency": {
                "packed": batch.packed_materialised,
                "csr": batch.csr_materialised,
                "raster": batch.raster_materialised,
            },
        }
        # Recorded before the DONE frame leaves the process: a client
        # that holds the reply must find the request in the counters,
        # even when its next STATS lands on a clustered sibling.
        self.stats.record(transport, wall_seconds)
        await self._send(
            writer,
            protocol.encode_json_frame(
                protocol.FRAME_DONE,
                request.request_id,
                summary,
                version=request.version,
            ),
        )

    async def _process(
        self,
        request: protocol.Request,
        writer: "_Connection",
        deadline: Optional[float] = None,
    ) -> str:
        """Run one budget-admitted request through the sharded pipeline."""
        loop = asyncio.get_running_loop()
        started = loop.time()
        batch = SpikeTrainBatch.from_packed(request.packed, request.grid())
        bounds = self._shard_bounds(request)
        if self._use_pool():
            transport = "shared-arena"
            shards = await self._dispatch_pool(
                request, batch, bounds, writer, deadline
            )
        else:
            transport = "in-process"
            shards = await self._dispatch_inline(
                request, batch, bounds, writer, deadline
            )
        await self._send_done(
            request,
            writer,
            transport=transport,
            n_shards=len(shards),
            wall_seconds=loop.time() - started,
            batch=batch,
        )
        return transport

    async def _process_fast(
        self, request: protocol.Request, writer: "_Connection"
    ) -> None:
        """Serve one small request inline: no arena, no pool, no budget.

        The compute runs directly on the event loop — below the
        fast-path size cap a receiver pass is far cheaper than a
        thread handoff, and the packed kernels release no locks a
        worker thread could exploit anyway.
        """
        loop = asyncio.get_running_loop()
        started = loop.time()
        batch = SpikeTrainBatch.from_packed(request.packed, request.grid())
        payload = dispatch.compute_shard(
            self.basis,
            batch,
            0,
            request.n_wires,
            mode=request.mode,
            start_slot=request.start_slot,
            limit=request.limit,
        )
        # One drain covers both frames: the DONE send right after
        # flushes the pair in a single flow-control round trip.
        writer.write(self._shard_frame(request, payload))
        await self._send_done(
            request,
            writer,
            transport="fast-path",
            n_shards=1,
            wall_seconds=loop.time() - started,
            batch=batch,
        )

    async def _process_coalesced(
        self, request: protocol.Request, writer: "_Connection"
    ) -> None:
        """Serve one small request through the micro-batch accumulator."""
        loop = asyncio.get_running_loop()
        started = loop.time()
        payload = await self._coalescer.submit(request)
        # One drain covers both frames, exactly as on the fast path.
        writer.write(self._shard_frame(request, payload))
        # The response's residency is the *wide* batch's: the request's
        # rows were computed inside it, never as their own batch.
        summary = {
            "kind": "done",
            "mode": request.mode,
            "n_wires": request.n_wires,
            "n_shards": 1,
            "labels": list(self.basis.labels),
            "transport": "coalesced",
            "wall_seconds": loop.time() - started,
            "server_residency": payload["residency"],
        }
        # Same ordering contract as _send_done: count, then reply.
        self.stats.record("coalesced", summary["wall_seconds"])
        await self._send(
            writer,
            protocol.encode_json_frame(
                protocol.FRAME_DONE,
                request.request_id,
                summary,
                version=request.version,
            ),
        )

    # ------------------------------------------------------------------
    # Corpus queries (version 3)
    # ------------------------------------------------------------------

    async def _handle_corpus_query(
        self, frame: protocol.Frame, writer: "_Connection"
    ) -> None:
        """Parse, validate and serve one corpus-query frame."""
        try:
            query = protocol.parse_corpus_query(frame)
        except ProtocolError as exc:
            self.stats.errors += 1
            await self._send(
                writer,
                protocol.encode_error(
                    frame.request_id, exc.code, str(exc), version=frame.version
                ),
            )
            return
        try:
            self._check_corpus(query)
            await self._process_corpus(
                query, writer, self._deadline_at(query.deadline_ms)
            )
        except (ConnectionResetError, BrokenPipeError):
            raise
        except ServingError as exc:
            self.stats.errors += 1
            await self._send(
                writer,
                protocol.encode_error(
                    query.request_id,
                    exc.code,
                    str(exc),
                    version=query.version,
                ),
            )
        except Exception as exc:  # noqa: BLE001 - must answer the client
            self.stats.errors += 1
            await self._send(
                writer,
                protocol.encode_error(
                    query.request_id,
                    protocol.ERR_INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                    version=query.version,
                ),
            )

    def _check_corpus(self, query: protocol.CorpusQuery) -> None:
        """The query must name the hosted corpus and fit inside it."""
        if self._corpus is None:
            raise ServingError(
                protocol.ERR_NO_CORPUS,
                "this server hosts no corpus (start it with --corpus)",
            )
        if query.corpus != self._corpus_name:
            raise ServingError(
                protocol.ERR_NO_CORPUS,
                f"no corpus named {query.corpus!r} here "
                f"(hosting {self._corpus_name!r})",
            )
        if query.row_stop > self._corpus.n_rows:
            raise ServingError(
                protocol.ERR_BAD_FRAME,
                f"row range [{query.row_start}, {query.row_stop}) outside "
                f"corpus of {self._corpus.n_rows} rows",
            )

    def _corpus_bounds(self, query: protocol.CorpusQuery) -> np.ndarray:
        """Chunk boundaries of one corpus scan.

        At least enough chunks that none maps more than
        ``corpus_chunk_rows`` rows — the peak-memory contract — and at
        least as many as the client asked for; like the request shard
        plans, the split depends only on the query and the config.
        """
        n = query.n_wires
        chunk_rows = max(1, self.config.corpus_chunk_rows)
        budget_chunks = -(-n // chunk_rows)
        n_chunks = min(max(int(query.n_shards), budget_chunks, 1), n)
        return np.linspace(
            query.row_start, query.row_stop, n_chunks + 1
        ).astype(np.int64)

    def _compute_corpus_chunk(
        self, query: protocol.CorpusQuery, lo: int, hi: int
    ) -> dict:
        """Map one row window and run the receiver pass on it.

        Runs off-loop (``asyncio.to_thread``): the kernels compute
        straight on the mapped words, so this is where the file pages
        actually fault in — and the mapping is dropped with the chunk
        batch, keeping the scan's working set at one window.
        """
        rows = self._corpus.open_rows(lo, hi)
        return dispatch.compute_shard(
            self.basis,
            rows,
            lo,
            hi,
            mode=query.mode,
            start_slot=query.start_slot,
            limit=query.limit,
        )

    async def _process_corpus(
        self,
        query: protocol.CorpusQuery,
        writer: "_Connection",
        deadline: Optional[float] = None,
    ) -> None:
        """Stream one corpus query's chunks, then the DONE summary.

        Chunks are computed and written strictly one at a time: result
        frames reach the client as the scan advances (first results
        after one chunk, not after the whole range) and at no point is
        more than one window's pages plus one result frame in flight.
        The deadline is checked before each chunk — an expired scan
        stops mapping windows instead of burning the rest of the range.
        """
        loop = asyncio.get_running_loop()
        started = loop.time()
        bounds = self._corpus_bounds(query)
        residency = {"packed": False, "csr": False, "raster": False}
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            self._check_deadline(deadline, "while scanning the corpus")
            payload = await asyncio.to_thread(
                self._compute_corpus_chunk, query, int(lo), int(hi)
            )
            for key in residency:
                residency[key] |= bool(payload["residency"][key])
            await self._send(writer, self._shard_frame(query, payload))
        summary = {
            "kind": "done",
            "mode": query.mode,
            "n_wires": query.n_wires,
            "n_shards": len(bounds) - 1,
            "labels": list(self.basis.labels),
            "transport": "corpus-mmap",
            "wall_seconds": loop.time() - started,
            "server_residency": residency,
            "corpus": self._corpus_name,
            "row_start": query.row_start,
            "row_stop": query.row_stop,
        }
        # Same ordering contract as _send_done: count, then reply.
        self.stats.record("corpus-mmap", summary["wall_seconds"])
        await self._send(
            writer,
            protocol.encode_json_frame(
                protocol.FRAME_DONE,
                query.request_id,
                summary,
                version=query.version,
            ),
        )

    async def _handle_logicnet(
        self, frame: protocol.Frame, writer: "_Connection"
    ) -> None:
        """Parse, validate and serve one logicnet-query frame."""
        try:
            query = protocol.parse_logicnet_query(frame)
        except ProtocolError as exc:
            self.stats.errors += 1
            await self._send(
                writer,
                protocol.encode_error(
                    frame.request_id, exc.code, str(exc), version=frame.version
                ),
            )
            return
        try:
            self._check_logicnet(query)
            await self._process_logicnet(
                query, writer, self._deadline_at(query.deadline_ms)
            )
        except (ConnectionResetError, BrokenPipeError):
            raise
        except ServingError as exc:
            self.stats.errors += 1
            await self._send(
                writer,
                protocol.encode_error(
                    query.request_id,
                    exc.code,
                    str(exc),
                    version=query.version,
                ),
            )
        except Exception as exc:  # noqa: BLE001 - must answer the client
            self.stats.errors += 1
            await self._send(
                writer,
                protocol.encode_error(
                    query.request_id,
                    protocol.ERR_INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                    version=query.version,
                ),
            )

    #: Cap on evaluated gates per logicnet request (networks × depth ×
    #: gates) — bounds the packed working set the same way the frame
    #: size cap bounds bitset requests.
    _LOGICNET_MAX_GATES = 1 << 24

    def _check_logicnet(self, query: protocol.LogicNetQuery) -> None:
        """The query's shape must fit the server's compute budget."""
        total = query.n_networks * query.depth * query.n_gates
        if total > self._LOGICNET_MAX_GATES:
            raise ServingError(
                protocol.ERR_OVERLOADED,
                f"logicnet query evaluates {total} gates, over this "
                f"server's cap of {self._LOGICNET_MAX_GATES}; "
                f"split the network range across requests",
            )

    def _logicnet_bounds(self, query: protocol.LogicNetQuery) -> np.ndarray:
        """Shard boundaries of one logicnet query (network axis).

        A pure function of the query and the config, like every other
        shard plan — which is what keeps a served sweep bit-identical
        however many workers execute it.
        """
        n_shards = query.n_shards or self.config.n_shards or 1
        n_chunks = min(max(int(n_shards), 1), query.n_networks)
        return np.linspace(
            query.net_start, query.net_stop, n_chunks + 1
        ).astype(np.int64)

    async def _process_logicnet(
        self,
        query: protocol.LogicNetQuery,
        writer: "_Connection",
        deadline: Optional[float] = None,
    ) -> None:
        """Stream one logicnet query's shards, then the DONE summary.

        The request ships no payload, so there is no arena and no byte
        budget: each shard task is a few integers, and workers rebuild
        their networks from spawn keys against the basis they already
        hold installed.  Pool dispatch rides the same supervised
        getters as bitset shards — a killed worker's shard re-runs
        down the recovery ladder and the stream stays bit-identical.
        """
        loop = asyncio.get_running_loop()
        started = loop.time()
        bounds = self._logicnet_bounds(query)
        tasks = [
            dispatch.LogicNetShardTask(
                token=self._basis_token,
                seed=query.seed,
                n_gates=query.n_gates,
                depth=query.depth,
                net_start=int(lo),
                net_stop=int(hi),
            )
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
        if self._use_pool():
            transport = "seed-rebuild"
            pending = [
                self._runner.submit(dispatch.run_logicnet_shard, task)
                for task in tasks
            ]
            baseline = None
            if hasattr(self._runner, "worker_pids"):
                baseline = self._runner.worker_pids()
            getters = [
                lambda r=r, t=t, b=baseline: self._supervised_logicnet_get(
                    r, t, b
                )
                for r, t in zip(pending, tasks)
            ]
        else:
            transport = "in-process"
            getters = [
                lambda t=t: dispatch.compute_logicnet_shard(
                    self.basis,
                    seed=t.seed,
                    n_gates=t.n_gates,
                    depth=t.depth,
                    net_start=t.net_start,
                    net_stop=t.net_stop,
                )
                for t in tasks
            ]
        shards = await self._stream_shards(query, getters, writer, deadline)
        residency = {"packed": False, "csr": False, "raster": False}
        for payload in shards:
            for key in residency:
                residency[key] |= bool(payload["residency"][key])
        summary = {
            "kind": "done",
            "mode": query.mode,
            "n_networks": query.n_networks,
            "n_gates": query.n_gates,
            "depth": query.depth,
            "n_shards": len(shards),
            "labels": list(self.basis.labels),
            "transport": transport,
            "wall_seconds": loop.time() - started,
            "server_residency": residency,
            "row_start": query.net_start,
            "row_stop": query.net_stop,
        }
        # Same ordering contract as _send_done: count, then reply.
        self.stats.record(transport, summary["wall_seconds"])
        await self._send(
            writer,
            protocol.encode_json_frame(
                protocol.FRAME_DONE,
                query.request_id,
                summary,
                version=query.version,
            ),
        )

    def _supervised_logicnet_get(self, handle, task, baseline):
        """Logicnet twin of :meth:`_supervised_get` (same ladder)."""
        await_result = getattr(self._runner, "await_result", None)
        try:
            if await_result is not None:
                return await_result(
                    handle,
                    timeout=self.config.shard_timeout,
                    baseline=baseline,
                )
            return handle.get(self.config.shard_timeout)
        except (multiprocessing.TimeoutError, OSError, EOFError):
            recover = getattr(self._runner, "submit_supervised", None)
            if recover is None:
                return dispatch.run_logicnet_shard(task)
            return recover(
                dispatch.run_logicnet_shard,
                task,
                timeout=self.config.shard_timeout,
                retries=self.config.shard_retries,
            )

    async def _dispatch_pool(self, request, batch, bounds, writer, deadline):
        """Shard over the worker pool through a per-request arena.

        Each shard's getter is *supervised*: if its result times out or
        its worker dies mid-shard, the shard re-runs through the
        runner's supervision ladder (resubmit, pool restart, in-process
        floor) while the arena is still alive — so the recovered shard
        reads the same operands and the streamed results stay
        bit-identical to an undisturbed run.
        """
        with SharedArena() as arena:
            handle = batch.to_shared(arena)
            tasks = [
                dispatch.ShardTask(
                    token=self._basis_token,
                    wires=handle,
                    row_start=int(lo),
                    row_stop=int(hi),
                    mode=request.mode,
                    start_slot=request.start_slot,
                    limit=request.limit,
                )
                for lo, hi in zip(bounds[:-1], bounds[1:])
            ]
            pending = [
                self._runner.submit(dispatch.run_shard, task)
                for task in tasks
            ]
            baseline = None
            if hasattr(self._runner, "worker_pids"):
                baseline = self._runner.worker_pids()
            getters = [
                lambda r=r, t=t, b=baseline: self._supervised_get(r, t, b)
                for r, t in zip(pending, tasks)
            ]
            return await self._stream_shards(
                request, getters, writer, deadline
            )
        # Arena closed here: segments unlink once the last worker
        # detaches (the runner's release broadcast covers shutdown).

    def _supervised_get(self, handle, task, baseline):
        """One shard's result, recovered if its worker was lost.

        Runs off-loop (inside ``asyncio.to_thread``).  The fast signal
        is the runner's worker pid-set changing against ``baseline``;
        the backstop is ``shard_timeout``.  Either way the shard rides
        ``submit_supervised``'s ladder down to the in-process floor, so
        a served request never hangs on a dead pool.
        """
        await_result = getattr(self._runner, "await_result", None)
        try:
            if await_result is not None:
                return await_result(
                    handle,
                    timeout=self.config.shard_timeout,
                    baseline=baseline,
                )
            return handle.get(self.config.shard_timeout)
        except (multiprocessing.TimeoutError, OSError, EOFError):
            recover = getattr(self._runner, "submit_supervised", None)
            if recover is None:
                return dispatch.run_shard(task)
            return recover(
                dispatch.run_shard,
                task,
                timeout=self.config.shard_timeout,
                retries=self.config.shard_retries,
            )

    async def _dispatch_inline(self, request, batch, bounds, writer, deadline):
        """Run the same shards in-process, off the event loop."""
        jobs = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            rows = (
                batch
                if (lo, hi) == (0, request.n_wires)
                else batch.select_rows(np.arange(lo, hi))
            )
            jobs.append(
                lambda rows=rows, lo=int(lo), hi=int(hi): (
                    dispatch.compute_shard(
                        self.basis,
                        rows,
                        lo,
                        hi,
                        mode=request.mode,
                        start_slot=request.start_slot,
                        limit=request.limit,
                    )
                )
            )
        return await self._stream_shards(request, jobs, writer, deadline)

    async def _stream_shards(self, request, getters, writer, deadline=None):
        """Await each shard result off-loop and stream it as a frame.

        The deadline is checked between shards: once it passes, no
        further shard is awaited or streamed — the request fails with
        ``ERR_DEADLINE`` and its budget bytes release through the
        caller's ``finally``.
        """
        shards = []
        for get in getters:
            self._check_deadline(deadline, "while streaming shards")
            payload = await asyncio.to_thread(get)
            shards.append(payload)
            await self._send(writer, self._shard_frame(request, payload))
        return shards


class ServerThread:
    """A :class:`SpikeServer` on a private event loop in a daemon thread.

    The embedding harness shared by the tests, the benchmark, the
    example and the CI smoke job::

        with ServerThread(ServerConfig(n_samples=4096)) as handle:
            client = ServingClient(handle.host, handle.port)
            ...

    ``close()`` (or leaving the ``with`` block) performs the server's
    graceful shutdown and joins the thread.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        runner: Optional[Runner] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self._runner = runner
        self.server: Optional[SpikeServer] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.port: Optional[int] = None

    @property
    def host(self) -> str:
        """The configured bind host."""
        return self.config.host

    def start(self) -> "ServerThread":
        """Start the loop thread and block until the socket is bound."""
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-serving",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=60.0):
            raise ServingError(
                protocol.ERR_INTERNAL, "server thread failed to start in 60s"
            )
        if self._startup_error is not None:
            raise self._startup_error
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = SpikeServer(self.config, self._runner)
        try:
            await server.start()
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            self._startup_error = exc
            self._ready.set()
            return
        self.server = server
        self.port = server.port
        self._ready.set()
        await self._stop.wait()
        await server.close()

    def close(self) -> None:
        """Gracefully shut the server down and join the thread."""
        if self._thread is None or not self._thread.is_alive():
            return
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60.0)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


async def _serve_until_signal(config: ServerConfig, out) -> None:
    """Run one server until SIGINT/SIGTERM (or cancellation)."""
    import signal

    logger = log.configure(stream=out)
    server = SpikeServer(config)
    await server.start()
    logger.info(
        "repro serve: listening on %s:%d (M=%d, n_samples=%d, jobs=%d, "
        "seed=%d)",
        config.host,
        server.port,
        config.basis_size,
        config.n_samples,
        config.jobs,
        config.seed,
    )
    if server.corpus_name is not None:
        logger.info(
            "repro serve: hosting corpus %r (%d rows, chunk window %d rows)",
            server.corpus_name,
            server._corpus.n_rows,
            config.corpus_chunk_rows,
        )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    try:
        await stop.wait()
    finally:
        logger.info("repro serve: shutting down")
        await server.close()
        logger.info("repro serve: %s", server.stats.summary())


def serve_forever(config: ServerConfig, out=sys.stdout) -> int:
    """Blocking entry point behind ``repro serve``.

    ``config.workers > 1`` hands off to the multi-process cluster
    (:func:`repro.serving.cluster.serve_cluster`); otherwise one
    in-process server runs until a signal.
    """
    if config.workers > 1:
        from .cluster import serve_cluster

        return serve_cluster(config, out=out)
    try:
        asyncio.run(_serve_until_signal(config, out))
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    return 0
