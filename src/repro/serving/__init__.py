"""Serving layer: the packed-bitset RPC boundary over the shard pool.

The top of the stack documented in ``docs/architecture.md``:
:mod:`~repro.serving.protocol` defines the versioned binary frame
format whose request payload is the ``np.packbits`` bitset itself,
:mod:`~repro.serving.server` accepts those frames over asyncio TCP and
dispatches per-request ``(handle, row_range)`` shards onto the
:class:`~repro.pipeline.runner.Runner`'s persistent pool through
per-request :class:`~repro.backend.shared.SharedArena` exports,
:mod:`~repro.serving.dispatch` executes each shard on the mapped
bitset with the packed kernels, and :mod:`~repro.serving.client` is
the reference consumer.  End to end, a request's spike data exists
only in packed form — wire, arena and compute are the same bytes.

``repro serve`` (the CLI) runs :func:`~repro.serving.server.serve_forever`.
"""

from .client import IdentifyReply, MembershipReply, ServingClient
from .cluster import ServerCluster, serve_cluster
from .protocol import PROTOCOL_VERSION, FrameReader
from .server import (
    ServerConfig,
    ServerThread,
    SpikeServer,
    build_serving_basis,
    serve_forever,
)

__all__ = [
    "ServerConfig",
    "SpikeServer",
    "ServerThread",
    "ServerCluster",
    "build_serving_basis",
    "serve_forever",
    "serve_cluster",
    "ServingClient",
    "IdentifyReply",
    "MembershipReply",
    "PROTOCOL_VERSION",
    "FrameReader",
]
