"""Reference clients for the packed-bitset serving protocol.

:class:`ServingClient` is the canonical consumer of
:mod:`repro.serving.protocol` — a small blocking-socket client used by
the integration tests, ``benchmarks/bench_serving.py``,
``examples/serve_and_query.py`` and the CI smoke job, and the
copy-pasteable starting point documented in ``docs/serving.md``.
:class:`AsyncServingClient` is its asyncio sibling for **pipelined**
use: many requests in flight on one connection, responses demuxed by
request id as the server interleaves them.

Neither client ever touches spike indices: both take a
:class:`~repro.backend.batch.SpikeTrainBatch` (or an already-packed
bitset), frame its ``packbits`` transport form — packed straight from
the CSR, no raster, and handed to the socket as buffer views without
an intermediate concatenation copy — and merge the per-shard response
frames the server streams back into whole-batch result arrays.  By
default requests are stamped the current protocol version (3), so
results return as binary frames
(:func:`~repro.serving.protocol.parse_result_frame`); ``version=1``
selects the JSON response encoding, and the merged replies are
bit-identical either way.

Version 3 adds the *corpus* methods (``corpus_identify`` /
``corpus_membership``): instead of shipping a bitset, they name a
corpus the server hosts (``repro serve --corpus``) plus a row range,
and the server streams back chunk results computed straight off its
memmap — the reply merges exactly like a bitset request's.  Version 5
adds ``logicnet()``: a 20-byte query naming a seeded network family
and a network range; the server rebuilds and evaluates the networks
against its own basis and streams back per-network summaries.
``ping()`` is the one-frame health probe.

Usage::

    with ServingClient(host, port) as client:
        reply = client.identify(batch)
        reply.elements          # (N,) identified element per wire
        reply.shards            # per-shard payloads, wall times included
"""

from __future__ import annotations

import asyncio
import itertools
import random
import socket
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Union

import numpy as np

from ..backend.batch import SpikeTrainBatch
from ..errors import ConnectionLostError, ProtocolError, ServingError
from ..units import SimulationGrid
from . import protocol

__all__ = [
    "ServingClient",
    "AsyncServingClient",
    "RetryPolicy",
    "IdentifyReply",
    "MembershipReply",
    "LogicNetReply",
]


@dataclass(frozen=True)
class RetryPolicy:
    """When and how a client re-issues a failed request.

    Retries apply only to failures that are *typed retryable*: a
    :class:`~repro.errors.ServingError` whose
    :attr:`~repro.errors.ServingError.retryable` is True (the server
    said "try again" — draining, deadline pressure), a
    :class:`~repro.errors.ConnectionLostError` (the channel died, the
    request was never refuted), or an ``OSError``/``EOFError`` from the
    transport (reset, refused, timed out).  Structural failures — bad
    grids, malformed frames, unknown corpora — raise immediately; they
    would fail identically forever.

    Every request this library's clients issue is idempotent (pure
    reads of a deterministic function), so re-issuing is always safe;
    the policy still lives behind an explicit opt-in (``retry=``)
    because retrying multiplies worst-case latency.

    Delays follow capped exponential backoff with full-range jitter::

        delay(k) = uniform(0, min(max_delay, base_delay * factor**k))

    — the standard decorrelation so a fleet of clients that failed
    together does not reconnect together.
    """

    attempts: int = 3
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0

    def delay(self, retry_index: int) -> float:
        """The sleep before retry ``retry_index`` (0-based), jittered."""
        ceiling = min(
            float(self.max_delay),
            float(self.base_delay) * float(self.factor) ** retry_index,
        )
        return random.random() * ceiling


def _retryable(exc: BaseException) -> bool:
    """Is ``exc`` a failure a fresh attempt could outlive?"""
    if isinstance(exc, ServingError):
        return exc.retryable
    return isinstance(exc, (OSError, EOFError))


@dataclass(frozen=True)
class IdentifyReply:
    """A merged identify response.

    The arrays are the concatenation of the per-shard results in row
    order — the same triplet
    :class:`~repro.logic.correlator.BatchIdentification` carries, so
    equality against a local ``identify_batch`` run is one array
    compare.
    """

    elements: np.ndarray
    decision_slots: np.ndarray
    spikes_inspected: np.ndarray
    labels: List[str]
    shards: List[dict]
    summary: dict


@dataclass(frozen=True)
class MembershipReply:
    """A merged membership response (``(N, M)`` matrices, row order)."""

    membership: np.ndarray
    first_slots: np.ndarray
    labels: List[str]
    shards: List[dict]
    summary: dict


@dataclass(frozen=True)
class LogicNetReply:
    """A merged logicnet response (network order).

    ``popcounts`` is the ``(N, G)`` int64 matrix of output spike
    counts and ``checksums`` the ``(N,)`` uint64 XOR folds — the same
    summaries :meth:`~repro.logic.netbatch.LogicNetBatch.evaluate`
    returns locally, so served-vs-local equality is two array
    compares.
    """

    popcounts: np.ndarray
    checksums: np.ndarray
    labels: List[str]
    shards: List[dict]
    summary: dict


def _parse_response(frame: protocol.Frame) -> dict:
    """Decode one response frame's payload, either encoding."""
    if frame.frame_type == protocol.FRAME_RESULT:
        return protocol.parse_result_frame(frame)
    return protocol.parse_json_frame(frame)


def _raise_server_error(payload: dict) -> None:
    raise ServingError(
        int(payload.get("code", protocol.ERR_INTERNAL)),
        f"server error {payload.get('error', 'UNKNOWN')}: "
        f"{payload.get('message', '')}",
    )


def _identify_reply(shards: List[dict], summary: dict) -> IdentifyReply:
    return IdentifyReply(
        elements=_merged(shards, "elements"),
        decision_slots=_merged(shards, "decision_slots"),
        spikes_inspected=_merged(shards, "spikes_inspected"),
        labels=list(summary.get("labels", [])),
        shards=shards,
        summary=summary,
    )


def _membership_reply(shards: List[dict], summary: dict) -> MembershipReply:
    return MembershipReply(
        membership=_merged(shards, "membership").astype(bool),
        first_slots=_merged(shards, "first_slots"),
        labels=list(summary.get("labels", [])),
        shards=shards,
        summary=summary,
    )


def _logicnet_reply(shards: List[dict], summary: dict) -> LogicNetReply:
    n_gates = int(summary.get("n_gates", 0))
    if shards:
        popcounts = np.concatenate(
            [np.asarray(s["popcounts"], dtype=np.int64) for s in shards]
        )
        checksums = np.concatenate(
            [np.asarray(s["checksums"], dtype=np.uint64) for s in shards]
        )
    else:
        popcounts = np.empty((0, n_gates), dtype=np.int64)
        checksums = np.empty(0, dtype=np.uint64)
    return LogicNetReply(
        popcounts=popcounts,
        checksums=checksums,
        labels=list(summary.get("labels", [])),
        shards=shards,
        summary=summary,
    )


class ServingClient:
    """Blocking client for one serving endpoint.

    One TCP connection, reused across requests; close with
    :meth:`close` or a ``with`` block.  Not thread-safe — use one
    client per thread (the benchmark does exactly that).  ``version``
    selects the response encoding the server answers with (2+: binary
    result frames — 3 also unlocks corpus queries; 4, the default,
    adds request deadlines).

    ``retry`` opts into re-issuing failed requests per
    :class:`RetryPolicy` — every retry reconnects first, so a crashed
    (and respawned) serving worker is transparent to the caller.
    ``deadline_ms`` stamps every compute request with a server-side
    deadline (0: none; needs version 4).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 60.0,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
        version: int = protocol.PROTOCOL_VERSION,
        retry: Optional[RetryPolicy] = None,
        deadline_ms: int = 0,
    ) -> None:
        if version not in protocol.SUPPORTED_VERSIONS:
            raise ProtocolError(
                protocol.ERR_BAD_VERSION,
                f"cannot speak protocol version {version}",
            )
        self._version = int(version)
        self._deadline_ms = protocol._check_deadline_ms(deadline_ms, version)
        self._retry = retry
        self._host = host
        self._port = int(port)
        self._timeout = float(timeout)
        self._max_frame_bytes = int(max_frame_bytes)
        self._sock: Optional[socket.socket] = None
        self._reader = protocol.FrameReader(self._max_frame_bytes)
        self._pending: Deque[protocol.Frame] = deque()
        self._request_ids = itertools.count(1)
        self._connect()

    def _connect(self) -> None:
        """(Re)establish the TCP connection with a fresh frame parser."""
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        # Request/response frames are latency-bound: never Nagle them,
        # and let a whole multi-megabyte request enter the send buffer
        # in one call instead of draining it in scheduler round trips.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_SNDBUF, 4 * 1024 * 1024
        )
        self._reader = protocol.FrameReader(self._max_frame_bytes)
        self._pending = deque()

    def _retrying(self, issue):
        """Run ``issue`` under the retry policy (reconnect per retry).

        ``issue`` must be self-contained — it draws a fresh request id
        each call, so a retried request is a brand-new request on a
        brand-new connection, never a replay into a half-dead stream.
        Only typed-retryable failures loop; anything else propagates
        on the spot.
        """
        attempts = self._retry.attempts if self._retry is not None else 1
        for attempt in range(attempts):
            if attempt:
                time.sleep(self._retry.delay(attempt - 1))
                try:
                    self.close()
                    self._connect()
                except OSError as exc:
                    if attempt + 1 >= attempts:
                        raise ConnectionLostError(
                            protocol.ERR_RETRYABLE,
                            f"reconnect failed after {attempts} attempts: "
                            f"{exc}",
                        ) from exc
                    continue
            try:
                return issue()
            except Exception as exc:  # noqa: BLE001 - classified below
                if attempt + 1 >= attempts or not _retryable(exc):
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # Request API
    # ------------------------------------------------------------------

    def identify(
        self,
        wires: Union[SpikeTrainBatch, np.ndarray],
        grid: Optional[SimulationGrid] = None,
        *,
        start_slot: int = 0,
        n_shards: int = 0,
    ) -> IdentifyReply:
        """Identify every wire in ``wires`` against the server's basis."""
        packed, grid = self._transport_form(wires, grid)
        shards, summary = self._round_trip(
            packed, grid, mode="identify",
            start_slot=start_slot, n_shards=n_shards,
        )
        return _identify_reply(shards, summary)

    def membership(
        self,
        wires: Union[SpikeTrainBatch, np.ndarray],
        grid: Optional[SimulationGrid] = None,
        *,
        until_slot: Optional[int] = None,
        n_shards: int = 0,
    ) -> MembershipReply:
        """Set-membership readout of every wire against the basis."""
        packed, grid = self._transport_form(wires, grid)
        shards, summary = self._round_trip(
            packed, grid, mode="membership",
            limit=until_slot, n_shards=n_shards,
        )
        return _membership_reply(shards, summary)

    def corpus_identify(
        self,
        corpus: str,
        row_start: int,
        row_stop: int,
        *,
        start_slot: int = 0,
        n_shards: int = 0,
    ) -> IdentifyReply:
        """Identify rows ``[row_start, row_stop)`` of a server-hosted corpus.

        No bitset leaves this process — the request names the corpus
        and the row range, the server computes chunk-at-a-time off its
        memmap, and the merged reply is bit-identical to fetching those
        rows locally and calling :meth:`identify`.  Needs protocol
        version 3 (the client default).
        """
        shards, summary = self._corpus_round_trip(
            corpus, row_start, row_stop, mode="identify",
            start_slot=start_slot, n_shards=n_shards,
        )
        return _identify_reply(shards, summary)

    def corpus_membership(
        self,
        corpus: str,
        row_start: int,
        row_stop: int,
        *,
        until_slot: Optional[int] = None,
        n_shards: int = 0,
    ) -> MembershipReply:
        """Set-membership readout of a server-hosted corpus row range."""
        shards, summary = self._corpus_round_trip(
            corpus, row_start, row_stop, mode="membership",
            limit=until_slot, n_shards=n_shards,
        )
        return _membership_reply(shards, summary)

    def logicnet(
        self,
        seed: int,
        net_start: int,
        net_stop: int,
        *,
        n_gates: int,
        depth: int,
        n_shards: int = 0,
    ) -> LogicNetReply:
        """Evaluate networks ``[net_start, net_stop)`` of a seeded family.

        The request is 20 bytes — no bitset leaves this process.  The
        server rebuilds each network from its ``spawn_rng(seed, i)``
        spawn key, evaluates it against the serving basis's packed
        input lines, and streams per-network output popcounts and
        checksums; the merged reply is bit-identical to building and
        evaluating the same range locally.  Needs protocol version 5
        (the client default).
        """
        shards, summary = self._logicnet_round_trip(
            seed, net_start, net_stop,
            n_gates=n_gates, depth=depth, n_shards=n_shards,
        )
        return _logicnet_reply(shards, summary)

    def ping(self) -> dict:
        """One PING/PONG health round-trip (the load-balancer probe).

        Returns the PONG payload — ``{"ready": true, ...}`` plus the
        served protocol version and the hosted corpus name (if any).
        The cheapest possible liveness check: no compute, no STATS
        aggregation.
        """
        def issue():
            request_id = next(self._request_ids)
            self._sock.sendall(
                protocol.encode_ping(request_id, version=self._version)
            )
            frame = self._next_frame()
            payload = protocol.parse_json_frame(frame)
            if frame.frame_type == protocol.FRAME_ERROR:
                _raise_server_error(payload)
            if (
                frame.frame_type != protocol.FRAME_PONG
                or frame.request_id != request_id
            ):
                raise ProtocolError(
                    protocol.ERR_BAD_TYPE,
                    f"unexpected frame type 0x{frame.frame_type:02x} "
                    f"answering a ping",
                )
            return payload

        return self._retrying(issue)

    def stats(self, scope: Optional[str] = None) -> dict:
        """The server's :class:`~repro.serving.server.ServerStats` snapshot.

        ``scope`` is forwarded on the wire (see
        :func:`~repro.serving.protocol.encode_stats_request`): against
        a ``--workers N`` cluster, the default answers cluster-wide
        aggregated counters and ``"local"`` answers only the worker
        this connection landed on.  Single servers ignore it.
        """
        def issue():
            request_id = next(self._request_ids)
            self._sock.sendall(
                protocol.encode_stats_request(
                    request_id, version=self._version, scope=scope
                )
            )
            frame = self._next_frame()
            payload = protocol.parse_json_frame(frame)
            if frame.frame_type == protocol.FRAME_ERROR:
                _raise_server_error(payload)
            if (
                frame.frame_type != protocol.FRAME_STATS_REPLY
                or frame.request_id != request_id
            ):
                raise ProtocolError(
                    protocol.ERR_BAD_TYPE,
                    f"unexpected frame type 0x{frame.frame_type:02x} "
                    f"answering a stats request",
                )
            return payload

        return self._retrying(issue)

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._sock is None:
            return
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already dead
            pass

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Wire mechanics
    # ------------------------------------------------------------------

    @staticmethod
    def _transport_form(wires, grid):
        """``(packed bitset, grid)`` of the caller's batch."""
        if isinstance(wires, SpikeTrainBatch):
            return wires.packbits(), wires.grid
        if grid is None:
            raise ServingError(
                protocol.ERR_BAD_FRAME,
                "a raw packed array needs an explicit grid",
            )
        return np.asarray(wires, dtype=np.uint8), grid

    def _round_trip(
        self, packed, grid, *, mode, start_slot=0, limit=None, n_shards=0
    ):
        """Send one request, collect shard frames until done/error."""

        def issue():
            request_id = next(self._request_ids)
            # sendmsg scatter-gathers the header and the caller's
            # bitset straight from their own buffers — no concatenation
            # copy of the payload on the way out.
            self._sock.sendmsg(
                protocol.encode_request_parts(
                    packed,
                    grid.n_samples,
                    grid.dt,
                    mode=mode,
                    start_slot=start_slot,
                    limit=limit,
                    n_shards=n_shards,
                    request_id=request_id,
                    version=self._version,
                    deadline_ms=self._deadline_ms,
                )
            )
            return self._collect(request_id)

        return self._retrying(issue)

    def _corpus_round_trip(
        self, corpus, row_start, row_stop, *, mode,
        start_slot=0, limit=None, n_shards=0,
    ):
        """Send one corpus query, collect shard frames until done/error."""

        def issue():
            request_id = next(self._request_ids)
            self._sock.sendall(
                protocol.encode_corpus_query(
                    corpus,
                    row_start,
                    row_stop,
                    mode=mode,
                    start_slot=start_slot,
                    limit=limit,
                    n_shards=n_shards,
                    request_id=request_id,
                    version=self._version,
                    deadline_ms=self._deadline_ms,
                )
            )
            return self._collect(request_id)

        return self._retrying(issue)

    def _logicnet_round_trip(
        self, seed, net_start, net_stop, *, n_gates, depth, n_shards=0
    ):
        """Send one logicnet query, collect shard frames until done/error."""

        def issue():
            request_id = next(self._request_ids)
            self._sock.sendall(
                protocol.encode_logicnet_query(
                    seed,
                    net_start,
                    net_stop,
                    n_gates=n_gates,
                    depth=depth,
                    n_shards=n_shards,
                    request_id=request_id,
                    version=self._version,
                    deadline_ms=self._deadline_ms,
                )
            )
            return self._collect(request_id)

        return self._retrying(issue)

    def _collect(self, request_id):
        """Collect one request's response stream until DONE (or error)."""
        shards: List[dict] = []
        while True:
            frame = self._next_frame()
            if frame.request_id not in (0, request_id):
                raise ProtocolError(
                    protocol.ERR_BAD_FRAME,
                    f"response for request {frame.request_id}, "
                    f"expected {request_id}",
                )
            payload = _parse_response(frame)
            if frame.frame_type == protocol.FRAME_ERROR:
                _raise_server_error(payload)
            if frame.frame_type in (
                protocol.FRAME_SHARD,
                protocol.FRAME_RESULT,
            ):
                shards.append(payload)
                continue
            if frame.frame_type == protocol.FRAME_DONE:
                shards.sort(key=lambda shard: shard["row_start"])
                return shards, payload
            raise ProtocolError(
                protocol.ERR_BAD_TYPE,
                f"unexpected frame type 0x{frame.frame_type:02x}",
            )

    def _next_frame(self) -> protocol.Frame:
        """Read from the socket until one complete frame arrives.

        ``feed`` may complete several frames from one ``recv``; the
        surplus queues in ``_pending`` for the following calls.
        """
        while not self._pending:
            data = self._sock.recv(1024 * 1024)
            if not data:
                raise ConnectionLostError(
                    protocol.ERR_RETRYABLE,
                    "connection closed mid-response",
                )
            self._pending.extend(self._reader.feed(data))
        return self._pending.popleft()


@dataclass
class _Inflight:
    """One pipelined request awaiting its DONE (or STATS reply)."""

    future: asyncio.Future
    shards: List[dict] = field(default_factory=list)


class AsyncServingClient:
    """Pipelined asyncio client: many requests in flight per connection.

    A background reader task demuxes the server's interleaved response
    frames by request id, so concurrent ``identify`` / ``membership``
    coroutines share one connection::

        client = await AsyncServingClient.open(host, port)
        replies = await asyncio.gather(
            *[client.identify(batch) for batch in batches]
        )
        await client.aclose()

    This is what makes the server's coalescing window reachable from a
    single process: requests issued together arrive together.  The
    request API mirrors :class:`ServingClient` (same replies, same
    defaults — including ``retry`` / ``deadline_ms``); ``version``
    picks the response encoding, binary result frames by default.

    A retried request reconnects first; because the connection is
    shared, one reconnect serves every concurrent coroutine whose
    request died with it (each observes its own typed-retryable
    failure and re-issues on the fresh connection — a connection
    *generation* counter keeps N failed coroutines from reconnecting
    N times).
    """

    def __init__(
        self,
        *,
        version: int = protocol.PROTOCOL_VERSION,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
        retry: Optional[RetryPolicy] = None,
        deadline_ms: int = 0,
    ) -> None:
        if version not in protocol.SUPPORTED_VERSIONS:
            raise ProtocolError(
                protocol.ERR_BAD_VERSION,
                f"cannot speak protocol version {version}",
            )
        self._version = int(version)
        self._deadline_ms = protocol._check_deadline_ms(deadline_ms, version)
        self._retry = retry
        self._max_frame_bytes = int(max_frame_bytes)
        self._host: Optional[str] = None
        self._port: Optional[int] = None
        self._frames = protocol.FrameReader(self._max_frame_bytes)
        self._request_ids = itertools.count(1)
        self._inflight: Dict[int, _Inflight] = {}
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._generation = 0
        self._conn_lock: Optional[asyncio.Lock] = None

    @classmethod
    async def open(
        cls,
        host: str,
        port: int,
        *,
        version: int = protocol.PROTOCOL_VERSION,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
        retry: Optional[RetryPolicy] = None,
        deadline_ms: int = 0,
    ) -> "AsyncServingClient":
        """Connect and start the demux reader."""
        client = cls(
            version=version,
            max_frame_bytes=max_frame_bytes,
            retry=retry,
            deadline_ms=deadline_ms,
        )
        client._host, client._port = host, int(port)
        client._conn_lock = asyncio.Lock()
        await client._establish()
        return client

    async def _establish(self) -> None:
        """Open the connection and start a fresh demux reader."""
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )
        sock = self._writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._frames = protocol.FrameReader(self._max_frame_bytes)
        self._reader_task = asyncio.create_task(self._read_loop())
        self._generation += 1

    async def _reconnect(self, seen_generation: int) -> None:
        """Tear down and re-open, once per connection generation.

        Concurrent coroutines whose requests died together all call
        this; whoever wins the lock reconnects, the rest observe the
        advanced generation and reuse the new connection.
        """
        async with self._conn_lock:
            if self._generation != seen_generation:
                return  # a sibling coroutine already reconnected
            if self._reader_task is not None:
                self._reader_task.cancel()
                try:
                    await self._reader_task
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
                self._reader_task = None
            if self._writer is not None:
                self._writer.close()
                try:
                    await self._writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass
                self._writer = None
            await self._establish()

    async def _retrying(self, issue):
        """Async twin of :meth:`ServingClient._retrying`."""
        attempts = self._retry.attempts if self._retry is not None else 1
        for attempt in range(attempts):
            if attempt:
                await asyncio.sleep(self._retry.delay(attempt - 1))
            generation = self._generation
            try:
                return await issue()
            except Exception as exc:  # noqa: BLE001 - classified below
                if attempt + 1 >= attempts or not _retryable(exc):
                    raise
                try:
                    await self._reconnect(generation)
                except OSError:
                    continue  # next attempt backs off and retries
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # Request API
    # ------------------------------------------------------------------

    async def identify(
        self,
        wires: Union[SpikeTrainBatch, np.ndarray],
        grid: Optional[SimulationGrid] = None,
        *,
        start_slot: int = 0,
        n_shards: int = 0,
    ) -> IdentifyReply:
        """Identify every wire in ``wires`` against the server's basis."""
        packed, grid = ServingClient._transport_form(wires, grid)
        shards, summary = await self._round_trip(
            packed, grid, mode="identify",
            start_slot=start_slot, n_shards=n_shards,
        )
        return _identify_reply(shards, summary)

    async def membership(
        self,
        wires: Union[SpikeTrainBatch, np.ndarray],
        grid: Optional[SimulationGrid] = None,
        *,
        until_slot: Optional[int] = None,
        n_shards: int = 0,
    ) -> MembershipReply:
        """Set-membership readout of every wire against the basis."""
        packed, grid = ServingClient._transport_form(wires, grid)
        shards, summary = await self._round_trip(
            packed, grid, mode="membership",
            limit=until_slot, n_shards=n_shards,
        )
        return _membership_reply(shards, summary)

    async def corpus_identify(
        self,
        corpus: str,
        row_start: int,
        row_stop: int,
        *,
        start_slot: int = 0,
        n_shards: int = 0,
    ) -> IdentifyReply:
        """Identify a server-hosted corpus row range (pipelined)."""
        shards, summary = await self._corpus_round_trip(
            corpus, row_start, row_stop, mode="identify",
            start_slot=start_slot, n_shards=n_shards,
        )
        return _identify_reply(shards, summary)

    async def corpus_membership(
        self,
        corpus: str,
        row_start: int,
        row_stop: int,
        *,
        until_slot: Optional[int] = None,
        n_shards: int = 0,
    ) -> MembershipReply:
        """Membership readout of a server-hosted corpus range (pipelined)."""
        shards, summary = await self._corpus_round_trip(
            corpus, row_start, row_stop, mode="membership",
            limit=until_slot, n_shards=n_shards,
        )
        return _membership_reply(shards, summary)

    async def logicnet(
        self,
        seed: int,
        net_start: int,
        net_stop: int,
        *,
        n_gates: int,
        depth: int,
        n_shards: int = 0,
    ) -> LogicNetReply:
        """Evaluate a seeded network family's range (pipelined)."""
        shards, summary = await self._logicnet_round_trip(
            seed, net_start, net_stop,
            n_gates=n_gates, depth=depth, n_shards=n_shards,
        )
        return _logicnet_reply(shards, summary)

    async def ping(self) -> dict:
        """One PING/PONG health round-trip (shares the pipelined demux)."""

        async def issue():
            request_id = next(self._request_ids)
            entry = self._register(request_id)
            self._writer.write(
                protocol.encode_ping(request_id, version=self._version)
            )
            await self._writer.drain()
            _, payload = await entry.future
            return payload

        return await self._retrying(issue)

    async def stats(self, scope: Optional[str] = None) -> dict:
        """The server's stats snapshot (shares the pipelined demux).

        ``scope`` as in :meth:`ServingClient.stats` — cluster-wide by
        default against a multi-worker server, ``"local"`` for the one
        worker holding this connection.
        """

        async def issue():
            request_id = next(self._request_ids)
            entry = self._register(request_id)
            self._writer.write(
                protocol.encode_stats_request(
                    request_id, version=self._version, scope=scope
                )
            )
            await self._writer.drain()
            _, payload = await entry.future
            return payload

        return await self._retrying(issue)

    async def aclose(self) -> None:
        """Stop the reader, fail anything still pending, close the socket."""
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._reader_task = None
        self._fail_all(
            ProtocolError(protocol.ERR_BAD_FRAME, "client closed")
        )
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None

    async def __aenter__(self) -> "AsyncServingClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # Wire mechanics
    # ------------------------------------------------------------------

    def _register(self, request_id: int) -> _Inflight:
        if self._writer is None:
            raise ServingError(
                protocol.ERR_INTERNAL,
                "client is not connected (use AsyncServingClient.open)",
            )
        if self._reader_task is not None and self._reader_task.done():
            # The demux died while idle (server idle-timeout, reset):
            # fail typed-retryable *before* writing into a dead stream,
            # so the retry path reconnects instead of hanging.
            raise ConnectionLostError(
                protocol.ERR_RETRYABLE, "connection lost while idle"
            )
        entry = _Inflight(future=asyncio.get_running_loop().create_future())
        self._inflight[request_id] = entry
        return entry

    async def _round_trip(
        self, packed, grid, *, mode, start_slot=0, limit=None, n_shards=0
    ):
        async def issue():
            request_id = next(self._request_ids)
            entry = self._register(request_id)
            # writelines hands the header and the caller's bitset to
            # the transport as separate buffers — no concatenation copy
            # — and both parts enqueue in one synchronous call, so
            # concurrent requests cannot interleave their bytes.
            self._writer.writelines(
                protocol.encode_request_parts(
                    packed,
                    grid.n_samples,
                    grid.dt,
                    mode=mode,
                    start_slot=start_slot,
                    limit=limit,
                    n_shards=n_shards,
                    request_id=request_id,
                    version=self._version,
                    deadline_ms=self._deadline_ms,
                )
            )
            await self._writer.drain()
            shards, summary = await entry.future
            shards.sort(key=lambda shard: shard["row_start"])
            return shards, summary

        return await self._retrying(issue)

    async def _corpus_round_trip(
        self, corpus, row_start, row_stop, *, mode,
        start_slot=0, limit=None, n_shards=0,
    ):
        async def issue():
            request_id = next(self._request_ids)
            entry = self._register(request_id)
            self._writer.write(
                protocol.encode_corpus_query(
                    corpus,
                    row_start,
                    row_stop,
                    mode=mode,
                    start_slot=start_slot,
                    limit=limit,
                    n_shards=n_shards,
                    request_id=request_id,
                    version=self._version,
                    deadline_ms=self._deadline_ms,
                )
            )
            await self._writer.drain()
            shards, summary = await entry.future
            shards.sort(key=lambda shard: shard["row_start"])
            return shards, summary

        return await self._retrying(issue)

    async def _logicnet_round_trip(
        self, seed, net_start, net_stop, *, n_gates, depth, n_shards=0
    ):
        async def issue():
            request_id = next(self._request_ids)
            entry = self._register(request_id)
            self._writer.write(
                protocol.encode_logicnet_query(
                    seed,
                    net_start,
                    net_stop,
                    n_gates=n_gates,
                    depth=depth,
                    n_shards=n_shards,
                    request_id=request_id,
                    version=self._version,
                    deadline_ms=self._deadline_ms,
                )
            )
            await self._writer.drain()
            shards, summary = await entry.future
            shards.sort(key=lambda shard: shard["row_start"])
            return shards, summary

        return await self._retrying(issue)

    async def _read_loop(self) -> None:
        """Demux every inbound frame to its request's inflight entry."""
        try:
            while True:
                data = await self._reader.read(1024 * 1024)
                if not data:
                    raise ConnectionLostError(
                        protocol.ERR_RETRYABLE,
                        "connection closed with requests in flight",
                    )
                for frame in self._frames.feed(data):
                    self._dispatch(frame)
                poison = self._frames.pending_error
                if poison is not None:
                    raise poison
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - delivered to waiters
            self._fail_all(exc)

    def _dispatch(self, frame: protocol.Frame) -> None:
        if frame.frame_type == protocol.FRAME_ERROR:
            payload = protocol.parse_json_frame(frame)
            error = ServingError(
                int(payload.get("code", protocol.ERR_INTERNAL)),
                f"server error {payload.get('error', 'UNKNOWN')}: "
                f"{payload.get('message', '')}",
            )
            if frame.request_id == 0:
                # Connection-scope error: the stream is done for.
                self._fail_all(error)
                return
            entry = self._inflight.pop(frame.request_id, None)
            if entry is not None and not entry.future.done():
                entry.future.set_exception(error)
            return
        entry = self._inflight.get(frame.request_id)
        if entry is None:
            raise ProtocolError(
                protocol.ERR_BAD_FRAME,
                f"response for unknown request {frame.request_id}",
            )
        if frame.frame_type in (protocol.FRAME_SHARD, protocol.FRAME_RESULT):
            entry.shards.append(_parse_response(frame))
            return
        if frame.frame_type in (
            protocol.FRAME_DONE,
            protocol.FRAME_STATS_REPLY,
            protocol.FRAME_PONG,
        ):
            self._inflight.pop(frame.request_id, None)
            if not entry.future.done():
                entry.future.set_result(
                    (entry.shards, protocol.parse_json_frame(frame))
                )
            return
        raise ProtocolError(
            protocol.ERR_BAD_TYPE,
            f"unexpected frame type 0x{frame.frame_type:02x}",
        )

    def _fail_all(self, exc: Exception) -> None:
        inflight, self._inflight = self._inflight, {}
        for entry in inflight.values():
            if not entry.future.done():
                entry.future.set_exception(exc)


def _merged(shards: List[dict], key: str) -> np.ndarray:
    """Concatenate one per-shard array field in row order."""
    if not shards:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(
        [np.asarray(shard[key], dtype=np.int64) for shard in shards]
    )
