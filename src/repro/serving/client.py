"""Reference client for the packed-bitset serving protocol.

:class:`ServingClient` is the canonical consumer of
:mod:`repro.serving.protocol` — a small blocking-socket client used by
the integration tests, ``benchmarks/bench_serving.py``,
``examples/serve_and_query.py`` and the CI smoke job, and the
copy-pasteable starting point documented in ``docs/serving.md``.

The client never touches spike indices either: it takes a
:class:`~repro.backend.batch.SpikeTrainBatch` (or an already-packed
bitset), frames its ``packbits`` transport form — packed straight from
the CSR, no raster — and merges the per-shard JSON frames the server
streams back into whole-batch result arrays.

Usage::

    with ServingClient(host, port) as client:
        reply = client.identify(batch)
        reply.elements          # (N,) identified element per wire
        reply.shards            # per-shard payloads, wall times included
"""

from __future__ import annotations

import itertools
import socket
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Union

import numpy as np

from ..backend.batch import SpikeTrainBatch
from ..errors import ProtocolError, ServingError
from ..units import SimulationGrid
from . import protocol

__all__ = ["ServingClient", "IdentifyReply", "MembershipReply"]


@dataclass(frozen=True)
class IdentifyReply:
    """A merged identify response.

    The arrays are the concatenation of the per-shard results in row
    order — the same triplet
    :class:`~repro.logic.correlator.BatchIdentification` carries, so
    equality against a local ``identify_batch`` run is one array
    compare.
    """

    elements: np.ndarray
    decision_slots: np.ndarray
    spikes_inspected: np.ndarray
    labels: List[str]
    shards: List[dict]
    summary: dict


@dataclass(frozen=True)
class MembershipReply:
    """A merged membership response (``(N, M)`` matrices, row order)."""

    membership: np.ndarray
    first_slots: np.ndarray
    labels: List[str]
    shards: List[dict]
    summary: dict


class ServingClient:
    """Blocking client for one serving endpoint.

    One TCP connection, reused across requests; close with
    :meth:`close` or a ``with`` block.  Not thread-safe — use one
    client per thread (the benchmark does exactly that).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 60.0,
        max_frame_bytes: int = protocol.DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        # Request/response frames are latency-bound: never Nagle them.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = protocol.FrameReader(max_frame_bytes)
        self._pending: Deque[protocol.Frame] = deque()
        self._request_ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Request API
    # ------------------------------------------------------------------

    def identify(
        self,
        wires: Union[SpikeTrainBatch, np.ndarray],
        grid: Optional[SimulationGrid] = None,
        *,
        start_slot: int = 0,
        n_shards: int = 0,
    ) -> IdentifyReply:
        """Identify every wire in ``wires`` against the server's basis."""
        packed, grid = self._transport_form(wires, grid)
        shards, summary = self._round_trip(
            packed, grid, mode="identify",
            start_slot=start_slot, n_shards=n_shards,
        )
        return IdentifyReply(
            elements=_merged(shards, "elements"),
            decision_slots=_merged(shards, "decision_slots"),
            spikes_inspected=_merged(shards, "spikes_inspected"),
            labels=list(summary.get("labels", [])),
            shards=shards,
            summary=summary,
        )

    def membership(
        self,
        wires: Union[SpikeTrainBatch, np.ndarray],
        grid: Optional[SimulationGrid] = None,
        *,
        until_slot: Optional[int] = None,
        n_shards: int = 0,
    ) -> MembershipReply:
        """Set-membership readout of every wire against the basis."""
        packed, grid = self._transport_form(wires, grid)
        shards, summary = self._round_trip(
            packed, grid, mode="membership",
            limit=until_slot, n_shards=n_shards,
        )
        return MembershipReply(
            membership=_merged(shards, "membership").astype(bool),
            first_slots=_merged(shards, "first_slots"),
            labels=list(summary.get("labels", [])),
            shards=shards,
            summary=summary,
        )

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already dead
            pass

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Wire mechanics
    # ------------------------------------------------------------------

    @staticmethod
    def _transport_form(wires, grid):
        """``(packed bitset, grid)`` of the caller's batch."""
        if isinstance(wires, SpikeTrainBatch):
            return wires.packbits(), wires.grid
        if grid is None:
            raise ServingError(
                protocol.ERR_BAD_FRAME,
                "a raw packed array needs an explicit grid",
            )
        return np.asarray(wires, dtype=np.uint8), grid

    def _round_trip(
        self, packed, grid, *, mode, start_slot=0, limit=None, n_shards=0
    ):
        """Send one request, collect shard frames until done/error."""
        request_id = next(self._request_ids)
        self._sock.sendall(
            protocol.encode_request(
                packed,
                grid.n_samples,
                grid.dt,
                mode=mode,
                start_slot=start_slot,
                limit=limit,
                n_shards=n_shards,
                request_id=request_id,
            )
        )
        shards: List[dict] = []
        while True:
            frame = self._next_frame()
            if frame.request_id not in (0, request_id):
                raise ProtocolError(
                    protocol.ERR_BAD_FRAME,
                    f"response for request {frame.request_id}, "
                    f"expected {request_id}",
                )
            payload = protocol.parse_json_frame(frame)
            if frame.frame_type == protocol.FRAME_ERROR:
                raise ServingError(
                    int(payload.get("code", protocol.ERR_INTERNAL)),
                    f"server error {payload.get('error', 'UNKNOWN')}: "
                    f"{payload.get('message', '')}",
                )
            if frame.frame_type == protocol.FRAME_SHARD:
                shards.append(payload)
                continue
            if frame.frame_type == protocol.FRAME_DONE:
                shards.sort(key=lambda shard: shard["row_start"])
                return shards, payload
            raise ProtocolError(
                protocol.ERR_BAD_TYPE,
                f"unexpected frame type 0x{frame.frame_type:02x}",
            )

    def _next_frame(self) -> protocol.Frame:
        """Read from the socket until one complete frame arrives.

        ``feed`` may complete several frames from one ``recv``; the
        surplus queues in ``_pending`` for the following calls.
        """
        while not self._pending:
            data = self._sock.recv(1024 * 1024)
            if not data:
                raise ProtocolError(
                    protocol.ERR_BAD_FRAME,
                    "connection closed mid-response",
                )
            self._pending.extend(self._reader.feed(data))
        return self._pending.popleft()


def _merged(shards: List[dict], key: str) -> np.ndarray:
    """Concatenate one per-shard array field in row order."""
    if not shards:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(
        [np.asarray(shard[key], dtype=np.int64) for shard in shards]
    )
