"""Batched spike trains: N trains × T slots on one grid.

:class:`SpikeTrainBatch` lifts a stack of :class:`~repro.spikes.train.SpikeTrain`
objects into one array object so whole-record operations (set algebra,
identification, membership readout) run as single vectorised passes
instead of Python-side per-train loops — the same move syncopy's
``DiscreteData`` makes by storing many spike channels in one sample
matrix.

Two representations are kept, each materialised lazily and cached:

* **CSR** — one concatenated sorted ``int64`` slot array plus row
  offsets.  Total size is the spike count, independent of the grid
  length; the identification paths walk it with O(total spikes) work.
* **raster** — a dense ``(N, n_samples)`` boolean occupancy matrix.
  Row-wise set algebra is one elementwise boolean operation;
  :meth:`packbits` exposes the ``np.packbits`` bitset variant (eight
  slots per byte) for transport and archival.

Adapters keep the scalar API alive: :meth:`from_train` wraps one train
as a one-row batch, :meth:`row` / :meth:`to_trains` go back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SpikeTrainError
from ..spikes.train import SpikeTrain
from ..units import SimulationGrid
from .shared import SharedArena, SharedArraySpec, attach_array

__all__ = ["SpikeTrainBatch", "SharedBatchHandle"]


@dataclass(frozen=True)
class SharedBatchHandle:
    """Metadata-only handle to a batch placed in shared memory.

    Pickles as a few hundred bytes regardless of batch size: the
    payload is the ``np.packbits`` bitset (8× smaller than the dense
    raster) plus the CSR row offsets, both living in shared-memory
    segments described by their :class:`~repro.backend.shared.SharedArraySpec`.
    ``n_samples``/``dt`` rebuild the grid on the attaching side.

    For sparse batches — where the CSR slot array is no bigger than the
    bitset — ``values`` carries the CSR payload too, and attaching
    consumers reconstruct rows as *views* into the segment (no unpack,
    no copy).  Dense batches drop it and attach via the bitset.
    """

    packed: SharedArraySpec
    ptr: SharedArraySpec
    n_samples: int
    dt: float
    values: Optional[SharedArraySpec] = None

    @property
    def n_trains(self) -> int:
        """Number of rows in the shared batch."""
        return int(self.ptr.shape[0] - 1)

    def grid(self) -> SimulationGrid:
        """The grid the shared batch lives on."""
        return SimulationGrid(n_samples=self.n_samples, dt=self.dt)


class SpikeTrainBatch:
    """An immutable stack of N spike trains on one simulation grid.

    Build with :meth:`from_trains`, :meth:`from_raster`,
    :meth:`from_packed` or :meth:`empty`; the constructor itself takes
    the CSR pieces and is mostly internal.

    Instances behave like an immutable sequence of
    :class:`~repro.spikes.train.SpikeTrain`: ``len`` is the number of
    rows, iteration and indexing yield trains, and the set operators
    ``|`` ``&`` ``-`` ``^`` apply row-wise (with single-row operands
    broadcasting over the other side's rows).
    """

    __slots__ = ("_grid", "_values", "_ptr", "_raster")

    def __init__(
        self,
        values: np.ndarray,
        ptr: np.ndarray,
        grid: SimulationGrid,
        *,
        _raster: Optional[np.ndarray] = None,
    ) -> None:
        values = np.asarray(values, dtype=np.int64)
        ptr = np.asarray(ptr, dtype=np.int64)
        if ptr.ndim != 1 or ptr.size < 1 or ptr[0] != 0 or ptr[-1] != values.size:
            raise SpikeTrainError(
                f"malformed CSR offsets: ptr={ptr!r} for {values.size} values"
            )
        if np.any(np.diff(ptr) < 0):
            raise SpikeTrainError("CSR offsets must be non-decreasing")
        if values.size:
            if values.min() < 0 or values.max() >= grid.n_samples:
                raise SpikeTrainError(
                    f"batch slot outside grid of {grid.n_samples} samples"
                )
        if values.size > 1:
            # Every consumer (row extraction, the batched receivers'
            # earliest-wins scatters) relies on strictly ascending slots
            # within each row; check all diffs except those straddling a
            # row boundary.
            diffs = np.diff(values)
            interior = np.ones(diffs.size, dtype=bool)
            cuts = ptr[1:-1] - 1
            interior[cuts[(cuts >= 0) & (cuts < diffs.size)]] = False
            if np.any(diffs[interior] <= 0):
                raise SpikeTrainError(
                    "batch rows must hold sorted, duplicate-free slots"
                )
        values.setflags(write=False)
        ptr.setflags(write=False)
        self._values = values
        self._ptr = ptr
        self._grid = grid
        self._raster = _raster

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_trains(cls, trains: Sequence[SpikeTrain]) -> "SpikeTrainBatch":
        """Stack existing trains (all on one grid) into a batch."""
        if not trains:
            raise SpikeTrainError("a batch needs at least one train")
        for i, train in enumerate(trains):
            if not isinstance(train, SpikeTrain):
                raise SpikeTrainError(
                    f"expected SpikeTrain at row {i}, got {type(train).__name__}"
                )
        grid = trains[0].grid
        for i, train in enumerate(trains[1:], start=1):
            if train.grid != grid:
                raise SpikeTrainError(
                    f"row {i} lives on {train.grid.describe()}, "
                    f"expected {grid.describe()}"
                )
        counts = np.array([len(t) for t in trains], dtype=np.int64)
        ptr = np.concatenate([[0], np.cumsum(counts)])
        if counts.sum():
            values = np.concatenate([t.indices for t in trains])
        else:
            values = np.empty(0, dtype=np.int64)
        return cls(values, ptr, grid)

    @classmethod
    def from_train(cls, train: SpikeTrain) -> "SpikeTrainBatch":
        """One-row adapter: view a single train as a batch."""
        return cls.from_trains([train])

    @classmethod
    def from_raster(
        cls,
        raster: np.ndarray,
        grid: SimulationGrid,
        *,
        copy: bool = True,
    ) -> "SpikeTrainBatch":
        """Build from a dense boolean occupancy matrix ``(N, n_samples)``.

        ``copy=False`` adopts the array without a defensive copy —
        for internal callers handing over a freshly computed temporary
        (the batch freezes whatever it stores).
        """
        given = raster
        raster = np.ascontiguousarray(raster, dtype=bool)
        if raster.ndim != 2 or raster.shape[1] != grid.n_samples:
            raise SpikeTrainError(
                f"raster shape {raster.shape} does not match "
                f"(N, {grid.n_samples})"
            )
        rows, cols = np.nonzero(raster)
        counts = np.bincount(rows, minlength=raster.shape[0])
        ptr = np.concatenate([[0], np.cumsum(counts)])
        if copy and raster is given:
            raster = raster.copy()
        raster.setflags(write=False)
        return cls(cols.astype(np.int64), ptr, grid, _raster=raster)

    @classmethod
    def from_packed(
        cls, packed: np.ndarray, grid: SimulationGrid
    ) -> "SpikeTrainBatch":
        """Build from a :meth:`packbits` bitset ``(N, ceil(n_samples / 8))``."""
        packed = np.asarray(packed, dtype=np.uint8)
        if packed.ndim != 2 or packed.shape[1] != (grid.n_samples + 7) // 8:
            raise SpikeTrainError(
                f"packed shape {packed.shape} does not match "
                f"(N, {(grid.n_samples + 7) // 8})"
            )
        raster = np.unpackbits(packed, axis=1, count=grid.n_samples).astype(bool)
        return cls.from_raster(raster, grid, copy=False)

    @classmethod
    def empty(cls, n_trains: int, grid: SimulationGrid) -> "SpikeTrainBatch":
        """A batch of ``n_trains`` silent rows."""
        if n_trains < 1:
            raise SpikeTrainError(f"n_trains must be >= 1, got {n_trains}")
        return cls(
            np.empty(0, dtype=np.int64),
            np.zeros(n_trains + 1, dtype=np.int64),
            grid,
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def grid(self) -> SimulationGrid:
        """The grid all rows live on."""
        return self._grid

    @property
    def n_trains(self) -> int:
        """Number of rows N."""
        return int(self._ptr.size - 1)

    @property
    def total_spikes(self) -> int:
        """Total spike count across all rows."""
        return int(self._values.size)

    def counts(self) -> np.ndarray:
        """Per-row spike counts (length N)."""
        return np.diff(self._ptr)

    def density(self) -> float:
        """Mean occupied fraction of the grid over all rows."""
        return self.total_spikes / (self.n_trains * self._grid.n_samples)

    def csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """The concatenated slot array and row offsets ``(values, ptr)``."""
        return self._values, self._ptr

    @property
    def raster(self) -> np.ndarray:
        """Dense boolean occupancy matrix ``(N, n_samples)`` (cached)."""
        if self._raster is None:
            raster = np.zeros((self.n_trains, self._grid.n_samples), dtype=bool)
            rows = np.repeat(np.arange(self.n_trains), self.counts())
            raster[rows, self._values] = True
            raster.setflags(write=False)
            self._raster = raster
        return self._raster

    def packbits(self) -> np.ndarray:
        """The ``np.packbits`` bitset variant, ``(N, ceil(n_samples/8))``.

        When only the CSR form is materialised the bits are scattered
        from it directly — O(total spikes) instead of allocating the
        full ``(N, n_samples)`` raster just to pack it (the raster for
        a 2048 × 65536 batch is 128 MB; its bitset is 16 MB).
        """
        if self._raster is not None:
            return np.packbits(self._raster, axis=1)
        n_bytes = (self._grid.n_samples + 7) // 8
        packed = np.zeros(self.n_trains * n_bytes, dtype=np.uint8)
        if self._values.size:
            # np.packbits bit order: slot s lands in byte s >> 3 at
            # mask 128 >> (s & 7).  The flattened byte index is
            # non-decreasing (rows ascend, slots ascend within a row),
            # so each byte's bits group into one contiguous run —
            # summed with one reduceat (distinct powers of two, so the
            # sum is the OR).
            rows = np.repeat(np.arange(self.n_trains), self.counts())
            flat = rows * n_bytes + (self._values >> 3)
            masks = 128 >> (self._values & 7)
            starts = np.concatenate(
                [[0], np.flatnonzero(np.diff(flat) != 0) + 1]
            )
            packed[flat[starts]] = np.add.reduceat(masks, starts)
        return packed.reshape(self.n_trains, n_bytes)

    # ------------------------------------------------------------------
    # Shared-memory transport
    # ------------------------------------------------------------------

    def to_shared(self, arena: SharedArena) -> SharedBatchHandle:
        """Place this batch into ``arena`` and return its picklable handle.

        The bitset form travels (8× smaller than the raster, density
        independent of the slot count per byte) together with the CSR
        row offsets, so attaching consumers can slice row ranges without
        touching the payload.  Sparse batches (CSR no bigger than the
        bitset) also export the CSR slot array, giving attachers a pure
        view-based reconstruction.  The handle itself carries no array
        data.
        """
        packed = self.packbits()
        values_spec = (
            arena.share_array(self._values)
            if self._values.nbytes <= packed.nbytes
            else None
        )
        return SharedBatchHandle(
            packed=arena.share_array(packed),
            ptr=arena.share_array(self._ptr),
            n_samples=self._grid.n_samples,
            dt=self._grid.dt,
            values=values_spec,
        )

    @classmethod
    def from_shared(
        cls,
        handle: SharedBatchHandle,
        rows: Optional[Tuple[int, int]] = None,
    ) -> "SpikeTrainBatch":
        """Rebuild a batch (or a row range of it) from a shared handle.

        Attaches the segments through the process attachment cache —
        the payload is mapped, never copied across the process boundary
        — and materialises the requested rows.  ``rows=(lo, hi)``
        reconstructs exactly ``select_rows(range(lo, hi))`` of the
        shared batch, which is what shard workers use; ``None``
        materialises all rows.  Bit-identical to the source batch by
        construction.

        Sparse handles reconstruct as read-only *views* into the shared
        CSR segment (zero copies, sub-millisecond); bitset-only handles
        unpack their row range.
        """
        ptr = attach_array(handle.ptr)
        grid = handle.grid()
        n = handle.n_trains
        lo, hi = 0, n
        if rows is not None:
            lo, hi = int(rows[0]), int(rows[1])
            if not (0 <= lo <= hi <= n):
                raise SpikeTrainError(
                    f"row range [{lo}, {hi}) outside shared batch of {n} rows"
                )
        row_ptr = (ptr[lo : hi + 1] - ptr[lo]).astype(np.int64)
        if handle.values is not None:
            shared_values = attach_array(handle.values)
            values = shared_values[ptr[lo] : ptr[hi]]
            return cls(values, row_ptr, grid)
        packed = attach_array(handle.packed)[lo:hi]
        raster = np.unpackbits(
            np.ascontiguousarray(packed), axis=1, count=grid.n_samples
        ).astype(bool)
        values = np.nonzero(raster)[1].astype(np.int64)
        raster.setflags(write=False)
        return cls(values, row_ptr, grid, _raster=raster)

    def row(self, i: int) -> SpikeTrain:
        """Row ``i`` as a :class:`SpikeTrain`."""
        n = self.n_trains
        if not (-n <= i < n):
            raise SpikeTrainError(f"row {i} out of range for {n} trains")
        i %= n
        indices = self._values[self._ptr[i] : self._ptr[i + 1]]
        return SpikeTrain._from_sorted_unique(indices, self._grid)

    def to_trains(self) -> List[SpikeTrain]:
        """All rows as a list of trains (the inverse of :meth:`from_trains`)."""
        return [self.row(i) for i in range(self.n_trains)]

    def select_rows(self, rows) -> "SpikeTrainBatch":
        """A new batch holding the requested rows, in the given order."""
        rows = np.asarray(rows, dtype=np.int64)
        counts = self.counts()[rows]
        ptr = np.concatenate([[0], np.cumsum(counts)])
        if counts.sum():
            values = np.concatenate(
                [self._values[self._ptr[r] : self._ptr[r + 1]] for r in rows]
            )
        else:
            values = np.empty(0, dtype=np.int64)
        return SpikeTrainBatch(values, ptr, self._grid)

    def __len__(self) -> int:
        return self.n_trains

    def __iter__(self) -> Iterator[SpikeTrain]:
        return (self.row(i) for i in range(self.n_trains))

    def __getitem__(self, i: int) -> SpikeTrain:
        return self.row(int(i))

    def __eq__(self, other) -> bool:
        if not isinstance(other, SpikeTrainBatch):
            return NotImplemented
        return (
            self._grid == other._grid
            and np.array_equal(self._ptr, other._ptr)
            and np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:
        return hash(
            (self._grid, self._ptr.tobytes(), self._values.tobytes())
        )

    def __repr__(self) -> str:
        return (
            f"SpikeTrainBatch(n_trains={self.n_trains}, "
            f"total_spikes={self.total_spikes}, grid={self._grid.describe()})"
        )

    # ------------------------------------------------------------------
    # Row-wise set algebra (vectorised)
    # ------------------------------------------------------------------

    def _align(self, other: "SpikeTrainBatch") -> Tuple[np.ndarray, np.ndarray]:
        if not isinstance(other, SpikeTrainBatch):
            raise SpikeTrainError(
                f"expected SpikeTrainBatch, got {type(other).__name__}"
            )
        if other._grid != self._grid:
            raise SpikeTrainError(
                "batch set operations require one shared grid: "
                f"{self._grid.describe()} vs {other._grid.describe()}"
            )
        if (
            self.n_trains != other.n_trains
            and 1 not in (self.n_trains, other.n_trains)
        ):
            raise SpikeTrainError(
                f"cannot broadcast batches of {self.n_trains} and "
                f"{other.n_trains} rows"
            )
        return self.raster, other.raster

    def union(self, other: "SpikeTrainBatch") -> "SpikeTrainBatch":
        """Row-wise union (single-row operands broadcast)."""
        a, b = self._align(other)
        return SpikeTrainBatch.from_raster(a | b, self._grid, copy=False)

    def intersection(self, other: "SpikeTrainBatch") -> "SpikeTrainBatch":
        """Row-wise intersection (single-row operands broadcast)."""
        a, b = self._align(other)
        return SpikeTrainBatch.from_raster(a & b, self._grid, copy=False)

    def difference(self, other: "SpikeTrainBatch") -> "SpikeTrainBatch":
        """Row-wise difference (single-row operands broadcast)."""
        a, b = self._align(other)
        return SpikeTrainBatch.from_raster(a & ~b, self._grid, copy=False)

    def symmetric_difference(self, other: "SpikeTrainBatch") -> "SpikeTrainBatch":
        """Row-wise symmetric difference (single-row operands broadcast)."""
        a, b = self._align(other)
        return SpikeTrainBatch.from_raster(a ^ b, self._grid, copy=False)

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __xor__ = symmetric_difference

    def any_union(self) -> SpikeTrain:
        """OR across all rows: the superposition of the whole batch."""
        return SpikeTrain._from_sorted_unique(
            np.unique(self._values), self._grid
        )

    def overlap_counts(self, other: "SpikeTrainBatch") -> np.ndarray:
        """Per-row coincident-slot counts with ``other`` (broadcasting)."""
        a, b = self._align(other)
        return np.count_nonzero(a & b, axis=1)

    def pairwise_overlap_matrix(self) -> np.ndarray:
        """``(N, N)`` matrix of shared-slot counts between all row pairs."""
        dense = self.raster.astype(np.int64)
        return dense @ dense.T

    def is_mutually_orthogonal(self) -> bool:
        """True when no two rows share a spike slot."""
        occupancy = np.bincount(self._values, minlength=self._grid.n_samples)
        return bool(self._values.size == 0 or occupancy.max() <= 1)
