"""Batched spike trains: N trains × T slots on one grid.

:class:`SpikeTrainBatch` lifts a stack of :class:`~repro.spikes.train.SpikeTrain`
objects into one array object so whole-record operations (set algebra,
identification, membership readout) run as single vectorised passes
instead of Python-side per-train loops — the same move syncopy's
``DiscreteData`` makes by storing many spike channels in one sample
matrix.

Three representations are kept, each materialised lazily and cached:

* **CSR** — one concatenated sorted ``int64`` slot array plus row
  offsets.  Total size is the spike count, independent of the grid
  length; the identification paths walk it with O(total spikes) work.
* **packed words** — the ``np.packbits`` bitset viewed as
  ``(N, ceil(n_samples / 64))`` ``uint64``, eight slots per byte with a
  zero tail.  This is the *compute-primary* dense form: row-wise set
  algebra, popcount statistics and coincidence scoring run directly on
  it through :mod:`~repro.backend.packed` at 1/8 the raster's memory
  traffic, and it is what :meth:`to_shared` ships — attached shard
  workers compute straight on the mapped words without ever unpacking.
  It is also the serving front-end's wire payload
  (:mod:`repro.serving.protocol`): an RPC request arrives as this
  bitset and flows through :meth:`from_packed`, :meth:`to_shared` and
  the packed receivers without leaving it.
* **raster** — a dense ``(N, n_samples)`` boolean occupancy matrix,
  kept for consumers that genuinely want per-slot booleans and for
  batches born dense (:meth:`from_raster`).

A batch may be *packed-primary*: built from a bitset
(:meth:`from_packed`, :meth:`from_shared`, packed set-op results), it
holds only the words and decodes its CSR on first demand — only the
occupied bytes, never the whole grid.
:func:`~repro.backend.core.select_batch_backend` picks the
representation each operation runs on from what is resident plus
operand density; ``use_backend`` pins one family for tests.

Adapters keep the scalar API alive: :meth:`from_train` wraps one train
as a one-row batch, :meth:`row` / :meth:`to_trains` go back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SpikeTrainError
from ..spikes.train import SpikeTrain
from ..units import SimulationGrid
from . import mmapstore
from . import packed as packed_kernels
from .core import select_batch_backend
from .shared import SharedArena, SharedArraySpec, attach_array

__all__ = ["SpikeTrainBatch", "SharedBatchHandle"]


@dataclass(frozen=True)
class SharedBatchHandle:
    """Metadata-only handle to a batch placed in shared memory.

    Pickles as a few hundred bytes regardless of batch size: the
    payload is the word-aligned packed bitset (8× smaller than the
    dense raster) plus the CSR row offsets, both living in
    shared-memory segments described by their
    :class:`~repro.backend.shared.SharedArraySpec`.
    ``n_samples``/``dt`` rebuild the grid on the attaching side.

    For sparse batches — where the CSR slot array is no bigger than the
    bitset — ``values`` carries the CSR payload too, and attaching
    consumers reconstruct rows as *views* into the segment.  Dense
    batches drop it; attaching then yields a *packed-primary* batch
    whose words are a view of the mapped segment, so shard workers
    compute on the shared bitset directly (no unpack, no copy).
    """

    packed: SharedArraySpec
    ptr: SharedArraySpec
    n_samples: int
    dt: float
    values: Optional[SharedArraySpec] = None

    @property
    def n_trains(self) -> int:
        """Number of rows in the shared batch."""
        return int(self.ptr.shape[0] - 1)

    def grid(self) -> SimulationGrid:
        """The grid the shared batch lives on."""
        return SimulationGrid(n_samples=self.n_samples, dt=self.dt)


class SpikeTrainBatch:
    """An immutable stack of N spike trains on one simulation grid.

    Build with :meth:`from_trains`, :meth:`from_raster`,
    :meth:`from_packed` or :meth:`empty`; the constructor itself takes
    the CSR pieces and is mostly internal.

    Instances behave like an immutable sequence of
    :class:`~repro.spikes.train.SpikeTrain`: ``len`` is the number of
    rows, iteration and indexing yield trains, and the set operators
    ``|`` ``&`` ``-`` ``^`` apply row-wise (with single-row operands
    broadcasting over the other side's rows).
    """

    __slots__ = ("_grid", "_values", "_ptr", "_raster", "_packed")

    def __init__(
        self,
        values: np.ndarray,
        ptr: np.ndarray,
        grid: SimulationGrid,
        *,
        _raster: Optional[np.ndarray] = None,
    ) -> None:
        values = np.asarray(values, dtype=np.int64)
        ptr = np.asarray(ptr, dtype=np.int64)
        if ptr.ndim != 1 or ptr.size < 1 or ptr[0] != 0 or ptr[-1] != values.size:
            raise SpikeTrainError(
                f"malformed CSR offsets: ptr={ptr!r} for {values.size} values"
            )
        if np.any(np.diff(ptr) < 0):
            raise SpikeTrainError("CSR offsets must be non-decreasing")
        if values.size:
            if values.min() < 0 or values.max() >= grid.n_samples:
                raise SpikeTrainError(
                    f"batch slot outside grid of {grid.n_samples} samples"
                )
        if values.size > 1:
            # Every consumer (row extraction, the batched receivers'
            # earliest-wins scatters) relies on strictly ascending slots
            # within each row; check all diffs except those straddling a
            # row boundary.
            diffs = np.diff(values)
            interior = np.ones(diffs.size, dtype=bool)
            cuts = ptr[1:-1] - 1
            interior[cuts[(cuts >= 0) & (cuts < diffs.size)]] = False
            if np.any(diffs[interior] <= 0):
                raise SpikeTrainError(
                    "batch rows must hold sorted, duplicate-free slots"
                )
        values.setflags(write=False)
        ptr.setflags(write=False)
        self._values: Optional[np.ndarray] = values
        self._ptr: Optional[np.ndarray] = ptr
        self._grid = grid
        self._raster = _raster
        self._packed: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_trains(cls, trains: Sequence[SpikeTrain]) -> "SpikeTrainBatch":
        """Stack existing trains (all on one grid) into a batch."""
        if not trains:
            raise SpikeTrainError("a batch needs at least one train")
        for i, train in enumerate(trains):
            if not isinstance(train, SpikeTrain):
                raise SpikeTrainError(
                    f"expected SpikeTrain at row {i}, got {type(train).__name__}"
                )
        grid = trains[0].grid
        for i, train in enumerate(trains[1:], start=1):
            if train.grid != grid:
                raise SpikeTrainError(
                    f"row {i} lives on {train.grid.describe()}, "
                    f"expected {grid.describe()}"
                )
        counts = np.array([len(t) for t in trains], dtype=np.int64)
        ptr = np.concatenate([[0], np.cumsum(counts)])
        if counts.sum():
            values = np.concatenate([t.indices for t in trains])
        else:
            values = np.empty(0, dtype=np.int64)
        return cls(values, ptr, grid)

    @classmethod
    def from_train(cls, train: SpikeTrain) -> "SpikeTrainBatch":
        """One-row adapter: view a single train as a batch."""
        return cls.from_trains([train])

    @classmethod
    def from_raster(
        cls,
        raster: np.ndarray,
        grid: SimulationGrid,
        *,
        copy: bool = True,
    ) -> "SpikeTrainBatch":
        """Build from a dense boolean occupancy matrix ``(N, n_samples)``.

        ``copy=False`` adopts the array without a defensive copy —
        for internal callers handing over a freshly computed temporary
        (the batch freezes whatever it stores).
        """
        given = raster
        raster = np.ascontiguousarray(raster, dtype=bool)
        if raster.ndim != 2 or raster.shape[1] != grid.n_samples:
            raise SpikeTrainError(
                f"raster shape {raster.shape} does not match "
                f"(N, {grid.n_samples})"
            )
        rows, cols = np.nonzero(raster)
        counts = np.bincount(rows, minlength=raster.shape[0])
        ptr = np.concatenate([[0], np.cumsum(counts)])
        if copy and raster is given:
            raster = raster.copy()
        raster.setflags(write=False)
        return cls(cols.astype(np.int64), ptr, grid, _raster=raster)

    @classmethod
    def from_packed(
        cls, packed: np.ndarray, grid: SimulationGrid
    ) -> "SpikeTrainBatch":
        """Build from a :meth:`packbits` bitset ``(N, ceil(n_samples / 8))``.

        The result is *packed-primary*: the bitset (word-aligned, tail
        bits masked off as :func:`np.unpackbits` with ``count`` would)
        becomes the batch's resident representation and the CSR decodes
        lazily, occupied bytes only — the dense raster is never built.

        When the grid's byte width is already word-aligned with no tail
        bits (``n_samples`` a multiple of 64) a contiguous bitset is
        adopted zero-copy: the batch views the caller's buffer, which
        must not be mutated afterwards.
        """
        packed = np.asarray(packed, dtype=np.uint8)
        n_bytes = packed_kernels.n_packed_bytes(grid.n_samples)
        if packed.ndim != 2 or packed.shape[1] != n_bytes:
            raise SpikeTrainError(
                f"packed shape {packed.shape} does not match "
                f"(N, {n_bytes})"
            )
        n_words = packed_kernels.n_packed_words(grid.n_samples)
        if grid.n_samples % 64 == 0 and packed.flags.c_contiguous:
            # Every byte is in-grid and the row stride is a whole number
            # of words: reinterpret in place, no pad / no tail to clear.
            return cls._from_packed_words(
                packed.view(np.uint64), grid, validate=False
            )
        padded = np.zeros((packed.shape[0], n_words * 8), dtype=np.uint8)
        padded[:, :n_bytes] = packed
        words = padded.view(np.uint64)
        packed_kernels.clear_slots_from(words, grid.n_samples)
        return cls._from_packed_words(words, grid, validate=False)

    @classmethod
    def _from_packed_words(
        cls,
        words: np.ndarray,
        grid: SimulationGrid,
        *,
        validate: bool = True,
    ) -> "SpikeTrainBatch":
        """Adopt a word-aligned packed array as a packed-primary batch.

        ``words`` must be ``(N, ceil(n_samples / 64))`` ``uint64`` with
        a clean tail; internal producers whose output is clean by
        construction (set-op results, shared-memory attachments) pass
        ``validate=False``.  N may be 0: an empty row selection or an
        empty corpus window is a legal (silent) batch.
        """
        words = np.asarray(words, dtype=np.uint64)
        n_words = packed_kernels.n_packed_words(grid.n_samples)
        if words.ndim != 2 or words.shape[1] != n_words:
            raise SpikeTrainError(
                f"packed words shape {words.shape} does not match "
                f"(N, {n_words})"
            )
        if validate and not packed_kernels.check_tail_clean(
            words, grid.n_samples
        ):
            raise SpikeTrainError(
                f"packed words carry bits beyond the grid's "
                f"{grid.n_samples} samples"
            )
        words.setflags(write=False)
        batch = cls.__new__(cls)
        batch._grid = grid
        batch._values = None
        batch._ptr = None
        batch._raster = None
        batch._packed = words
        return batch

    @classmethod
    def empty(cls, n_trains: int, grid: SimulationGrid) -> "SpikeTrainBatch":
        """A batch of ``n_trains`` silent rows."""
        if n_trains < 1:
            raise SpikeTrainError(f"n_trains must be >= 1, got {n_trains}")
        return cls(
            np.empty(0, dtype=np.int64),
            np.zeros(n_trains + 1, dtype=np.int64),
            grid,
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def grid(self) -> SimulationGrid:
        """The grid all rows live on."""
        return self._grid

    @property
    def n_trains(self) -> int:
        """Number of rows N."""
        if self._ptr is not None:
            return int(self._ptr.size - 1)
        return int(self._packed.shape[0])

    @property
    def total_spikes(self) -> int:
        """Total spike count across all rows."""
        if self._values is not None:
            return int(self._values.size)
        return int(self.counts().sum())

    def counts(self) -> np.ndarray:
        """Per-row spike counts (length N).

        From the CSR offsets when they are resident, else one popcount
        pass over the packed words — no decode either way.
        """
        if self._ptr is not None:
            return np.diff(self._ptr)
        return packed_kernels.row_popcounts(self._packed)

    def density(self) -> float:
        """Mean occupied fraction of the grid over all rows."""
        return self.total_spikes / (self.n_trains * self._grid.n_samples)

    @property
    def csr_materialised(self) -> bool:
        """True when the CSR arrays are resident (no decode needed)."""
        return self._values is not None

    @property
    def packed_materialised(self) -> bool:
        """True when the packed words are resident (no pack needed)."""
        return self._packed is not None

    @property
    def raster_materialised(self) -> bool:
        """True when the dense boolean raster is resident."""
        return self._raster is not None

    def nbytes_resident(self) -> int:
        """Bytes held by the currently materialised representations."""
        total = 0
        if self._values is not None:
            total += self._values.nbytes + self._ptr.nbytes
        if self._packed is not None:
            total += self._packed.nbytes
        if self._raster is not None:
            total += self._raster.nbytes
        return total

    def csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """The concatenated slot array and row offsets ``(values, ptr)``.

        Packed-primary batches decode here on first call — occupied
        bytes only, O(set bits) — and cache the result.
        """
        if self._values is None:
            values, ptr = packed_kernels.unpack_rows(self._packed)
            values.setflags(write=False)
            ptr.setflags(write=False)
            self._values = values
            self._ptr = ptr
        return self._values, self._ptr

    def receiver_backend(self) -> str:
        """Representation the batched receivers should run on.

        ``"bitset"`` routes identification / membership / decode through
        the packed kernels (the only option that avoids a decode when
        this batch is packed-primary, e.g. a shared-memory attachment);
        ``"sorted"`` walks the CSR.  Delegates to
        :func:`~repro.backend.core.select_batch_backend`, so a pinned
        backend wins.
        """
        choice = select_batch_backend(
            # Avoid a popcount pass just to pick a path: the density
            # term only matters when the CSR is resident.
            self._values.size if self._values is not None else 0,
            self.n_trains,
            self._grid.n_samples,
            csr_ready=self._values is not None,
            packed_ready=self._packed is not None,
            raster_ready=self._raster is not None,
        )
        return "bitset" if choice == "bitset" else "sorted"

    @property
    def raster(self) -> np.ndarray:
        """Dense boolean occupancy matrix ``(N, n_samples)`` (cached).

        Built from the CSR scatter when the CSR is resident, else by
        unpacking the packed words — the one place a packed-primary
        batch ever unpacks, and only because the caller explicitly
        asked for per-slot booleans.
        """
        if self._raster is None:
            if self._values is not None:
                raster = np.zeros(
                    (self.n_trains, self._grid.n_samples), dtype=bool
                )
                rows = np.repeat(np.arange(self.n_trains), self.counts())
                raster[rows, self._values] = True
            else:
                raster = np.unpackbits(
                    np.ascontiguousarray(self._packed).view(np.uint8),
                    axis=1,
                    count=self._grid.n_samples,
                ).astype(bool)
            raster.setflags(write=False)
            self._raster = raster
        return self._raster

    def packed_words(self) -> np.ndarray:
        """Word-aligned packed bitset ``(N, ceil(n_samples / 64))`` uint64 (cached).

        The compute substrate of the packed kernels: eight slots per
        byte, tail bits zero, read-only.  Packed straight from the CSR
        (O(total spikes), no raster) or from a resident raster.
        """
        if self._packed is None:
            n_words = packed_kernels.n_packed_words(self._grid.n_samples)
            if self._values is not None:
                words = packed_kernels.pack_rows(
                    self._values, self._ptr, self._grid.n_samples
                )
            else:
                exact = np.packbits(self._raster, axis=1)
                padded = np.zeros(
                    (exact.shape[0], n_words * 8), dtype=np.uint8
                )
                padded[:, : exact.shape[1]] = exact
                words = padded.view(np.uint64)
            words.setflags(write=False)
            self._packed = words
        return self._packed

    def packbits(self) -> np.ndarray:
        """The ``np.packbits`` bitset, ``(N, ceil(n_samples / 8))`` (read-only).

        A trimmed byte view of :meth:`packed_words` — computing it
        never materialises the raster.
        """
        words = self.packed_words()
        n_bytes = packed_kernels.n_packed_bytes(self._grid.n_samples)
        trimmed = words.view(np.uint8).reshape(self.n_trains, -1)[:, :n_bytes]
        trimmed.setflags(write=False)
        return trimmed

    # ------------------------------------------------------------------
    # Shared-memory transport
    # ------------------------------------------------------------------

    def to_shared(self, arena: SharedArena) -> SharedBatchHandle:
        """Place this batch into ``arena`` and return its picklable handle.

        The word-aligned bitset travels (8× smaller than the raster,
        size independent of the spike count) together with the CSR row
        offsets, so attaching consumers can slice row ranges without
        touching the payload.  Sparse batches (CSR resident and no
        bigger than the bitset) also export the CSR slot array, giving
        attachers a pure view-based reconstruction; dense or
        packed-primary batches ship the bitset alone and attachers
        compute straight on it.  The handle itself carries no array
        data.
        """
        words = self.packed_words()
        if self._ptr is not None:
            ptr = self._ptr
        else:
            ptr = np.concatenate(
                [[0], np.cumsum(packed_kernels.row_popcounts(words))]
            )
        values_spec = (
            arena.share_array(self._values)
            if self._values is not None and self._values.nbytes <= words.nbytes
            else None
        )
        return SharedBatchHandle(
            packed=arena.share_array(words),
            ptr=arena.share_array(ptr),
            n_samples=self._grid.n_samples,
            dt=self._grid.dt,
            values=values_spec,
        )

    @classmethod
    def from_shared(
        cls,
        handle: SharedBatchHandle,
        rows: Optional[Tuple[int, int]] = None,
    ) -> "SpikeTrainBatch":
        """Rebuild a batch (or a row range of it) from a shared handle.

        Attaches the segments through the process attachment cache —
        the payload is mapped, never copied across the process boundary
        — and wraps the requested rows.  ``rows=(lo, hi)``
        reconstructs exactly ``select_rows(range(lo, hi))`` of the
        shared batch, which is what shard workers use; ``None`` wraps
        all rows.  Bit-identical to the source batch by construction.

        Sparse handles reconstruct as read-only *views* into the shared
        CSR segment; bitset-only handles come back *packed-primary*,
        their words a view of the mapped segment — workers run set
        algebra and identification directly on the shared bitset and
        decode nothing unless a consumer asks for indices.
        """
        ptr = attach_array(handle.ptr)
        grid = handle.grid()
        n = handle.n_trains
        lo, hi = 0, n
        if rows is not None:
            lo, hi = int(rows[0]), int(rows[1])
            if not (0 <= lo <= hi <= n):
                raise SpikeTrainError(
                    f"row range [{lo}, {hi}) outside shared batch of {n} rows"
                )
        if handle.values is not None:
            shared_values = attach_array(handle.values)
            values = shared_values[ptr[lo] : ptr[hi]]
            row_ptr = (ptr[lo : hi + 1] - ptr[lo]).astype(np.int64)
            return cls(values, row_ptr, grid)
        words = attach_array(handle.packed)
        return cls._from_packed_words(words[lo:hi], grid, validate=False)

    # ------------------------------------------------------------------
    # Memmap residency (disk-backed packed words)
    # ------------------------------------------------------------------

    def to_memmap(self, path) -> "pathlib.Path":
        """Persist this batch's packed words as a ``.npy`` file.

        The on-disk form is exactly :meth:`packed_words` — the
        word-aligned bitset, 8× smaller than the raster and directly
        computable by every packed kernel once mapped back in with
        :meth:`from_memmap`.  Round trip is bit-identical by
        construction (same words in, same words out).
        """
        return mmapstore.write_words(path, self.packed_words())

    @classmethod
    def from_memmap(
        cls,
        path,
        grid: SimulationGrid,
        rows: Optional[Tuple[int, int]] = None,
    ) -> "SpikeTrainBatch":
        """Open a words file written by :meth:`to_memmap` as a batch.

        The returned batch is *packed-primary over the mapping*: its
        words are a read-only view of the file's pages, faulted in only
        as kernels touch them — nothing is copied at open time, and
        ``rows=(lo, hi)`` restricts the mapping to that window so peak
        RSS is bounded by the window, not the file.  The disk residency
        mirrors :meth:`from_shared`'s bitset-only path: identification
        and membership run straight on the mapped words; the CSR (and
        never the raster) materialises only if a consumer explicitly
        asks for indices.

        Tail cleanliness is validated on the opened window (one word
        per row), catching a file written for a different grid.
        """
        words = mmapstore.open_words(path, grid.n_samples, rows)
        return cls._from_packed_words(words, grid, validate=True)

    def row(self, i: int) -> SpikeTrain:
        """Row ``i`` as a :class:`SpikeTrain`."""
        n = self.n_trains
        if not (-n <= i < n):
            raise SpikeTrainError(f"row {i} out of range for {n} trains")
        i %= n
        values, ptr = self.csr()
        indices = values[ptr[i] : ptr[i + 1]]
        return SpikeTrain._from_sorted_unique(indices, self._grid)

    def to_trains(self) -> List[SpikeTrain]:
        """All rows as a list of trains (the inverse of :meth:`from_trains`)."""
        return [self.row(i) for i in range(self.n_trains)]

    def select_rows(self, rows) -> "SpikeTrainBatch":
        """A new batch holding the requested rows, in the given order.

        Packed-primary batches stay packed (one fancy-indexed copy of
        the selected words); CSR batches gather their slot runs in one
        vectorised pass.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if self._values is None:
            return SpikeTrainBatch._from_packed_words(
                self._packed[rows], self._grid, validate=False
            )
        counts = self.counts()[rows]
        ptr = np.concatenate([[0], np.cumsum(counts)])
        if counts.sum():
            within = np.arange(ptr[-1]) - np.repeat(ptr[:-1], counts)
            values = self._values[np.repeat(self._ptr[rows], counts) + within]
        else:
            values = np.empty(0, dtype=np.int64)
        return SpikeTrainBatch(values, ptr, self._grid)

    def __len__(self) -> int:
        return self.n_trains

    def __iter__(self) -> Iterator[SpikeTrain]:
        return (self.row(i) for i in range(self.n_trains))

    def __getitem__(self, i: int) -> SpikeTrain:
        return self.row(int(i))

    def __eq__(self, other) -> bool:
        if not isinstance(other, SpikeTrainBatch):
            return NotImplemented
        if self._grid != other._grid:
            return False
        if (
            self._values is None
            and other._values is None
            and self._packed.shape == other._packed.shape
        ):
            return bool(np.array_equal(self._packed, other._packed))
        values, ptr = self.csr()
        other_values, other_ptr = other.csr()
        return np.array_equal(ptr, other_ptr) and np.array_equal(
            values, other_values
        )

    def __hash__(self) -> int:
        values, ptr = self.csr()
        return hash((self._grid, ptr.tobytes(), values.tobytes()))

    def __repr__(self) -> str:
        return (
            f"SpikeTrainBatch(n_trains={self.n_trains}, "
            f"total_spikes={self.total_spikes}, grid={self._grid.describe()})"
        )

    # ------------------------------------------------------------------
    # Row-wise set algebra (vectorised)
    # ------------------------------------------------------------------

    def _check_compatible(self, other: "SpikeTrainBatch") -> None:
        if not isinstance(other, SpikeTrainBatch):
            raise SpikeTrainError(
                f"expected SpikeTrainBatch, got {type(other).__name__}"
            )
        if other._grid != self._grid:
            raise SpikeTrainError(
                "batch set operations require one shared grid: "
                f"{self._grid.describe()} vs {other._grid.describe()}"
            )
        if (
            self.n_trains != other.n_trains
            and 1 not in (self.n_trains, other.n_trains)
        ):
            raise SpikeTrainError(
                f"cannot broadcast batches of {self.n_trains} and "
                f"{other.n_trains} rows"
            )

    def _setop_backend(self, other: "SpikeTrainBatch") -> str:
        """Dense-pass family for one row-wise set operation.

        ``select_batch_backend`` decides from residency and combined
        density; batch set algebra has no merge implementation, so a
        ``"sorted"`` verdict (pinned, or sparse CSR operands) runs the
        packed pass — the representation closest to the merge's
        O(spikes) profile.
        """
        csr_ready = self._values is not None and other._values is not None
        choice = select_batch_backend(
            (self._values.size + other._values.size) if csr_ready else 0,
            max(self.n_trains, other.n_trains),
            self._grid.n_samples,
            csr_ready=csr_ready,
            packed_ready=(
                self._packed is not None and other._packed is not None
            ),
            raster_ready=(
                self._raster is not None or other._raster is not None
            ),
        )
        return "raster" if choice == "raster" else "bitset"

    def _binary_op(self, other, word_op, bool_op) -> "SpikeTrainBatch":
        self._check_compatible(other)
        if self._setop_backend(other) == "raster":
            return SpikeTrainBatch.from_raster(
                bool_op(self.raster, other.raster), self._grid, copy=False
            )
        result = word_op(self.packed_words(), other.packed_words())
        return SpikeTrainBatch._from_packed_words(
            result, self._grid, validate=False
        )

    def union(self, other: "SpikeTrainBatch") -> "SpikeTrainBatch":
        """Row-wise union (single-row operands broadcast)."""
        return self._binary_op(other, np.bitwise_or, np.logical_or)

    def intersection(self, other: "SpikeTrainBatch") -> "SpikeTrainBatch":
        """Row-wise intersection (single-row operands broadcast)."""
        return self._binary_op(other, np.bitwise_and, np.logical_and)

    def difference(self, other: "SpikeTrainBatch") -> "SpikeTrainBatch":
        """Row-wise difference (single-row operands broadcast)."""
        return self._binary_op(
            other, lambda x, y: x & ~y, lambda x, y: x & ~y
        )

    def symmetric_difference(self, other: "SpikeTrainBatch") -> "SpikeTrainBatch":
        """Row-wise symmetric difference (single-row operands broadcast)."""
        return self._binary_op(other, np.bitwise_xor, np.logical_xor)

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __xor__ = symmetric_difference

    def any_union(self) -> SpikeTrain:
        """OR across all rows: the superposition of the whole batch."""
        if self._values is not None:
            return SpikeTrain._from_sorted_unique(
                np.unique(self._values), self._grid
            )
        merged = np.bitwise_or.reduce(self._packed, axis=0)
        indices = packed_kernels.unpack_indices(merged.view(np.uint8))
        return SpikeTrain._from_sorted_unique(indices, self._grid)

    def overlap_counts(self, other: "SpikeTrainBatch") -> np.ndarray:
        """Per-row coincident-slot counts with ``other`` (broadcasting).

        A popcount over the ANDed packed words — or one boolean pass
        when dense rasters are already resident on both sides.
        """
        self._check_compatible(other)
        if self._raster is not None and other._raster is not None:
            return np.count_nonzero(self._raster & other._raster, axis=1)
        return packed_kernels.coincidence_counts(
            self.packed_words(), other.packed_words()
        )

    def pairwise_overlap_matrix(self, runner=None) -> np.ndarray:
        """``(N, N)`` matrix of shared-slot counts between all row pairs.

        Chunked popcounts over the packed words — 1/8 the memory
        traffic of the dense ``raster @ raster.T`` Gram matrix it
        replaces, with no integer-matmul blowup.  Pass a multi-job
        :class:`~repro.pipeline.runner.Runner` to split the row axis
        across its fork pool (:mod:`repro.backend.parallel`) — the
        result is bit-identical either way.
        """
        words = self.packed_words()
        if runner is not None:
            from . import parallel

            return parallel.pairwise_counts(words, words, runner=runner)
        return packed_kernels.pairwise_counts(words, words)

    def is_mutually_orthogonal(self) -> bool:
        """True when no two rows share a spike slot."""
        if self._values is not None:
            occupancy = np.bincount(
                self._values, minlength=self._grid.n_samples
            )
            return bool(self._values.size == 0 or occupancy.max() <= 1)
        merged = np.bitwise_or.reduce(self._packed, axis=0)
        union_bits = int(packed_kernels.popcount(merged).sum(dtype=np.int64))
        return union_bits == self.total_spikes
