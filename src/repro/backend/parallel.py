"""Pool-parallel dispatch over the chunked packed kernels.

The packed kernels (:mod:`repro.backend.packed`) are single-threaded:
they chunk the row axis to bound their broadcast intermediates, but
every chunk runs on one core.  This module splits that same row axis
into ``(handle, row_range)`` tasks on an existing
:class:`~repro.pipeline.runner.Runner` fork pool instead — the exact
dispatch shape of the serving tier and the ``shard_shared`` experiment
plans, applied one level down, to the kernels themselves.

The contract is the repo's standard one: **parallel ≡ serial,
bit-identically**.  Each worker runs the unmodified serial kernel on a
contiguous row slice of the same operands (shipped once through a
:class:`~repro.backend.shared.SharedArena`, attached read-only), and
the per-slice results concatenate in row order.  Because every kernel
here is row-independent, the parallel result is the serial result by
construction — the property ``tests/backend/test_parallel.py`` checks
over randomized ragged splits on both popcount implementations.

Every entry point degrades to the serial kernel in-process when
parallel dispatch cannot help or cannot run:

* no runner, or a single-job runner (no pool to feed);
* the batch is under ``min_rows`` (the arena + pickle + attach
  overhead outweighs the compute it would distribute);
* the host has no POSIX shared memory;
* creating or populating the arena fails at OS level.

So callers can pass ``runner=`` unconditionally and let the layer
decide — the same auto-fallback policy as the pipeline's shared
dispatch.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import PipelineError
from ..testing import faults
from . import packed
from .shared import HAVE_SHARED_MEMORY, SharedArena, SharedArraySpec, attach_array

__all__ = [
    "DEFAULT_MIN_ROWS",
    "pairwise_counts",
    "coincidence_any",
    "first_coincident_slots",
    "unpack_rows",
]

#: Row threshold under which dispatch is not attempted: below this the
#: fixed per-call cost (arena create/copy, task pickles, first-touch
#: attaches) exceeds the kernel time it parallelises on typical grids.
DEFAULT_MIN_ROWS = 128

#: Per-slice result timeout (seconds).  A slice exceeding this lost
#: its worker (died or hung mid-task) and rides the supervision
#: ladder; deliberately generous — the kernels finish in milliseconds,
#: so a false positive would need a pathologically loaded host.
_RESULT_TIMEOUT_S = 120.0

#: Serial kernels addressable by task name.  Each takes the row slice
#: of ``a`` first; two-operand kernels get the full ``b`` second.
_KERNELS: Dict[str, Callable[..., Any]] = {
    "pairwise_counts": packed.pairwise_counts,
    "coincidence_any": packed.coincidence_any,
    "first_coincident_slots": packed.first_coincident_slots,
    "unpack_rows": packed.unpack_rows,
}


@dataclass(frozen=True)
class _RowTask:
    """One worker's slice: kernel name plus ``[row_start, row_stop)``.

    Ships as a few hundred bytes of segment metadata; the operands live
    in the dispatching arena and the worker attaches them read-only
    (cached per process per arena, so N tasks cost one attach).
    """

    kernel: str
    a: SharedArraySpec
    b: Optional[SharedArraySpec]
    row_start: int
    row_stop: int


def _run_row_task(task: _RowTask) -> Any:
    """Worker entry: attach the operands, run the serial kernel slice."""
    faults.maybe_fire("parallel.run_row_task")
    a = attach_array(task.a)[task.row_start : task.row_stop]
    fn = _KERNELS[task.kernel]
    if task.b is None:
        return fn(a)
    return fn(a, attach_array(task.b))


def _pool_ready(runner, n_rows: int, min_rows: int) -> bool:
    """Should this call attempt pool dispatch at all?"""
    return (
        runner is not None
        and getattr(runner, "jobs", 1) >= 2
        and n_rows >= max(2, min_rows)
        and HAVE_SHARED_MEMORY
    )


def _dispatch(
    kernel: str,
    a: np.ndarray,
    b: Optional[np.ndarray],
    runner,
) -> Optional[List[Any]]:
    """Fan one kernel out over the pool; None means "fall back".

    Splits ``a``'s rows into at most ``runner.jobs`` contiguous ranges
    (:func:`repro.backend.packed.row_chunk_bounds`), ships both
    operands through a per-call arena, and gathers the per-range
    results **in task order** — which is row order, the whole identity
    argument.  The arena closes before returning: workers hold their
    (read-only) mappings until the next differently-tokened attach
    evicts them, the same bounded-staleness policy as the pipeline's
    shared-dispatch runs.
    """
    bounds = packed.row_chunk_bounds(a.shape[0], runner.jobs)
    if len(bounds) < 2:
        return None
    try:
        arena = SharedArena()
    except OSError:
        return None
    try:
        try:
            a_spec = arena.share_array(np.ascontiguousarray(a))
            b_spec = (
                arena.share_array(np.ascontiguousarray(b))
                if b is not None
                else None
            )
        except OSError:
            return None
        tasks = [
            _RowTask(kernel, a_spec, b_spec, lo, hi) for lo, hi in bounds
        ]
        try:
            handles = runner.submit_many(_run_row_task, tasks)
        except PipelineError:
            return None
        return _gather_supervised(runner, handles, tasks)
    finally:
        arena.close()


def _gather_supervised(runner, handles, tasks) -> List[Any]:
    """Await the fan-out's results, recovering any lost slice.

    A slice whose result times out (or whose result channel broke) lost
    its worker; it re-runs through the runner's supervision ladder —
    resubmit, pool restart, in-process floor — while the arena is still
    alive, so the recovered slice attaches the *same* operands and the
    row-order concatenation stays bit-identical to the undisturbed run.
    """
    await_result = getattr(runner, "await_result", None)
    baseline = runner.worker_pids() if await_result is not None else None
    results: List[Any] = []
    for handle, task in zip(handles, tasks):
        try:
            if await_result is not None:
                results.append(
                    await_result(
                        handle, timeout=_RESULT_TIMEOUT_S, baseline=baseline
                    )
                )
            else:
                results.append(handle.get(_RESULT_TIMEOUT_S))
        except (multiprocessing.TimeoutError, OSError, EOFError):
            recover = getattr(runner, "submit_supervised", None)
            if recover is None:
                results.append(_run_row_task(task))
            else:
                results.append(
                    recover(_run_row_task, task, timeout=_RESULT_TIMEOUT_S)
                )
    return results


def pairwise_counts(
    a: np.ndarray,
    b: np.ndarray,
    *,
    runner=None,
    min_rows: int = DEFAULT_MIN_ROWS,
) -> np.ndarray:
    """Pool-parallel :func:`repro.backend.packed.pairwise_counts`.

    Splits ``a``'s rows across the runner's workers; bit-identical to
    the serial kernel (which executes in-process when dispatch is not
    worthwhile or unavailable).
    """
    if _pool_ready(runner, a.shape[0], min_rows):
        parts = _dispatch("pairwise_counts", a, b, runner)
        if parts is not None:
            return np.concatenate(parts, axis=0)
    return packed.pairwise_counts(a, b)


def coincidence_any(
    a: np.ndarray,
    b: np.ndarray,
    *,
    runner=None,
    min_rows: int = DEFAULT_MIN_ROWS,
) -> np.ndarray:
    """Pool-parallel :func:`repro.backend.packed.coincidence_any`."""
    if _pool_ready(runner, a.shape[0], min_rows):
        parts = _dispatch("coincidence_any", a, b, runner)
        if parts is not None:
            return np.concatenate(parts, axis=0)
    return packed.coincidence_any(a, b)


def first_coincident_slots(
    wires: np.ndarray,
    refs: np.ndarray,
    *,
    runner=None,
    min_rows: int = DEFAULT_MIN_ROWS,
) -> np.ndarray:
    """Pool-parallel :func:`repro.backend.packed.first_coincident_slots`.

    The membership/identification row-chunk kernel: each worker scans
    its wire rows against the full reference table.
    """
    if _pool_ready(runner, wires.shape[0], min_rows):
        parts = _dispatch("first_coincident_slots", wires, refs, runner)
        if parts is not None:
            return np.concatenate(parts, axis=0)
    return packed.first_coincident_slots(wires, refs)


def unpack_rows(
    words: np.ndarray,
    *,
    runner=None,
    min_rows: int = DEFAULT_MIN_ROWS,
) -> Tuple[np.ndarray, np.ndarray]:
    """Pool-parallel :func:`repro.backend.packed.unpack_rows` (decode).

    Each worker decodes a row slice to its local CSR; the slices stitch
    back by concatenating values and re-basing each slice's offsets by
    the running total — exactly the layout the serial decode produces.
    """
    if _pool_ready(runner, words.shape[0], min_rows):
        parts = _dispatch("unpack_rows", words, None, runner)
        if parts is not None:
            values = np.concatenate([part[0] for part in parts])
            ptr = np.zeros(words.shape[0] + 1, dtype=parts[0][1].dtype)
            offset = 0
            row = 1
            for part_values, part_ptr in parts:
                ptr[row : row + part_ptr.size - 1] = part_ptr[1:] + offset
                offset += part_values.size
                row += part_ptr.size - 1
            return values, ptr
    return packed.unpack_rows(words)
