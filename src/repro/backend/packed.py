"""Bit-parallel kernels on packed spike bitsets: compute, never unpack.

``np.packbits`` stores eight spike slots per byte; this module makes
that form the *compute substrate* instead of a transport format.  Every
kernel operates on word-aligned packed arrays — ``(N, n_words)``
``uint64`` views of the packbits bytes, zero-padded so each row is a
whole number of machine words — and never materialises the dense
``(N, n_samples)`` boolean raster.  Set algebra is one bitwise
instruction per 64 slots; reductions (spike counts, coincidence
scores) are popcounts; first-coincidence scans are byte-level
``argmax`` + an 8-bit lookup.

Bit layout.  ``np.packbits`` is MSB-first: slot ``s`` lives in byte
``s >> 3`` at mask ``128 >> (s & 7)``.  Words are built by *viewing*
groups of eight packed bytes with the platform's native ``uint64``
order and decoded the same way, so every kernel is self-consistent on
any endianness: word-level operations are pure bitwise (order-blind)
and anything slot-ordered (first-set-bit, range masks, unpacking) goes
through the byte view.

Popcount.  :func:`popcount` resolves to ``np.bitwise_count`` when the
installed NumPy has it (>= 2.0) and to a 16-bit-LUT fallback otherwise.
Setting the environment variable :data:`FORCE_LUT_ENV` (to any
non-empty value) forces the fallback — CI runs the kernel suite both
ways so the LUT cannot silently rot.  Both implementations are also
exported directly (``_popcount_native`` / ``_popcount_lut``) so tests
can compare them regardless of the environment.

A *clean* packed array has all bits beyond ``n_samples`` zero.  Every
constructor here produces clean arrays and every closed operation
(AND/OR/XOR/ANDNOT against clean operands) preserves cleanliness; only
complement needs explicit re-masking (:func:`bitwise_not`).
:func:`tail_mask_words` builds the mask, :func:`check_tail_clean`
asserts the invariant on externally supplied data.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "FORCE_LUT_ENV",
    "HAVE_BITWISE_COUNT",
    "popcount",
    "popcount_impl",
    "n_packed_bytes",
    "n_packed_words",
    "tail_mask_words",
    "check_tail_clean",
    "pack_indices",
    "unpack_indices",
    "pack_rows",
    "unpack_rows",
    "unpack_coords",
    "bitwise_not",
    "gate_table_words",
    "row_popcounts",
    "coincidence_counts",
    "row_chunk_bounds",
    "pairwise_counts",
    "coincidence_any",
    "first_set_slots",
    "first_and_slots",
    "first_coincident_slots",
    "clear_slots_before",
    "clear_slots_from",
    "le_word_masks",
]

#: Environment variable forcing the 16-bit-LUT popcount fallback.
FORCE_LUT_ENV = "REPRO_FORCE_POPCOUNT_LUT"

#: True when the installed NumPy provides ``np.bitwise_count``.
HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Byte-chunk budget for kernels that broadcast (N, M, n_words)
#: intermediates; chunking keeps the packed paths' peak working set a
#: fraction of the dense raster they replace.
_CHUNK_BYTES = 1 << 21

_LUT16: Optional[np.ndarray] = None

#: byte value -> earliest occupied slot offset within the byte
#: (MSB-first: value 0x80 is slot 0).  Entry 0 is unused.
_FIRST_SLOT_LUT = np.array(
    [0] + [8 - int(b).bit_length() for b in range(1, 256)], dtype=np.int64
)

#: slot offset r -> byte mask keeping slots <= r (``0xFF << (7 - r)``).
_MASK_LE = np.array(
    [(0xFF << (7 - r)) & 0xFF for r in range(8)], dtype=np.uint8
)


def _lut16() -> np.ndarray:
    """The 65536-entry popcount table (built on first use)."""
    global _LUT16
    if _LUT16 is None:
        lut8 = np.unpackbits(
            np.arange(256, dtype=np.uint8)[:, None], axis=1
        ).sum(axis=1, dtype=np.uint8)
        values = np.arange(65536, dtype=np.uint32)
        _LUT16 = (lut8[values >> 8] + lut8[values & 0xFF]).astype(np.uint8)
    return _LUT16


def _popcount_native(a: np.ndarray) -> np.ndarray:
    """Per-element popcount via ``np.bitwise_count`` (NumPy >= 2.0)."""
    return np.bitwise_count(a)


def _popcount_lut(a: np.ndarray) -> np.ndarray:
    """Per-element popcount via the 16-bit lookup table.

    Bit-identical to :func:`_popcount_native` on any unsigned integer
    dtype; used when ``np.bitwise_count`` is missing or the
    :data:`FORCE_LUT_ENV` environment variable is set.
    """
    a = np.ascontiguousarray(a)
    if a.dtype.itemsize <= 2:
        return _lut16()[a]
    halves = a.dtype.itemsize // 2
    parts = a.view(np.uint16).reshape(a.shape + (halves,))
    return _lut16()[parts].sum(axis=-1, dtype=np.uint8)


if HAVE_BITWISE_COUNT and not os.environ.get(FORCE_LUT_ENV):
    popcount = _popcount_native
else:  # pragma: no cover - exercised via the env var in CI
    popcount = _popcount_lut


def popcount_impl() -> str:
    """Which popcount implementation is active (``"bitwise_count"``/``"lut16"``)."""
    return "bitwise_count" if popcount is _popcount_native else "lut16"


# ----------------------------------------------------------------------
# Shapes and masks
# ----------------------------------------------------------------------


def n_packed_bytes(n_samples: int) -> int:
    """Exact ``np.packbits`` byte count for a grid of ``n_samples`` slots."""
    return (int(n_samples) + 7) // 8


def n_packed_words(n_samples: int) -> int:
    """Word count of the 64-bit-aligned packed form."""
    return (int(n_samples) + 63) // 64


def tail_mask_words(n_samples: int) -> np.ndarray:
    """``(n_words,)`` uint64 mask with exactly the valid slots set."""
    n_words = n_packed_words(n_samples)
    mask = np.zeros(n_words * 8, dtype=np.uint8)
    full, rem = divmod(int(n_samples), 8)
    mask[:full] = 0xFF
    if rem:
        mask[full] = _MASK_LE[rem - 1]
    return mask.view(np.uint64)


def check_tail_clean(words: np.ndarray, n_samples: int) -> bool:
    """True when no bit beyond ``n_samples`` is set (rows × words input)."""
    n_words = n_packed_words(n_samples)
    if n_words == 0:
        return True
    last_valid = tail_mask_words(n_samples)[-1]
    return not np.any(words[..., n_words - 1] & ~last_valid)


# ----------------------------------------------------------------------
# Packing and unpacking (sparse-aware: O(spikes + nonzero bytes))
# ----------------------------------------------------------------------


def _scatter_bits(flat_bytes, byte_index, masks) -> None:
    """OR ``masks`` into ``flat_bytes`` at ``byte_index`` (non-decreasing).

    ``byte_index`` ascends (sorted slots), so each byte's bits group
    into one contiguous run whose masks are distinct powers of two —
    their sum is their OR, computed with a single ``reduceat``.
    """
    starts = np.concatenate([[0], np.flatnonzero(np.diff(byte_index) != 0) + 1])
    flat_bytes[byte_index[starts]] = np.add.reduceat(masks, starts)


def pack_indices(indices: np.ndarray, n_samples: int) -> np.ndarray:
    """Pack one sorted, unique slot array into exact packbits bytes."""
    packed = np.zeros(n_packed_bytes(n_samples), dtype=np.uint8)
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size:
        _scatter_bits(packed, indices >> 3, 128 >> (indices & 7))
    return packed


def unpack_indices(packed: np.ndarray, base: int = 0) -> np.ndarray:
    """Sorted slot indices of a 1-D packed byte array.

    Decodes only the *nonzero* bytes — O(set bits + occupied bytes),
    independent of the grid length — which is what lets the bitset
    backend return indices without an ``np.unpackbits`` pass over the
    whole grid.  ``base`` offsets the returned slots.
    """
    packed = np.ascontiguousarray(packed, dtype=np.uint8).reshape(-1)
    occupied = np.flatnonzero(packed)
    if not occupied.size:
        return np.empty(0, dtype=np.int64)
    positions = np.flatnonzero(np.unpackbits(packed[occupied]))
    return occupied[positions >> 3] * 8 + (positions & 7) + base


def pack_rows(values: np.ndarray, ptr: np.ndarray, n_samples: int) -> np.ndarray:
    """Pack CSR rows straight into word-aligned ``(N, n_words)`` uint64.

    O(total spikes) scatter plus the zero-fill of the packed buffer —
    the dense raster is never materialised.
    """
    values = np.asarray(values, dtype=np.int64)
    ptr = np.asarray(ptr, dtype=np.int64)
    n_rows = ptr.size - 1
    row_bytes = n_packed_words(n_samples) * 8
    flat = np.zeros(n_rows * row_bytes, dtype=np.uint8)
    if values.size:
        rows = np.repeat(np.arange(n_rows), np.diff(ptr))
        _scatter_bits(
            flat, rows * row_bytes + (values >> 3), 128 >> (values & 7)
        )
    return flat.view(np.uint64).reshape(n_rows, row_bytes // 8)


def unpack_rows(words: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """CSR ``(values, ptr)`` of a ``(N, n_words)`` packed array.

    The inverse of :func:`pack_rows`: values ascend within each row
    (byte order is slot order), rows are contiguous in order, and only
    nonzero bytes are decoded.
    """
    words = np.ascontiguousarray(words)
    n_rows, n_words = words.shape
    counts = row_popcounts(words)
    ptr = np.concatenate([[0], np.cumsum(counts)])
    flat = words.view(np.uint8).reshape(-1)
    occupied = np.flatnonzero(flat)
    if not occupied.size:
        return np.empty(0, dtype=np.int64), ptr
    positions = np.flatnonzero(np.unpackbits(flat[occupied]))
    in_row = occupied[positions >> 3] % (n_words * 8)
    return in_row * 8 + (positions & 7), ptr


def unpack_coords(words: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(rows, slots)`` coordinates of every set bit in ``(N, n_words)``.

    Like :func:`unpack_rows` but without the CSR offsets — and
    therefore without any popcount pass, which keeps it cheap on the
    LUT fallback.  Pairs ascend row-major (row, then slot), the order
    the receivers' earliest-wins scatters rely on.
    """
    words = np.ascontiguousarray(words)
    n_words = words.shape[1]
    flat = words.view(np.uint8).reshape(-1)
    occupied = np.flatnonzero(flat)
    if not occupied.size:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    positions = np.flatnonzero(np.unpackbits(flat[occupied]))
    byte_index = occupied[positions >> 3]
    rows, in_row = np.divmod(byte_index, n_words * 8)
    return rows, in_row * 8 + (positions & 7)


# ----------------------------------------------------------------------
# Set algebra and reductions
# ----------------------------------------------------------------------


def bitwise_not(words: np.ndarray, n_samples: int) -> np.ndarray:
    """Complement within the grid (tail bits re-masked to zero).

    AND/OR/XOR and ``a & ~b`` of clean operands stay clean on their
    own; complement is the one primitive that must re-mask.
    """
    return ~words & tail_mask_words(n_samples)


def gate_table_words(
    op_ids: np.ndarray,
    a_words: np.ndarray,
    b_words: np.ndarray,
    n_samples: int,
) -> np.ndarray:
    """Row-wise 2-input truth-table gates on packed words.

    ``op_ids[i]`` selects which of the 16 Boolean functions row ``i``
    computes from ``a_words[i]`` and ``b_words[i]``, in the
    conventional enumeration (0 False, 1 AND, 6 XOR, 7 OR, 8 NOR,
    14 NAND, 15 True, ...): bit ``3 - (2a + b)`` of the id is the
    gate's output for inputs ``(a, b)``.  Every function is evaluated
    at once as a minterm sum —

        out = (a & b) & m11 | (a & ~b) & m10 | (~a & b) & m01
            | ~(a | b) & m00

    — with ``m..`` per-row all-ones/all-zeros masks broadcast from the
    id bits, so a whole heterogeneous layer of gates costs a few wide
    word-ops regardless of which functions it mixes.  Only the
    ``~(a | b)`` minterm can set bits beyond ``n_samples``, so clean
    operands cost exactly one tail re-mask of the last word column.
    Chunked over rows to bound the broadcast temporaries.
    """
    a_words = np.ascontiguousarray(a_words, dtype=np.uint64)
    b_words = np.ascontiguousarray(b_words, dtype=np.uint64)
    n_rows, n_words = a_words.shape
    ops = np.asarray(op_ids, dtype=np.uint64).reshape(n_rows, 1)
    out = np.empty((n_rows, n_words), dtype=np.uint64)
    full = np.uint64(0xFFFFFFFFFFFFFFFF)
    one = np.uint64(1)
    step = max(1, _CHUNK_BYTES // max(1, n_words * 8))
    for lo in range(0, n_rows, step):
        hi = min(lo + step, n_rows)
        a, b, op = a_words[lo:hi], b_words[lo:hi], ops[lo:hi]
        m11 = (op & one) * full
        m10 = ((op >> one) & one) * full
        m01 = ((op >> np.uint64(2)) & one) * full
        m00 = ((op >> np.uint64(3)) & one) * full
        ab = a & b
        block = ab & m11
        block |= (a ^ ab) & m10
        block |= (b ^ ab) & m01
        block |= ~(a | b) & m00
        out[lo:hi] = block
    if n_words:
        out[:, n_words - 1] &= tail_mask_words(n_samples)[-1]
    return out


def row_popcounts(words: np.ndarray) -> np.ndarray:
    """Per-row set-bit totals (spike counts) of ``(N, n_words)``."""
    return popcount(words).sum(axis=-1, dtype=np.int64)


def coincidence_counts(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise coincident-slot counts ``popcount(a & b)`` (broadcasting)."""
    return row_popcounts(a & b)


def _pair_chunk(n_refs: int, n_words: int) -> int:
    """Rows per chunk bounding the (chunk, M, n_words) intermediate."""
    return max(1, _CHUNK_BYTES // max(1, n_refs * n_words * 8))


def row_chunk_bounds(n_rows: int, n_chunks: int) -> Tuple[Tuple[int, int], ...]:
    """Contiguous ``[lo, hi)`` row ranges splitting ``n_rows`` evenly.

    The canonical row-axis split of every dispatch tier (serving shards
    and the pool-parallel kernel layer both use it): ``linspace``-based
    so ranges differ by at most one row, empty ranges dropped, and the
    split is a pure function of ``(n_rows, n_chunks)`` — the property
    that makes a parallel run's concatenated results bit-identical to
    the serial kernel on the same rows.
    """
    n_chunks = max(1, min(int(n_chunks), max(1, int(n_rows))))
    bounds = np.linspace(0, int(n_rows), n_chunks + 1).astype(np.int64)
    return tuple(
        (int(lo), int(hi))
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    )


def pairwise_counts(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(Na, Nb)`` coincident-slot counts between all row pairs.

    Chunked over ``a``'s rows so the broadcast intermediate stays a few
    MB however large the batch — the packed replacement for the dense
    ``raster @ raster.T`` Gram matrix at 1/8 the memory traffic.
    """
    n_a = a.shape[0]
    out = np.empty((n_a, b.shape[0]), dtype=np.int64)
    step = _pair_chunk(b.shape[0], b.shape[1])
    for lo in range(0, n_a, step):
        block = a[lo : lo + step, None, :] & b[None, :, :]
        out[lo : lo + step] = popcount(block).sum(axis=-1, dtype=np.int64)
    return out


def coincidence_any(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(Na, Nb)`` boolean: do rows ``a[i]`` and ``b[j]`` share a slot?"""
    n_a = a.shape[0]
    out = np.empty((n_a, b.shape[0]), dtype=bool)
    step = _pair_chunk(b.shape[0], b.shape[1])
    for lo in range(0, n_a, step):
        block = a[lo : lo + step, None, :] & b[None, :, :]
        out[lo : lo + step] = (block != 0).any(axis=-1)
    return out


# ----------------------------------------------------------------------
# Slot-ordered scans (byte view)
# ----------------------------------------------------------------------


def first_set_slots(words: np.ndarray) -> np.ndarray:
    """Earliest occupied slot per row of ``(N, n_words)`` (-1: empty row).

    Word-level ``argmax`` (first nonzero word), then a byte scan of
    just that word per row plus an 8-bit LUT — no unpacking, and the
    only full-width intermediate is one bool per *word*.
    """
    n_rows = words.shape[0]
    rows = np.arange(n_rows)
    nonzero = words != 0
    first_word = nonzero.argmax(axis=1)
    hit = nonzero[rows, first_word]
    word_bytes = (
        np.ascontiguousarray(words[rows, first_word])
        .view(np.uint8)
        .reshape(n_rows, 8)
    )
    byte_nonzero = word_bytes != 0
    first_byte = byte_nonzero.argmax(axis=1)
    slots = (
        first_word * 64
        + first_byte * 8
        + _FIRST_SLOT_LUT[word_bytes[rows, first_byte]]
    )
    return np.where(hit, slots, -1)


def first_and_slots(
    a: np.ndarray,
    b: np.ndarray,
    *,
    start: int = 0,
    chunk_words: int = 64,
) -> np.ndarray:
    """Earliest slot ``>= start`` set in ``a[i] & b`` per row (-1: none).

    ``b`` is one reference row ``(n_words,)`` broadcast against every
    row of ``a`` (or a matching ``(N, n_words)`` matrix).  Equivalent to
    ``first_set_slots`` of the masked AND, but chunked over words with
    early exit: a row drops out of the scan the moment its first
    coincident word is found, so when coincidences come early (the
    serving identify path) only the first chunk's bytes are ever
    touched — the full-width AND is the worst case, never the
    common one.
    """
    n_rows, n_words = a.shape[0], a.shape[1]
    out = np.full(n_rows, -1, dtype=np.int64)
    w0 = min(max(start, 0) >> 6, n_words)
    start_rem = max(start, 0) & 63
    unresolved = np.arange(n_rows)
    per_row = b.ndim == 2
    for lo in range(w0, n_words, chunk_words):
        if unresolved.size == 0:
            break
        hi = min(lo + chunk_words, n_words)
        ref = b[unresolved, lo:hi] if per_row else b[lo:hi]
        block = a[unresolved, lo:hi] & ref
        if lo == w0 and start_rem:
            # Slots < start inside the first scanned word don't count.
            block[:, 0] &= ~le_word_masks(np.array([start - 1]))[0]
        slots = first_set_slots(block)
        found = slots >= 0
        out[unresolved[found]] = lo * 64 + slots[found]
        unresolved = unresolved[~found]
    return out


def first_coincident_slots(wires: np.ndarray, refs: np.ndarray) -> np.ndarray:
    """``(N, M)`` earliest coincident slot of each wire/reference pair.

    -1 where a pair never coincides.  Chunked over wire rows like
    :func:`pairwise_counts`.
    """
    n_wires, n_words = wires.shape[0], wires.shape[1]
    n_refs = refs.shape[0]
    out = np.empty((n_wires, n_refs), dtype=np.int64)
    step = _pair_chunk(n_refs, n_words)
    for lo in range(0, n_wires, step):
        block = wires[lo : lo + step, None, :] & refs[None, :, :]
        as_bytes = block.view(np.uint8).reshape(block.shape[0], n_refs, -1)
        nonzero = as_bytes != 0
        first_byte = nonzero.argmax(axis=2)
        hit = np.take_along_axis(nonzero, first_byte[..., None], axis=2)[..., 0]
        values = np.take_along_axis(as_bytes, first_byte[..., None], axis=2)[..., 0]
        slots = first_byte * 8 + _FIRST_SLOT_LUT[values]
        out[lo : lo + step] = np.where(hit, slots, -1)
    return out


def clear_slots_before(words: np.ndarray, start: int) -> None:
    """Zero all slots ``< start`` in place (rows × words, writable)."""
    if start <= 0:
        return
    as_bytes = words.view(np.uint8).reshape(words.shape[0], -1)
    start_byte = start >> 3
    if start_byte >= as_bytes.shape[1]:
        as_bytes[:] = 0
        return
    as_bytes[:, :start_byte] = 0
    rem = start & 7
    if rem:
        as_bytes[:, start_byte] &= np.uint8(0xFF >> rem)


def clear_slots_from(words: np.ndarray, limit: int) -> None:
    """Zero all slots ``>= limit`` in place (rows × words, writable)."""
    as_bytes = words.view(np.uint8).reshape(words.shape[0], -1)
    if limit <= 0:
        as_bytes[:] = 0
        return
    limit_byte = limit >> 3
    if limit_byte >= as_bytes.shape[1]:
        return
    rem = limit & 7
    if rem:
        as_bytes[:, limit_byte] &= _MASK_LE[rem - 1]
        as_bytes[:, limit_byte + 1 :] = 0
    else:
        as_bytes[:, limit_byte:] = 0


def le_word_masks(slots: np.ndarray) -> np.ndarray:
    """Per-slot uint64 masks keeping the slots ``<= slot`` *within its word*.

    Used to count spikes up to a per-row decision slot: full words
    before the decision word come from a popcount prefix sum, the
    partial word is ``word & le_word_masks(slot)``.  Slot values are
    taken modulo 64.
    """
    slots = np.asarray(slots, dtype=np.int64)
    byte_in_word = (slots >> 3) & 7
    masks = np.zeros((slots.size, 8), dtype=np.uint8)
    masks[np.arange(8)[None, :] < byte_in_word[:, None]] = 0xFF
    masks[np.arange(slots.size), byte_in_word] = _MASK_LE[slots & 7]
    return masks.view(np.uint64).reshape(slots.shape)
