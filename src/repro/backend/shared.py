"""Zero-copy shared-memory transport for batch workloads.

The sharded runner's original contract — *workers rebuild their inputs
deterministically* — pays a per-shard rebuild (noise synthesis,
orthogonator transform, basis construction) that swamps the win of
parallelism for small shards.  This module replaces rebuilding with
*attaching*: the parent materialises a workload once, places its arrays
into POSIX shared memory, and ships workers a handle that pickles as a
few hundred bytes of metadata.  Workers map the same physical pages —
the dispatch payload is independent of the workload size.

Three pieces:

* :class:`SharedArena` — a context manager owning the lifecycle of the
  segments created for one sharded run.  ``share_array`` copies an
  ndarray into a fresh segment and returns its :class:`SharedArraySpec`;
  leaving the ``with`` block (on success *or* failure) unlinks every
  segment, so a worker crash mid-shard cannot leak ``/dev/shm`` entries.
* :class:`SharedArraySpec` — the picklable description of one shared
  array (segment name, shape, dtype, owning arena token).  This is the
  only thing that crosses the process boundary.
* :func:`attach_array` — worker-side attach through a per-process
  :class:`AttachmentCache`: the first task touching a segment maps it,
  later tasks of the same run reuse the mapping ("attach once per
  worker").  A task from a *newer* arena evicts the previous run's
  mappings, and the runner additionally broadcasts an explicit
  release to every worker at the end of each shared run
  (:meth:`repro.pipeline.runner.Runner.release_worker_attachments`),
  so finished arenas free immediately instead of waiting for the next
  run's tasks.

Attached batch payloads are the *packed words* of
:class:`~repro.backend.batch.SpikeTrainBatch` — workers wrap their row
range as a packed-primary view of the mapped segment and run the
packed kernels (:mod:`repro.backend.packed`) directly on it, so a
shard's compute never copies, unpacks, or re-rasters the payload.

``HAVE_SHARED_MEMORY`` is False on interpreters without
:mod:`multiprocessing.shared_memory`; callers (the runner) fall back to
the rebuild path in that case.

Tracking note: on POSIX CPython both creating *and* attaching register
the segment with the ``multiprocessing`` resource tracker, and
``unlink`` unregisters it.  Because the arena always unlinks exactly
once — including on failure paths — the tracker's ledger is clean at
interpreter shutdown and no "leaked shared_memory objects" warnings are
emitted.
"""

from __future__ import annotations

import uuid
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "HAVE_SHARED_MEMORY",
    "SharedArraySpec",
    "SharedArena",
    "AttachmentCache",
    "attach_array",
    "process_cache",
]

try:
    from multiprocessing import shared_memory

    HAVE_SHARED_MEMORY = True
except ImportError:  # pragma: no cover - stripped-down interpreters
    shared_memory = None  # type: ignore[assignment]
    HAVE_SHARED_MEMORY = False


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable metadata locating one ndarray in shared memory.

    Attributes
    ----------
    arena:
        Token of the :class:`SharedArena` that owns the segment; worker
        caches key their eviction on it (a new token flushes mappings
        held for the previous run).
    name:
        The shared-memory segment name.
    shape / dtype:
        Enough to view the raw buffer as the original array
        (C-contiguous layout by construction).
    """

    arena: str
    name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Payload size of the described array."""
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


def _unlink_segments(segments: List) -> None:
    """Close and unlink every segment; tolerant of partial teardown."""
    while segments:
        segment = segments.pop()
        try:
            segment.close()
        except BufferError:  # pragma: no cover - exported views linger
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class SharedArena:
    """Owns the shared-memory segments of one sharded run.

    Use as a context manager::

        with SharedArena() as arena:
            spec = arena.share_array(workload_array)
            ...dispatch tasks carrying ``spec``...
        # segments unlinked here, success or failure

    ``close`` (and therefore ``__exit__``) unlinks every segment the
    arena created; a :mod:`weakref` finalizer covers arenas abandoned
    without either, so segment lifetime is never tied to garbage
    collection order.  Workers that still hold attachments keep the
    physical pages alive until they detach or exit — unlinking only
    removes the name, which is exactly the handoff the runner needs.
    """

    def __init__(self) -> None:
        if not HAVE_SHARED_MEMORY:
            raise RuntimeError(
                "multiprocessing.shared_memory is unavailable on this "
                "interpreter; use the rebuild shard path instead"
            )
        self.token = uuid.uuid4().hex
        self._segments: List = []
        self._finalizer = weakref.finalize(
            self, _unlink_segments, self._segments
        )

    def share_array(self, array: np.ndarray) -> SharedArraySpec:
        """Copy ``array`` into a fresh segment; returns its spec.

        The copy is the *last* one: every consumer views the same
        segment.  Zero-size arrays still get a (1-byte) segment so the
        spec round-trips uniformly.  Raises on a closed arena — a
        segment created after ``close()`` would have no owner left to
        unlink it.
        """
        if not self._finalizer.alive:
            raise RuntimeError(
                "cannot share arrays through a closed SharedArena"
            )
        arr = np.ascontiguousarray(array)
        segment = shared_memory.SharedMemory(
            create=True, size=max(1, arr.nbytes)
        )
        self._segments.append(segment)
        if arr.nbytes:
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf)
            view[...] = arr
        return SharedArraySpec(
            arena=self.token,
            name=segment.name,
            shape=tuple(int(n) for n in arr.shape),
            dtype=arr.dtype.str,
        )

    @property
    def segment_names(self) -> Tuple[str, ...]:
        """Names of the live segments (diagnostics and leak tests)."""
        return tuple(segment.name for segment in self._segments)

    @property
    def total_bytes(self) -> int:
        """Total bytes resident across the arena's segments."""
        return sum(segment.size for segment in self._segments)

    def close(self) -> None:
        """Unlink every segment.  Idempotent."""
        self._finalizer()

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class AttachmentCache:
    """Per-process map of segment name → live attachment.

    The pool workers' side of "attach once per worker": the first task
    that touches a segment maps it, subsequent tasks of the same run hit
    the cache.  A spec from a *different* arena token evicts every
    cached mapping first — the previous run's segments are unlinked by
    then, and closing our attachment releases the pages.
    """

    def __init__(self) -> None:
        self._arena: Optional[str] = None
        self._attached: Dict[str, object] = {}

    def attach(self, spec: SharedArraySpec) -> np.ndarray:
        """A read-only ndarray view of the segment described by ``spec``."""
        if spec.arena != self._arena:
            self.release()
            self._arena = spec.arena
        segment = self._attached.get(spec.name)
        if segment is None:
            segment = shared_memory.SharedMemory(name=spec.name)
            self._attached[spec.name] = segment
        array = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf
        )
        array.setflags(write=False)
        return array

    def release(self) -> None:
        """Close every attachment (views created from them must be dead)."""
        for segment in self._attached.values():
            try:
                segment.close()
            except BufferError:  # pragma: no cover - a view escaped a task
                pass  # dropping the ref frees the mapping at process exit
        self._attached.clear()
        self._arena = None

    def __len__(self) -> int:
        return len(self._attached)


_PROCESS_CACHE: Optional[AttachmentCache] = None


def process_cache() -> AttachmentCache:
    """This process's attachment cache (created on first use)."""
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = AttachmentCache()
    return _PROCESS_CACHE


def attach_array(spec: SharedArraySpec) -> np.ndarray:
    """Attach one shared array through the process cache.

    In the creating process this maps the same physical pages the arena
    wrote — the arrays compare equal and share no Python state, which is
    what the round-trip tests exercise without spawning workers.
    """
    return process_cache().attach(spec)
