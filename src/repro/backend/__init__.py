"""Backend layer: vectorised batch execution for spike-train hot paths.

* :class:`SpikeTrainBatch` — N trains × T slots on one grid, with CSR,
  word-aligned packed-bitset and dense-raster representations, each
  materialised lazily.  The packed words are the *compute-primary*
  dense form: batches born packed (``from_packed``, shared-memory
  attachments, packed set-op results) run set algebra, popcount
  statistics and the batched receivers directly on the bitset through
  :mod:`~repro.backend.packed` and decode their CSR only if someone
  asks for indices;
* :mod:`~repro.backend.packed` — the bit-parallel kernel layer:
  popcount (``np.bitwise_count`` or a 16-bit-LUT fallback, forced via
  ``REPRO_FORCE_POPCOUNT_LUT``), pack/unpack that touches only
  occupied bytes, tail-masked set algebra, first-coincidence scans and
  coincidence scoring on ``uint64`` views of packbits arrays;
* :class:`Backend` protocol with :class:`SortedSetBackend` (merge-based,
  sparse-friendly), :class:`RasterBackend` (dense boolean pass) and
  :class:`BitsetBackend` (packed-word pass, never unpacks the grid)
  implementations;
* :func:`select_backend` / :func:`select_batch_backend` — density- and
  residency-based auto-selection used by
  :class:`~repro.spikes.train.SpikeTrain` set algebra and the batch
  paths: sparse scalar operands merge, dense ones raster; batches stay
  on whatever representation is resident (packed attachments never
  unpack) and CSR-resident batches pick merge vs packed by density;
* :func:`use_backend` / :func:`set_default_backend` — pin a backend
  (tests pin each in turn to prove them bit-identical);
* :mod:`~repro.backend.shared` — zero-copy shared-memory transport:
  :class:`SharedArena` owns segment lifecycle for one sharded run,
  :meth:`SpikeTrainBatch.to_shared` / :meth:`SpikeTrainBatch.from_shared`
  move batches as metadata-only :class:`SharedBatchHandle` objects
  whose payload is the packed words — attached shard workers compute
  straight on the mapped bitset.
"""

from .shared import (
    HAVE_SHARED_MEMORY,
    AttachmentCache,
    SharedArena,
    SharedArraySpec,
    attach_array,
    process_cache,
)
from . import mmapstore
from . import packed
from . import parallel
from .core import (
    RASTER_DENSITY_THRESHOLD,
    Backend,
    BitsetBackend,
    RasterBackend,
    SortedSetBackend,
    available_backends,
    get_backend,
    pinned_backend_name,
    select_backend,
    select_batch_backend,
    set_default_backend,
    use_backend,
)

# SpikeTrainBatch is exported lazily (PEP 562): batch.py builds on
# SpikeTrain, whose module imports .core from this package — an eager
# import here would close that cycle during interpreter start-up.
def __getattr__(name):
    if name in ("SpikeTrainBatch", "SharedBatchHandle"):
        from . import batch

        return getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "SpikeTrainBatch",
    "SharedBatchHandle",
    "SharedArena",
    "SharedArraySpec",
    "AttachmentCache",
    "attach_array",
    "process_cache",
    "HAVE_SHARED_MEMORY",
    "Backend",
    "SortedSetBackend",
    "RasterBackend",
    "BitsetBackend",
    "RASTER_DENSITY_THRESHOLD",
    "available_backends",
    "get_backend",
    "mmapstore",
    "packed",
    "parallel",
    "pinned_backend_name",
    "select_backend",
    "select_batch_backend",
    "set_default_backend",
    "use_backend",
]
