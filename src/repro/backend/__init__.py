"""Backend layer: vectorised batch execution for spike-train hot paths.

* :class:`SpikeTrainBatch` — N trains × T slots on one grid, with CSR,
  dense-raster and ``np.packbits`` bitset representations;
* :class:`Backend` protocol with :class:`SortedSetBackend` (merge-based,
  sparse-friendly), :class:`RasterBackend` (dense boolean pass) and
  :class:`BitsetBackend` (packed-bit pass) implementations;
* :func:`select_backend` — density-based auto-selection used by
  :class:`~repro.spikes.train.SpikeTrain` set algebra;
* :func:`use_backend` / :func:`set_default_backend` — pin a backend
  (tests pin each in turn to prove them bit-identical);
* :mod:`~repro.backend.shared` — zero-copy shared-memory transport:
  :class:`SharedArena` owns segment lifecycle for one sharded run,
  :meth:`SpikeTrainBatch.to_shared` / :meth:`SpikeTrainBatch.from_shared`
  move batches as metadata-only :class:`SharedBatchHandle` objects.
"""

from .shared import (
    HAVE_SHARED_MEMORY,
    AttachmentCache,
    SharedArena,
    SharedArraySpec,
    attach_array,
    process_cache,
)
from .core import (
    RASTER_DENSITY_THRESHOLD,
    Backend,
    BitsetBackend,
    RasterBackend,
    SortedSetBackend,
    available_backends,
    get_backend,
    select_backend,
    set_default_backend,
    use_backend,
)

# SpikeTrainBatch is exported lazily (PEP 562): batch.py builds on
# SpikeTrain, whose module imports .core from this package — an eager
# import here would close that cycle during interpreter start-up.
def __getattr__(name):
    if name in ("SpikeTrainBatch", "SharedBatchHandle"):
        from . import batch

        return getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "SpikeTrainBatch",
    "SharedBatchHandle",
    "SharedArena",
    "SharedArraySpec",
    "AttachmentCache",
    "attach_array",
    "process_cache",
    "HAVE_SHARED_MEMORY",
    "Backend",
    "SortedSetBackend",
    "RasterBackend",
    "BitsetBackend",
    "RASTER_DENSITY_THRESHOLD",
    "available_backends",
    "get_backend",
    "select_backend",
    "set_default_backend",
    "use_backend",
]
