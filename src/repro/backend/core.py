"""Execution backends for spike-slot set algebra.

A :class:`Backend` computes the four set operations (union,
intersection, difference, symmetric difference) over sorted,
duplicate-free ``int64`` slot arrays — the representation
:class:`~repro.spikes.train.SpikeTrain` carries.  Two families exist:

* :class:`SortedSetBackend` — the original merge-based implementation
  (``np.union1d`` and friends).  O((n+m) log(n+m)) with tiny constant
  factors and no dependence on the grid length; the right choice for
  sparse trains.
* :class:`RasterBackend` — scatters both operands into dense boolean
  occupancy arrays of length ``n_samples``, applies one elementwise
  boolean operation, and gathers the result.  O(T) regardless of spike
  count; wins once the operands occupy more than a few percent of the
  grid.  :class:`BitsetBackend` is its ``np.packbits`` variant: eight
  slots per byte, so the elementwise pass touches ``T / 8`` bytes.
  Since the packed-kernel layer (:mod:`~repro.backend.packed`) landed,
  the bitset is the *compute-primary* dense form of
  :class:`~repro.backend.batch.SpikeTrainBatch` — the representation
  the batched receivers, the shared-memory shard dispatch and the
  serving front-end's wire protocol all operate on directly — and
  :class:`BitsetBackend` scatter-packs and decodes only nonzero bytes,
  never the grid.

:func:`select_backend` picks between them by operand density, the
crossover measured by ``benchmarks/bench_batch_throughput.py``;
:func:`use_backend` pins one explicitly (tests use it to prove the
implementations bit-identical).
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional, Union

import numpy as np

from ..errors import ConfigurationError
from . import packed as packed_kernels

__all__ = [
    "Backend",
    "SortedSetBackend",
    "RasterBackend",
    "BitsetBackend",
    "RASTER_DENSITY_THRESHOLD",
    "available_backends",
    "get_backend",
    "pinned_backend_name",
    "select_backend",
    "select_batch_backend",
    "use_backend",
    "set_default_backend",
]

#: Combined operand density (total spikes / grid length) above which the
#: dense raster pass beats the sorted merge.  The merge costs
#: O(n log n) with n = total spikes; the raster pass costs O(T) with a
#: much smaller per-element constant, so the crossover sits at a few
#: percent occupancy.
RASTER_DENSITY_THRESHOLD = 1.0 / 64.0


class Backend:
    """Set algebra over sorted, unique ``int64`` slot arrays.

    All four operations take the two operand arrays plus the grid
    length ``n_samples`` (raster backends need it to size the dense
    pass) and return a sorted, unique ``int64`` array.  Implementations
    must be bit-identical to one another — that invariant is what lets
    :func:`select_backend` switch freely on density.
    """

    #: Registry key, e.g. ``"sorted"`` or ``"raster"``.
    name: str = "abstract"

    def union(self, a: np.ndarray, b: np.ndarray, n_samples: int) -> np.ndarray:
        raise NotImplementedError

    def intersection(self, a: np.ndarray, b: np.ndarray, n_samples: int) -> np.ndarray:
        raise NotImplementedError

    def difference(self, a: np.ndarray, b: np.ndarray, n_samples: int) -> np.ndarray:
        raise NotImplementedError

    def symmetric_difference(
        self, a: np.ndarray, b: np.ndarray, n_samples: int
    ) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class SortedSetBackend(Backend):
    """Merge-based set algebra on the sorted index arrays directly."""

    name = "sorted"

    def union(self, a: np.ndarray, b: np.ndarray, n_samples: int) -> np.ndarray:
        return np.union1d(a, b)

    def intersection(self, a: np.ndarray, b: np.ndarray, n_samples: int) -> np.ndarray:
        return np.intersect1d(a, b, assume_unique=True)

    def difference(self, a: np.ndarray, b: np.ndarray, n_samples: int) -> np.ndarray:
        return np.setdiff1d(a, b, assume_unique=True)

    def symmetric_difference(
        self, a: np.ndarray, b: np.ndarray, n_samples: int
    ) -> np.ndarray:
        return np.setxor1d(a, b, assume_unique=True)


class RasterBackend(Backend):
    """Dense boolean-occupancy set algebra (scatter, boolean op, gather)."""

    name = "raster"

    @staticmethod
    def _raster(indices: np.ndarray, n_samples: int) -> np.ndarray:
        raster = np.zeros(n_samples, dtype=bool)
        raster[indices] = True
        return raster

    def _apply(self, op, a, b, n_samples):
        result = op(self._raster(a, n_samples), self._raster(b, n_samples))
        return np.flatnonzero(result).astype(np.int64, copy=False)

    def union(self, a: np.ndarray, b: np.ndarray, n_samples: int) -> np.ndarray:
        return self._apply(np.logical_or, a, b, n_samples)

    def intersection(self, a: np.ndarray, b: np.ndarray, n_samples: int) -> np.ndarray:
        return self._apply(np.logical_and, a, b, n_samples)

    def difference(self, a: np.ndarray, b: np.ndarray, n_samples: int) -> np.ndarray:
        return self._apply(lambda x, y: x & ~y, a, b, n_samples)

    def symmetric_difference(
        self, a: np.ndarray, b: np.ndarray, n_samples: int
    ) -> np.ndarray:
        return self._apply(np.logical_xor, a, b, n_samples)


class BitsetBackend(Backend):
    """Packed-word set algebra: eight slots per byte, never unpacked.

    Operands scatter straight into packbits bytes (O(spikes), no dense
    raster), the elementwise pass runs over ``ceil(T / 8)`` bytes with
    native bitwise instructions, and the result decodes only its
    *nonzero* bytes back to indices
    (:func:`~repro.backend.packed.unpack_indices`) — the whole
    operation touches an eighth of the raster backend's bytes.
    Bit-identical to the other backends by construction.
    """

    name = "bitset"

    @staticmethod
    def _pack(indices: np.ndarray, n_samples: int) -> np.ndarray:
        return packed_kernels.pack_indices(indices, n_samples)

    def _apply(self, op, a, b, n_samples):
        result = op(self._pack(a, n_samples), self._pack(b, n_samples))
        return packed_kernels.unpack_indices(result)

    def union(self, a: np.ndarray, b: np.ndarray, n_samples: int) -> np.ndarray:
        return self._apply(np.bitwise_or, a, b, n_samples)

    def intersection(self, a: np.ndarray, b: np.ndarray, n_samples: int) -> np.ndarray:
        return self._apply(np.bitwise_and, a, b, n_samples)

    def difference(self, a: np.ndarray, b: np.ndarray, n_samples: int) -> np.ndarray:
        return self._apply(lambda x, y: x & ~y, a, b, n_samples)

    def symmetric_difference(
        self, a: np.ndarray, b: np.ndarray, n_samples: int
    ) -> np.ndarray:
        return self._apply(np.bitwise_xor, a, b, n_samples)


_BACKENDS = {
    backend.name: backend
    for backend in (SortedSetBackend(), RasterBackend(), BitsetBackend())
}

#: Pinned backend; None means density-based auto-selection.
_forced: Optional[Backend] = None


def available_backends() -> tuple:
    """Registered backend names, in registration order."""
    return tuple(_BACKENDS)


def get_backend(name: Union[str, Backend]) -> Backend:
    """Resolve a backend by name (or pass an instance through)."""
    if isinstance(name, Backend):
        return name
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; available: {list(_BACKENDS)}"
        ) from None


def select_backend(total_spikes: int, n_samples: int) -> Backend:
    """Pick the backend for one operation by operand density.

    ``total_spikes`` is the combined size of both operands.  Returns
    the pinned backend when :func:`use_backend` /
    :func:`set_default_backend` is in effect; otherwise the raster
    backend above :data:`RASTER_DENSITY_THRESHOLD` occupancy and the
    sorted-merge backend below it.
    """
    if _forced is not None:
        return _forced
    if n_samples > 0 and total_spikes >= RASTER_DENSITY_THRESHOLD * n_samples:
        return _BACKENDS["raster"]
    return _BACKENDS["sorted"]


def pinned_backend_name() -> Optional[str]:
    """Name of the pinned backend, or None under auto-selection.

    Batch fast-path routing consults this so a ``use_backend("bitset")``
    pin forces the packed kernels (and any other pin forces the CSR /
    raster paths) — which is how the equivalence tests drive every
    implementation over identical inputs.
    """
    return None if _forced is None else _forced.name


def select_batch_backend(
    total_spikes: int,
    n_rows: int,
    n_samples: int,
    *,
    csr_ready: bool = False,
    packed_ready: bool = False,
    raster_ready: bool = False,
) -> str:
    """Representation choice (``"sorted"``/``"raster"``/``"bitset"``) for one batch op.

    The batched analogue of :func:`select_backend`, consulted by
    :class:`~repro.backend.batch.SpikeTrainBatch` set algebra and the
    batched receivers.  ``"sorted"`` means *walk the CSR* (gathers and
    merges over the index arrays), ``"raster"`` the dense boolean pass,
    ``"bitset"`` the packed-word kernels of
    :mod:`~repro.backend.packed`.  The policy, measured by
    ``benchmarks/bench_packed_kernels.py``:

    * a pinned backend always wins (``use_backend``); pinning
      ``"sorted"``/``"raster"`` keeps the pre-packed code paths, which
      is how the equivalence tests drive every implementation;
    * a materialised dense raster on an operand makes the raster pass
      cheapest — its scatter is already paid;
    * a batch whose packed words are resident but whose CSR is not
      (shared-memory attachments, packed set-op results) stays packed:
      decoding first would touch 8× the bytes the operation needs;
    * with only the CSR resident, sparse batches (density below
      :data:`RASTER_DENSITY_THRESHOLD`) walk it — O(total spikes),
      independent of the grid — and dense batches pack: the packed
      pass plus the O(spikes) pack scatter undercuts per-spike gather
      chains once most slots are occupied, and the result's CSR
      decodes lazily only if someone asks for indices.

    Callers without an implementation for the returned family fall to
    their nearest equivalent (batch set algebra, which has no merge
    form, treats ``"sorted"`` as ``"bitset"``).
    """
    forced = pinned_backend_name()
    if forced is not None:
        return forced
    if raster_ready:
        return "raster"
    if not csr_ready:
        return "bitset"
    if total_spikes < RASTER_DENSITY_THRESHOLD * n_rows * n_samples:
        return "sorted"
    return "bitset"


def set_default_backend(name: Optional[Union[str, Backend]]) -> None:
    """Pin every set operation to one backend; ``None`` restores auto."""
    global _forced
    _forced = None if name is None else get_backend(name)


@contextlib.contextmanager
def use_backend(name: Optional[Union[str, Backend]]) -> Iterator[Backend]:
    """Context manager pinning the backend within a ``with`` block."""
    global _forced
    previous = _forced
    _forced = None if name is None else get_backend(name)
    try:
        yield _forced if _forced is not None else _BACKENDS["sorted"]
    finally:
        _forced = previous
