"""Memmap residency: the packed bitset persisted as ``.npy`` word files.

The third leg of the residency design.  ``shared.py`` proved the packed
kernels run bit-identically on *externally mapped* word buffers — a
shard worker attaches a shared-memory segment and wraps a row range as
a packed-primary view.  A disk file mapped with
``np.lib.format.open_memmap`` is exactly the same shape of thing: an
``(N, ceil(n_samples / 64))`` ``uint64`` array whose pages the kernel
faults in on demand.  This module is the thin layer that writes and
reopens those files so :meth:`~repro.backend.batch.SpikeTrainBatch.
from_memmap` can adopt them zero-copy.

Why the word-aligned packed form and not the raster or the CSR:

* it is 8× smaller than the dense raster on disk and in page cache;
* it is the kernels' compute substrate, so a mapped file is served
  without any per-request transform — reads touch only the pages the
  popcount/scan actually visits;
* row ``i`` lives at a fixed offset (``i * n_words * 8`` bytes past the
  ``.npy`` header), so a row range ``[lo, hi)`` maps as one contiguous
  slice — the windowed-loading contract the corpus store
  (:mod:`repro.pipeline.corpus`) builds row-range indexing on.

``.npy`` (via ``np.lib.format.open_memmap``) rather than a raw blob
means every segment is self-describing — shape and dtype live in the
file header, ``np.load`` can inspect one, and a copied segment cannot
silently change geometry.
"""

from __future__ import annotations

import pathlib
from typing import Optional, Tuple, Union

import numpy as np

from ..errors import SpikeTrainError
from . import packed as packed_kernels

__all__ = [
    "write_words",
    "open_words",
    "words_shape",
]

PathLike = Union[str, pathlib.Path]


def write_words(path: PathLike, words: np.ndarray) -> pathlib.Path:
    """Persist one word-aligned packed array as ``path`` (``.npy``).

    ``words`` must be ``(N, n_words)`` ``uint64`` — the exact array
    :meth:`~repro.backend.batch.SpikeTrainBatch.packed_words` returns.
    The file is written through a memmap (``mode="w+"``), flushed, and
    closed; N may be 0 (an empty segment is legal and self-describing).
    """
    path = pathlib.Path(path)
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise SpikeTrainError(
            f"packed words must be 2-D (N, n_words), got shape {words.shape}"
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    out = np.lib.format.open_memmap(
        path, mode="w+", dtype=np.uint64, shape=words.shape
    )
    try:
        out[...] = words
        out.flush()
    finally:
        # Drop the mapping promptly instead of waiting for GC: corpus
        # ingestion writes many segments in one pass.
        del out
    return path


def words_shape(path: PathLike) -> Tuple[int, int]:
    """The ``(n_rows, n_words)`` geometry of a words file, header only.

    Reads just the ``.npy`` header — no pages of the payload are
    touched, so a corpus manifest can be verified against its segment
    files without faulting anything in.
    """
    path = pathlib.Path(path)
    readers = {
        (1, 0): np.lib.format.read_array_header_1_0,
        (2, 0): np.lib.format.read_array_header_2_0,
        # The 3.0 header only widens the field encoding to UTF-8; its
        # layout is the 2.0 one.
        (3, 0): np.lib.format.read_array_header_2_0,
    }
    with open(path, "rb") as stream:
        version = np.lib.format.read_magic(stream)
        reader = readers.get(tuple(version))
        if reader is None:
            raise SpikeTrainError(
                f"{path}: unsupported .npy format version {version}"
            )
        shape, fortran, dtype = reader(stream)
    if dtype != np.dtype(np.uint64) or len(shape) != 2 or fortran:
        raise SpikeTrainError(
            f"{path} is not a packed words file: "
            f"dtype={dtype}, shape={shape}, fortran={fortran}"
        )
    return int(shape[0]), int(shape[1])


def open_words(
    path: PathLike,
    n_samples: Optional[int] = None,
    rows: Optional[Tuple[int, int]] = None,
) -> np.ndarray:
    """Map a words file read-only and return (a row range of) it.

    The returned array is a read-only view of the file's pages —
    nothing is read until a kernel touches it, and slicing ``rows=(lo,
    hi)`` before any access means only that window's pages can ever
    fault in: peak RSS is bounded by the window, not the file.

    ``n_samples`` (when given) validates the file's word width against
    the grid the caller intends to compute on — a geometry mismatch is
    an error here, at the mapping boundary, not a silent wrong answer
    in a kernel.
    """
    path = pathlib.Path(path)
    mapped = np.lib.format.open_memmap(path, mode="r")
    if mapped.dtype != np.uint64 or mapped.ndim != 2:
        raise SpikeTrainError(
            f"{path} is not a packed words file: "
            f"dtype={mapped.dtype}, ndim={mapped.ndim}"
        )
    if n_samples is not None:
        n_words = packed_kernels.n_packed_words(n_samples)
        if mapped.shape[1] != n_words:
            raise SpikeTrainError(
                f"{path} holds {mapped.shape[1]}-word rows, expected "
                f"{n_words} for a grid of {n_samples} samples"
            )
    if rows is not None:
        lo, hi = int(rows[0]), int(rows[1])
        if not (0 <= lo <= hi <= mapped.shape[0]):
            raise SpikeTrainError(
                f"row range [{lo}, {hi}) outside mapped file of "
                f"{mapped.shape[0]} rows"
            )
        mapped = mapped[lo:hi]
    return mapped
