"""Experiment T2: reproduce Table 2 (intersection orthogonator statistics).

Second-order intersection-based orthogonator on zero-crossing spikes of
two band-limited white noises (5 MHz–10 GHz, 65 536 points), in two
configurations:

* uncorrelated sources (Figure 2): the coincidence product A·B is ~25×
  slower than the exclusive products;
* correlated sources via a 0.945/0.055 common-mode mix (Figure 3): all
  three outputs homogenized to comparable rates.

Run directly: ``python -m repro.experiments.table2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..analysis.tables import StatsRow, StatsTable
from ..noise.correlated import (
    PAPER_COMMON_AMPLITUDE,
    PAPER_PRIVATE_AMPLITUDE,
    CommonModeMixer,
)
from ..noise.spectra import PAPER_WHITE_BAND, WhiteSpectrum
from ..noise.synthesis import NoiseSynthesizer, make_rng
from ..orthogonator.homogenize import homogenization_spread
from ..orthogonator.intersection import IntersectionOrthogonator
from ..spikes.statistics import isi_statistics
from ..spikes.zero_crossing import AllCrossingDetector
from ..units import paper_white_grid
from .paper_constants import (
    PAPER_N_POINTS,
    TABLE2_CORRELATED,
    TABLE2_UNCORRELATED,
)

__all__ = ["Table2Result", "run_table2"]


@dataclass(frozen=True)
class Table2Result:
    """Both configurations of Table 2 plus the homogenization metric."""

    uncorrelated: StatsTable
    correlated: StatsTable
    spread_uncorrelated: float
    spread_correlated: float

    def render(self) -> str:
        """Full text report."""
        return (
            f"{self.uncorrelated.render()}\n"
            f"rate spread (max/min): {self.spread_uncorrelated:.1f}x\n\n"
            f"{self.correlated.render()}\n"
            f"rate spread (max/min): {self.spread_correlated:.2f}x"
        )


def _run_configuration(
    correlated: bool,
    seed: int,
    n_samples: int,
) -> Tuple[StatsTable, float]:
    grid = paper_white_grid(n_samples=n_samples)
    synthesizer = NoiseSynthesizer(WhiteSpectrum(PAPER_WHITE_BAND), grid)
    rng = make_rng(seed)
    if correlated:
        mixer = CommonModeMixer(
            synthesizer,
            common_amplitude=PAPER_COMMON_AMPLITUDE,
            private_amplitude=PAPER_PRIVATE_AMPLITUDE,
        )
        record_a, record_b = mixer.generate(2, rng=rng)
    else:
        record_a = synthesizer.generate(rng)
        record_b = synthesizer.generate(rng)

    detector = AllCrossingDetector()
    train_a = detector.detect(record_a, grid)
    train_b = detector.detect(record_b, grid)
    device = IntersectionOrthogonator(2)
    output = device.transform(train_a, train_b)

    reference = TABLE2_CORRELATED if correlated else TABLE2_UNCORRELATED
    title = (
        "Table 2 — correlated sources (0.945/0.055 common mode)"
        if correlated
        else "Table 2 — uncorrelated sources"
    )
    table = StatsTable(title)
    table.add(StatsRow("A", isi_statistics(train_a), reference["A"]))
    table.add(StatsRow("B", isi_statistics(train_b), reference["B"]))
    for label in output.labels:
        table.add(StatsRow(label, isi_statistics(output[label]), reference[label]))
    return table, homogenization_spread(output)


def run_table2(seed: int = 2016, n_samples: int = PAPER_N_POINTS) -> Table2Result:
    """Run experiment T2 and return the paper-vs-measured tables."""
    uncorrelated, spread_u = _run_configuration(False, seed, n_samples)
    correlated, spread_c = _run_configuration(True, seed + 1, n_samples)
    return Table2Result(
        uncorrelated=uncorrelated,
        correlated=correlated,
        spread_uncorrelated=spread_u,
        spread_correlated=spread_c,
    )


def main() -> None:
    """Print the Table 2 reproduction."""
    print(run_table2().render())


if __name__ == "__main__":
    main()
