"""Experiment T2: reproduce Table 2 (intersection orthogonator statistics).

Second-order intersection-based orthogonator on zero-crossing spikes of
two band-limited white noises (5 MHz–10 GHz, 65 536 points), in two
configurations:

* uncorrelated sources (Figure 2): the coincidence product A·B is ~25×
  slower than the exclusive products;
* correlated sources via a 0.945/0.055 common-mode mix (Figure 3): all
  three outputs homogenized to comparable rates.

Run directly: ``python -m repro.experiments.table2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..analysis.tables import StatsRow, StatsTable
from ..backend.shared import SharedArena, SharedArraySpec, attach_array
from ..pipeline.registry import register
from ..pipeline.spec import ExperimentSpec
from ..noise.correlated import (
    PAPER_COMMON_AMPLITUDE,
    PAPER_PRIVATE_AMPLITUDE,
    CommonModeMixer,
)
from ..noise.spectra import PAPER_WHITE_BAND, WhiteSpectrum
from ..noise.synthesis import NoiseSynthesizer, make_rng
from ..orthogonator.homogenize import homogenization_spread
from ..orthogonator.intersection import IntersectionOrthogonator
from ..spikes.statistics import isi_statistics
from ..spikes.zero_crossing import AllCrossingDetector
from ..units import paper_white_grid
from .paper_constants import (
    PAPER_N_POINTS,
    TABLE2_CORRELATED,
    TABLE2_UNCORRELATED,
)

__all__ = ["Table2Config", "Table2Result", "run_table2"]


@dataclass(frozen=True)
class Table2Config:
    """Config of the Table 2 reproduction."""

    seed: int = 2016
    n_samples: int = PAPER_N_POINTS


@dataclass(frozen=True)
class Table2Result:
    """Both configurations of Table 2 plus the homogenization metric."""

    uncorrelated: StatsTable
    correlated: StatsTable
    spread_uncorrelated: float
    spread_correlated: float

    def render(self) -> str:
        """Full text report."""
        return (
            f"{self.uncorrelated.render()}\n"
            f"rate spread (max/min): {self.spread_uncorrelated:.1f}x\n\n"
            f"{self.correlated.render()}\n"
            f"rate spread (max/min): {self.spread_correlated:.2f}x"
        )


def _generate_records(
    correlated: bool, seed: int, n_samples: int
) -> Tuple[np.ndarray, np.ndarray]:
    """The two source records, drawn in one fixed order from the seed."""
    grid = paper_white_grid(n_samples=n_samples)
    synthesizer = NoiseSynthesizer(WhiteSpectrum(PAPER_WHITE_BAND), grid)
    rng = make_rng(seed)
    if correlated:
        mixer = CommonModeMixer(
            synthesizer,
            common_amplitude=PAPER_COMMON_AMPLITUDE,
            private_amplitude=PAPER_PRIVATE_AMPLITUDE,
        )
        record_a, record_b = mixer.generate(2, rng=rng)
    else:
        record_a = synthesizer.generate(rng)
        record_b = synthesizer.generate(rng)
    return record_a, record_b


def _run_configuration(
    correlated: bool,
    seed: int,
    n_samples: int,
    records: Optional[Tuple[np.ndarray, np.ndarray]] = None,
) -> Tuple[StatsTable, float]:
    grid = paper_white_grid(n_samples=n_samples)
    if records is None:
        records = _generate_records(correlated, seed, n_samples)
    record_a, record_b = records

    detector = AllCrossingDetector()
    train_a = detector.detect(record_a, grid)
    train_b = detector.detect(record_b, grid)
    device = IntersectionOrthogonator(2)
    output = device.transform(train_a, train_b)

    reference = TABLE2_CORRELATED if correlated else TABLE2_UNCORRELATED
    title = (
        "Table 2 — correlated sources (0.945/0.055 common mode)"
        if correlated
        else "Table 2 — uncorrelated sources"
    )
    table = StatsTable(title)
    table.add(StatsRow("A", isi_statistics(train_a), reference["A"]))
    table.add(StatsRow("B", isi_statistics(train_b), reference["B"]))
    for label in output.labels:
        table.add(StatsRow(label, isi_statistics(output[label]), reference[label]))
    return table, homogenization_spread(output)


@dataclass(frozen=True)
class Table2Shard:
    """One source configuration of Table 2 (the spec's shard unit)."""

    correlated: bool
    seed: int
    n_samples: int


@dataclass(frozen=True)
class Table2SharedShard:
    """One configuration whose two source records live in shared memory.

    The parent draws both records once (the expensive synthesis) and
    exports them; the worker attaches and pays only detection and the
    intersection transform.
    """

    correlated: bool
    seed: int
    n_samples: int
    record_a: SharedArraySpec
    record_b: SharedArraySpec


@dataclass(frozen=True)
class Table2Part:
    """One configuration's table plus its homogenization spread."""

    correlated: bool
    table: StatsTable
    spread: float


def _shards(config: Table2Config) -> Tuple[Table2Shard, ...]:
    """The two source configurations, seeded exactly as the serial run."""
    return (
        Table2Shard(False, config.seed, config.n_samples),
        Table2Shard(True, config.seed + 1, config.n_samples),
    )


def _run_shard(shard) -> Table2Part:
    """Measure one source configuration (attached or rebuilt records)."""
    records = (
        (attach_array(shard.record_a), attach_array(shard.record_b))
        if isinstance(shard, Table2SharedShard)
        else None
    )
    table, spread = _run_configuration(
        shard.correlated, shard.seed, shard.n_samples, records=records
    )
    return Table2Part(correlated=shard.correlated, table=table, spread=spread)


def _shard_shared(
    config: Table2Config, arena: SharedArena
) -> Tuple[Table2SharedShard, ...]:
    """Draw both configurations' records once and ship segment handles."""
    shards = []
    for shard in _shards(config):
        record_a, record_b = _generate_records(
            shard.correlated, shard.seed, shard.n_samples
        )
        shards.append(
            Table2SharedShard(
                correlated=shard.correlated,
                seed=shard.seed,
                n_samples=shard.n_samples,
                record_a=arena.share_array(record_a),
                record_b=arena.share_array(record_b),
            )
        )
    return tuple(shards)


def _merge(config: Table2Config, parts: Sequence[Table2Part]) -> Table2Result:
    """Reassemble the full Table 2 result from its two configurations."""
    by_kind = {part.correlated: part for part in parts}
    return Table2Result(
        uncorrelated=by_kind[False].table,
        correlated=by_kind[True].table,
        spread_uncorrelated=by_kind[False].spread,
        spread_correlated=by_kind[True].spread,
    )


def _run(config: Table2Config) -> Table2Result:
    """Serial driver: the same shards, executed in-process."""
    return _merge(config, [_run_shard(shard) for shard in _shards(config)])


def run_table2(seed: int = 2016, n_samples: int = PAPER_N_POINTS) -> Table2Result:
    """Run experiment T2 and return the paper-vs-measured tables."""
    return _run(Table2Config(seed=seed, n_samples=n_samples))


register(
    ExperimentSpec(
        name="table2",
        description="Table 2 — intersection + homogenization",
        tier="table",
        config_type=Table2Config,
        run=_run,
        shard=_shards,
        run_shard=_run_shard,
        merge=_merge,
        shard_shared=_shard_shared,
    )
)


def main() -> None:
    """Print the Table 2 reproduction."""
    print(run_table2().render())


if __name__ == "__main__":
    main()
