"""Experiment C7: search — superposition coincidence vs classical vs Grover.

The paper's introduction cites that the noise-based hyperspace "was
shown to outperform a quantum search algorithm" (its reference [2]).
Operationalised: answering "is state x in the database?" costs

* **superposition scheme** — one coincidence; the measured quantity is
  the physical decision latency (≈ one reference-train ISI),
  *independent of the database size K*;
* **Grover** — ``~(π/4)·sqrt(K)`` oracle calls (measured on an exact
  state-vector simulator, stopping at the optimal iteration);
* **classical scan** — ``(K+1)/2`` oracle calls on average.

Run directly: ``python -m repro.experiments.search``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..hyperspace.builders import build_intersection_basis, paper_default_synthesizer
from ..noise.synthesis import make_rng
from ..pipeline.registry import register
from ..pipeline.spec import ExperimentSpec
from ..search.classical import expected_scan_queries
from ..search.grover import grover_search, optimal_iterations
from ..search.superposition_search import SuperpositionDatabase
from ..units import format_time

__all__ = ["SearchConfig", "SearchPoint", "SearchResult", "run_search"]


@dataclass(frozen=True)
class SearchConfig:
    """Config of the search comparison."""

    n_inputs_sweep: Tuple[int, ...] = (3, 4, 5, 6)
    seed: int = 2016


@dataclass(frozen=True)
class SearchPoint:
    """One database size K of the sweep.

    ``spike_checks`` counts reference spikes inspected until the verdict
    (1 for a present state on a clean wire); ``spike_latency_slots`` is
    the physical decision slot.
    """

    n_items: int
    spike_checks: int
    spike_latency_slots: int
    grover_queries: int
    grover_success: float
    classical_queries: float


@dataclass(frozen=True)
class SearchResult:
    """The full sweep plus rendering."""

    points: List[SearchPoint]
    dt: float

    def render(self) -> str:
        """Full text report."""
        lines = [
            "C7 — membership-query cost vs database size K",
            f"{'K':>6s} {'spike checks':>13s} {'spike latency':>14s} "
            f"{'grover calls':>13s} {'P(success)':>11s} {'classical':>10s}",
        ]
        for p in self.points:
            lines.append(
                f"{p.n_items:>6d} {p.spike_checks:>13d} "
                f"{format_time(p.spike_latency_slots * self.dt):>14s} "
                f"{p.grover_queries:>13d} {p.grover_success:>11.3f} "
                f"{p.classical_queries:>10.1f}"
            )
        return "\n".join(lines)


def run_search(
    n_inputs_sweep=(3, 4, 5, 6),
    seed: int = 2016,
) -> SearchResult:
    """Sweep database sizes ``K = 2^N − 1`` and measure all three schemes.

    The member set is a random half of the state space; the queried
    state is a random member (the present case, which is the comparison
    the paper makes — absence certification is reported by the tests).
    """
    synthesizer = paper_default_synthesizer()
    rng = make_rng(seed)
    points: List[SearchPoint] = []

    for n_inputs in n_inputs_sweep:
        basis = build_intersection_basis(
            n_inputs,
            synthesizer=synthesizer,
            common_amplitude=0.945,
            rng=rng,
        )
        n_items = basis.size
        database = SuperpositionDatabase(basis)
        members = rng.choice(n_items, size=max(1, n_items // 2), replace=False)
        database.load(members.tolist())
        target = int(members[int(rng.integers(members.size))])

        query = database.query(target)
        assert query.present

        grover = grover_search(
            n_items, {target}, optimal_iterations(n_items, 1)
        )
        points.append(
            SearchPoint(
                n_items=n_items,
                spike_checks=query.coincidences_checked,
                spike_latency_slots=query.decision_slot,
                grover_queries=grover.iterations,
                grover_success=grover.success_probability,
                classical_queries=expected_scan_queries(n_items, present=True),
            )
        )
    return SearchResult(points=points, dt=synthesizer.grid.dt)


register(
    ExperimentSpec(
        name="search",
        description="C7 — search vs classical and Grover",
        tier="claim",
        config_type=SearchConfig,
        run=lambda config: run_search(
            n_inputs_sweep=config.n_inputs_sweep, seed=config.seed
        ),
    )
)


def main() -> None:
    """Print the C7 search comparison."""
    print(run_search().render())


if __name__ == "__main__":
    main()
