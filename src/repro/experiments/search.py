"""Experiment C7: search — superposition coincidence vs classical vs Grover.

The paper's introduction cites that the noise-based hyperspace "was
shown to outperform a quantum search algorithm" (its reference [2]).
Operationalised: answering "is state x in the database?" costs

* **superposition scheme** — one coincidence; the measured quantity is
  the physical decision latency (≈ one reference-train ISI),
  *independent of the database size K*;
* **Grover** — ``~(π/4)·sqrt(K)`` oracle calls (measured on an exact
  state-vector simulator, stopping at the optimal iteration);
* **classical scan** — ``(K+1)/2`` oracle calls on average.

Each database size draws from its own
:func:`~repro.noise.synthesis.spawn_rng` stream keyed on
``(config.seed, sweep index)`` — the experiment's shard plan, with
sharded runs bit-identical to serial by construction.

Run directly: ``python -m repro.experiments.search``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..hyperspace.builders import build_intersection_basis, paper_default_synthesizer
from ..noise.synthesis import spawn_rng
from ..pipeline.registry import register
from ..pipeline.spec import ExperimentSpec
from ..search.classical import expected_scan_queries
from ..search.grover import grover_search, optimal_iterations
from ..search.superposition_search import SuperpositionDatabase
from ..units import format_time, paper_white_grid

__all__ = ["SearchConfig", "SearchPoint", "SearchResult", "run_search"]


@dataclass(frozen=True)
class SearchConfig:
    """Config of the search comparison."""

    n_inputs_sweep: Tuple[int, ...] = (3, 4, 5, 6)
    seed: int = 2016


@dataclass(frozen=True)
class SearchPoint:
    """One database size K of the sweep.

    ``spike_checks`` counts reference spikes inspected until the verdict
    (1 for a present state on a clean wire); ``spike_latency_slots`` is
    the physical decision slot.
    """

    n_items: int
    spike_checks: int
    spike_latency_slots: int
    grover_queries: int
    grover_success: float
    classical_queries: float


@dataclass(frozen=True)
class SearchResult:
    """The full sweep plus rendering."""

    points: List[SearchPoint]
    dt: float

    def render(self) -> str:
        """Full text report."""
        lines = [
            "C7 — membership-query cost vs database size K",
            f"{'K':>6s} {'spike checks':>13s} {'spike latency':>14s} "
            f"{'grover calls':>13s} {'P(success)':>11s} {'classical':>10s}",
        ]
        for p in self.points:
            lines.append(
                f"{p.n_items:>6d} {p.spike_checks:>13d} "
                f"{format_time(p.spike_latency_slots * self.dt):>14s} "
                f"{p.grover_queries:>13d} {p.grover_success:>11.3f} "
                f"{p.classical_queries:>10.1f}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class SearchShard:
    """One database size of the sweep (the spec's shard unit)."""

    config: SearchConfig
    index: int  # position in the sweep; the rng spawn key
    n_inputs: int


def _shards(config: SearchConfig) -> Tuple[SearchShard, ...]:
    """One shard per swept N."""
    return tuple(
        SearchShard(config, i, int(n))
        for i, n in enumerate(config.n_inputs_sweep)
    )


def _run_shard(shard: SearchShard) -> Tuple[int, SearchPoint]:
    """Measure one database size on its own derived rng stream.

    The member set is a random half of the state space; the queried
    state is a random member (the present case, which is the comparison
    the paper makes — absence certification is reported by the tests).
    """
    synthesizer = paper_default_synthesizer()
    rng = spawn_rng(shard.config.seed, shard.index)
    basis = build_intersection_basis(
        shard.n_inputs,
        synthesizer=synthesizer,
        common_amplitude=0.945,
        rng=rng,
    )
    n_items = basis.size
    database = SuperpositionDatabase(basis)
    members = rng.choice(n_items, size=max(1, n_items // 2), replace=False)
    database.load(members.tolist())
    target = int(members[int(rng.integers(members.size))])

    query = database.query(target)
    assert query.present

    grover = grover_search(n_items, {target}, optimal_iterations(n_items, 1))
    return shard.index, SearchPoint(
        n_items=n_items,
        spike_checks=query.coincidences_checked,
        spike_latency_slots=query.decision_slot,
        grover_queries=grover.iterations,
        grover_success=grover.success_probability,
        classical_queries=expected_scan_queries(n_items, present=True),
    )


def _merge(
    config: SearchConfig, parts: Sequence[Tuple[int, SearchPoint]]
) -> SearchResult:
    """Reassemble the sweep in its declared order."""
    points = [point for _index, point in sorted(parts, key=lambda p: p[0])]
    return SearchResult(points=points, dt=paper_white_grid().dt)


def _run(config: SearchConfig) -> SearchResult:
    """Serial driver: the same shards, executed in-process."""
    return _merge(config, [_run_shard(shard) for shard in _shards(config)])


def run_search(
    n_inputs_sweep=(3, 4, 5, 6),
    seed: int = 2016,
) -> SearchResult:
    """Sweep database sizes ``K = 2^N − 1`` and measure all three schemes."""
    return _run(
        SearchConfig(n_inputs_sweep=tuple(n_inputs_sweep), seed=seed)
    )


register(
    ExperimentSpec(
        name="search",
        description="C7 — search vs classical and Grover",
        tier="claim",
        config_type=SearchConfig,
        run=_run,
        shard=_shards,
        run_shard=_run_shard,
        merge=_merge,
    )
)


def main() -> None:
    """Print the C7 search comparison."""
    print(run_search().render())


if __name__ == "__main__":
    main()
