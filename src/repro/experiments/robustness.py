"""Experiment C9: identification robustness under physical degradations.

Sections 1–2 promise "high resilience" to processing and environmental
variations.  This driver runs the three degradation sweeps of
:mod:`repro.analysis.robustness` — per-spike timing jitter, spike loss
and rival-spike injection — on a paper-band demux basis and reports the
wrong-verdict and silent rates per level.

Run directly: ``python -m repro.experiments.robustness``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..analysis.robustness import (
    RobustnessPoint,
    injection_sweep,
    jitter_sweep,
    loss_sweep,
)
from ..hyperspace.builders import build_demux_basis, paper_default_synthesizer
from ..noise.synthesis import make_rng
from ..pipeline.registry import register
from ..pipeline.spec import ExperimentSpec

__all__ = ["RobustnessConfig", "RobustnessExperimentResult", "run_robustness"]


@dataclass(frozen=True)
class RobustnessConfig:
    """Config of the robustness degradation sweeps."""

    seed: int = 2016
    trials: int = 3


@dataclass(frozen=True)
class RobustnessExperimentResult:
    """All three sweeps, keyed by degradation name."""

    sweeps: Dict[str, List[RobustnessPoint]]

    def max_wrong_rate(self, sweep: str) -> float:
        """Worst wrong-verdict rate across one sweep's levels."""
        return max(p.wrong_rate for p in self.sweeps[sweep])

    def render(self) -> str:
        """Full text report."""
        lines = ["C9 — identification robustness (paper-band demux basis, M=4)"]
        for name, points in self.sweeps.items():
            lines.append(f"  {name}:")
            for p in points:
                lines.append(
                    f"    level {p.level:7.2f}: wrong {p.wrong_rate:5.2f}  "
                    f"silent {p.silent_rate:5.2f}"
                )
        return "\n".join(lines)


def run_robustness(seed: int = 2016, trials: int = 3) -> RobustnessExperimentResult:
    """Run the jitter / loss / injection sweeps."""
    synthesizer = paper_default_synthesizer()
    basis = build_demux_basis(4, synthesizer=synthesizer, rng=make_rng(seed))
    rng = make_rng(seed + 1)
    sweeps = {
        "jitter (±samples, windowed verdict)": jitter_sweep(
            basis, [0, 1, 2, 8, 32], rng, trials=trials,
            window=2, min_confidence=0.5,
        ),
        "loss (drop probability)": loss_sweep(
            basis, [0.0, 0.3, 0.6, 0.9], rng, trials=trials
        ),
        "injection (rival spikes)": injection_sweep(
            basis, [0, 5, 50], rng, trials=trials
        ),
    }
    return RobustnessExperimentResult(sweeps=sweeps)


register(
    ExperimentSpec(
        name="robustness",
        description="C9 — identification robustness sweeps",
        tier="claim",
        config_type=RobustnessConfig,
        run=lambda config: run_robustness(
            seed=config.seed, trials=config.trials
        ),
    )
)


def main() -> None:
    """Print the C9 robustness sweeps."""
    print(run_robustness().render())


if __name__ == "__main__":
    main()
