"""Experiment C9: identification robustness under physical degradations.

Sections 1–2 promise "high resilience" to processing and environmental
variations.  This driver runs the three degradation sweeps of
:mod:`repro.analysis.robustness` — per-spike timing jitter, spike loss
and rival-spike injection — on a paper-band demux basis and reports the
wrong-verdict and silent rates per level.

The basis derives from spawn key 0 of the config seed and each sweep
from key ``1 + sweep index`` (:func:`~repro.noise.synthesis.spawn_rng`),
so every shard rebuilds the *same* basis while drawing its degradations
from an independent stream — the experiment's shard plan, with sharded
runs bit-identical to serial by construction.

Run directly: ``python -m repro.experiments.robustness``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..analysis.robustness import (
    RobustnessPoint,
    injection_sweep,
    jitter_sweep,
    loss_sweep,
)
from ..hyperspace.builders import build_demux_basis, paper_default_synthesizer
from ..noise.synthesis import spawn_rng
from ..pipeline.registry import register
from ..pipeline.spec import ExperimentSpec

__all__ = ["RobustnessConfig", "RobustnessExperimentResult", "run_robustness"]

#: Sweep order: (report label, sweep runner, levels, extra kwargs).
_SWEEPS = (
    (
        "jitter (±samples, windowed verdict)",
        jitter_sweep,
        (0, 1, 2, 8, 32),
        {"window": 2, "min_confidence": 0.5},
    ),
    ("loss (drop probability)", loss_sweep, (0.0, 0.3, 0.6, 0.9), {}),
    ("injection (rival spikes)", injection_sweep, (0, 5, 50), {}),
)


@dataclass(frozen=True)
class RobustnessConfig:
    """Config of the robustness degradation sweeps."""

    seed: int = 2016
    trials: int = 3


@dataclass(frozen=True)
class RobustnessExperimentResult:
    """All three sweeps, keyed by degradation name."""

    sweeps: Dict[str, List[RobustnessPoint]]

    def max_wrong_rate(self, sweep: str) -> float:
        """Worst wrong-verdict rate across one sweep's levels."""
        return max(p.wrong_rate for p in self.sweeps[sweep])

    def render(self) -> str:
        """Full text report."""
        lines = ["C9 — identification robustness (paper-band demux basis, M=4)"]
        for name, points in self.sweeps.items():
            lines.append(f"  {name}:")
            for p in points:
                lines.append(
                    f"    level {p.level:7.2f}: wrong {p.wrong_rate:5.2f}  "
                    f"silent {p.silent_rate:5.2f}"
                )
        return "\n".join(lines)


@dataclass(frozen=True)
class RobustnessShard:
    """One degradation sweep (the spec's shard unit)."""

    config: RobustnessConfig
    index: int  # position in _SWEEPS; rng spawn key is 1 + index


def _shards(config: RobustnessConfig) -> Tuple[RobustnessShard, ...]:
    """One shard per degradation sweep."""
    return tuple(
        RobustnessShard(config, i) for i in range(len(_SWEEPS))
    )


def _run_shard(
    shard: RobustnessShard,
) -> Tuple[int, str, List[RobustnessPoint]]:
    """Run one degradation sweep on its own derived rng stream.

    Every shard rebuilds the identical basis (spawn key 0), then sweeps
    with its private stream (spawn key ``1 + index``).
    """
    config = shard.config
    name, sweep, levels, kwargs = _SWEEPS[shard.index]
    basis = build_demux_basis(
        4,
        synthesizer=paper_default_synthesizer(),
        rng=spawn_rng(config.seed, 0),
    )
    points = sweep(
        basis,
        list(levels),
        spawn_rng(config.seed, 1 + shard.index),
        trials=config.trials,
        **kwargs,
    )
    return shard.index, name, points


def _merge(
    config: RobustnessConfig,
    parts: Sequence[Tuple[int, str, List[RobustnessPoint]]],
) -> RobustnessExperimentResult:
    """Reassemble the sweeps in canonical order."""
    ordered = sorted(parts, key=lambda p: p[0])
    return RobustnessExperimentResult(
        sweeps={name: points for _index, name, points in ordered}
    )


def _run(config: RobustnessConfig) -> RobustnessExperimentResult:
    """Serial driver: the same shards, executed in-process."""
    return _merge(config, [_run_shard(shard) for shard in _shards(config)])


def run_robustness(seed: int = 2016, trials: int = 3) -> RobustnessExperimentResult:
    """Run the jitter / loss / injection sweeps."""
    return _run(RobustnessConfig(seed=seed, trials=trials))


register(
    ExperimentSpec(
        name="robustness",
        description="C9 — identification robustness sweeps",
        tier="claim",
        config_type=RobustnessConfig,
        run=_run,
        shard=_shards,
        run_shard=_run_shard,
        merge=_merge,
    )
)


def main() -> None:
    """Print the C9 robustness sweeps."""
    print(run_robustness().render())


if __name__ == "__main__":
    main()
