"""Experiment C1: identification speed — spikes vs continuum vs sinusoids.

Section 2's central quantitative claim: "the spike-based scheme does not
need time averaging and therefore results in a significant speed-up".
This experiment measures, on a common grid and alphabet size M:

* **spike scheme** — first-coincidence latency of a correlator reading a
  neuro-bit wire (median over random observation starts);
* **continuum noise scheme** — settled running-correlation decision time
  (ref [3] behaviour);
* **sinusoidal scheme** — settled quadrature-correlation decision time
  (ref [5] behaviour).

The expected ordering is spike ≪ sinusoidal ≲ continuum; the spike
scheme's latency is one mean inter-spike interval of the (per-element)
reference train, while the averaging schemes need many correlation
times of the band.

Each scheme draws from its own :func:`~repro.noise.synthesis.spawn_rng`
stream keyed on ``(config.seed, scheme index)``, so the schemes are the
experiment's shard plan: a sharded run is bit-identical to the serial
one by construction.

Run directly: ``python -m repro.experiments.speed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..baselines.continuum import ContinuumNoiseLogic
from ..baselines.sinusoidal import SinusoidalLogic
from ..hyperspace.builders import build_demux_basis, paper_default_synthesizer
from ..logic.correlator import detection_latency_samples
from ..noise.synthesis import spawn_rng
from ..pipeline.registry import register
from ..pipeline.spec import ExperimentSpec
from ..units import GIGAHERTZ, format_time, paper_white_grid

__all__ = ["SchemeLatency", "SpeedConfig", "SpeedResult", "run_speed"]

#: Scheme order; the index doubles as the shard's rng spawn key.
_SCHEMES = ("spike", "continuum", "sinusoidal")


@dataclass(frozen=True)
class SpeedConfig:
    """Config of the identification-speed comparison."""

    n_values: int = 4
    seed: int = 2016
    n_trials: int = 200
    margin: float = 0.2


@dataclass(frozen=True)
class SchemeLatency:
    """Identification latency summary of one scheme.

    Attributes
    ----------
    scheme:
        Scheme label.
    median_samples / p90_samples:
        Median and 90th-percentile identification latency in samples.
    """

    scheme: str
    median_samples: float
    p90_samples: float

    def render(self, dt: float) -> str:
        """One report line with physical times."""
        return (
            f"{self.scheme:<16s} median {format_time(self.median_samples * dt):>9s}"
            f"   p90 {format_time(self.p90_samples * dt):>9s}"
        )


@dataclass(frozen=True)
class SpeedResult:
    """All schemes' latencies plus the derived speed-up factors."""

    latencies: List[SchemeLatency]
    dt: float

    def speedup_over(self, scheme: str) -> float:
        """Spike-scheme median speed-up factor over a named scheme."""
        spike = self._named("spike")
        other = self._named(scheme)
        return other.median_samples / spike.median_samples

    def _named(self, scheme: str) -> SchemeLatency:
        for latency in self.latencies:
            if latency.scheme == scheme:
                return latency
        raise KeyError(scheme)

    def render(self) -> str:
        """Full text report."""
        lines = ["C1 — identification latency (alphabet carried per wire)"]
        lines += [latency.render(self.dt) for latency in self.latencies]
        lines.append(
            f"speed-up: {self.speedup_over('continuum'):.0f}x over continuum, "
            f"{self.speedup_over('sinusoidal'):.0f}x over sinusoidal"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class SpeedShard:
    """One scheme of the comparison (the spec's shard unit)."""

    config: SpeedConfig
    index: int  # position in _SCHEMES; the rng spawn key
    scheme: str


def _shards(config: SpeedConfig) -> Tuple[SpeedShard, ...]:
    """One shard per scheme."""
    return tuple(
        SpeedShard(config, i, scheme) for i, scheme in enumerate(_SCHEMES)
    )


def _run_shard(shard: SpeedShard) -> SchemeLatency:
    """Measure one scheme's latencies on its own derived rng stream."""
    config = shard.config
    rng = spawn_rng(config.seed, shard.index)
    synthesizer = paper_default_synthesizer()
    grid = synthesizer.grid
    if shard.scheme == "spike":
        # Median first-coincidence latency across elements.
        basis = build_demux_basis(
            config.n_values, synthesizer=synthesizer, rng=rng
        )
        samples = np.concatenate(
            [
                detection_latency_samples(basis, element, config.n_trials, rng)
                for element in range(config.n_values)
            ]
        ).astype(float)
    elif shard.scheme == "continuum":
        # Settled running-correlation decision times across elements.
        continuum = ContinuumNoiseLogic(
            config.n_values, synthesizer.spectrum, grid, seed=rng
        )
        samples = np.asarray(
            [
                continuum.identification_time_samples(
                    value, margin=config.margin
                )
                for value in range(config.n_values)
            ],
            dtype=float,
        )
    else:
        # Sinusoidal carriers spread across the band.
        frequencies = np.linspace(1.0, 2.0, config.n_values) * GIGAHERTZ
        sinusoidal = SinusoidalLogic(frequencies, grid)
        samples = np.asarray(
            [
                sinusoidal.identification_time_samples(
                    value, margin=config.margin
                )
                for value in range(config.n_values)
            ],
            dtype=float,
        )
    return SchemeLatency(
        shard.scheme,
        float(np.median(samples)),
        float(np.percentile(samples, 90)),
    )


def _merge(config: SpeedConfig, parts: Sequence[SchemeLatency]) -> SpeedResult:
    """Reassemble the comparison in canonical scheme order."""
    by_scheme = {part.scheme: part for part in parts}
    return SpeedResult(
        latencies=[by_scheme[scheme] for scheme in _SCHEMES],
        dt=paper_white_grid().dt,
    )


def _run(config: SpeedConfig) -> SpeedResult:
    """Serial driver: the same shards, executed in-process."""
    return _merge(config, [_run_shard(shard) for shard in _shards(config)])


def run_speed(
    n_values: int = 4,
    seed: int = 2016,
    n_trials: int = 200,
    margin: float = 0.2,
) -> SpeedResult:
    """Measure identification latency for the three schemes."""
    return _run(
        SpeedConfig(
            n_values=n_values, seed=seed, n_trials=n_trials, margin=margin
        )
    )


register(
    ExperimentSpec(
        name="speed",
        description="C1 — identification speed vs baselines",
        tier="claim",
        config_type=SpeedConfig,
        run=_run,
        shard=_shards,
        run_shard=_run_shard,
        merge=_merge,
    )
)


def main() -> None:
    """Print the C1 speed comparison."""
    print(run_speed().render())


if __name__ == "__main__":
    main()
