"""Experiment C1: identification speed — spikes vs continuum vs sinusoids.

Section 2's central quantitative claim: "the spike-based scheme does not
need time averaging and therefore results in a significant speed-up".
This experiment measures, on a common grid and alphabet size M:

* **spike scheme** — first-coincidence latency of a correlator reading a
  neuro-bit wire (median over random observation starts);
* **continuum noise scheme** — settled running-correlation decision time
  (ref [3] behaviour);
* **sinusoidal scheme** — settled quadrature-correlation decision time
  (ref [5] behaviour).

The expected ordering is spike ≪ sinusoidal ≲ continuum; the spike
scheme's latency is one mean inter-spike interval of the (per-element)
reference train, while the averaging schemes need many correlation
times of the band.

Run directly: ``python -m repro.experiments.speed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..baselines.continuum import ContinuumNoiseLogic
from ..baselines.sinusoidal import SinusoidalLogic
from ..hyperspace.builders import build_demux_basis, paper_default_synthesizer
from ..logic.correlator import detection_latency_samples
from ..noise.synthesis import make_rng
from ..pipeline.registry import register
from ..pipeline.spec import ExperimentSpec
from ..units import GIGAHERTZ, format_time

__all__ = ["SchemeLatency", "SpeedConfig", "SpeedResult", "run_speed"]


@dataclass(frozen=True)
class SpeedConfig:
    """Config of the identification-speed comparison."""

    n_values: int = 4
    seed: int = 2016
    n_trials: int = 200
    margin: float = 0.2


@dataclass(frozen=True)
class SchemeLatency:
    """Identification latency summary of one scheme.

    Attributes
    ----------
    scheme:
        Scheme label.
    median_samples / p90_samples:
        Median and 90th-percentile identification latency in samples.
    """

    scheme: str
    median_samples: float
    p90_samples: float

    def render(self, dt: float) -> str:
        """One report line with physical times."""
        return (
            f"{self.scheme:<16s} median {format_time(self.median_samples * dt):>9s}"
            f"   p90 {format_time(self.p90_samples * dt):>9s}"
        )


@dataclass(frozen=True)
class SpeedResult:
    """All schemes' latencies plus the derived speed-up factors."""

    latencies: List[SchemeLatency]
    dt: float

    def speedup_over(self, scheme: str) -> float:
        """Spike-scheme median speed-up factor over a named scheme."""
        spike = self._named("spike")
        other = self._named(scheme)
        return other.median_samples / spike.median_samples

    def _named(self, scheme: str) -> SchemeLatency:
        for latency in self.latencies:
            if latency.scheme == scheme:
                return latency
        raise KeyError(scheme)

    def render(self) -> str:
        """Full text report."""
        lines = ["C1 — identification latency (alphabet carried per wire)"]
        lines += [latency.render(self.dt) for latency in self.latencies]
        lines.append(
            f"speed-up: {self.speedup_over('continuum'):.0f}x over continuum, "
            f"{self.speedup_over('sinusoidal'):.0f}x over sinusoidal"
        )
        return "\n".join(lines)


def run_speed(
    n_values: int = 4,
    seed: int = 2016,
    n_trials: int = 200,
    margin: float = 0.2,
) -> SpeedResult:
    """Measure identification latency for the three schemes."""
    rng = make_rng(seed)
    synthesizer = paper_default_synthesizer()
    grid = synthesizer.grid

    # Spike scheme: median first-coincidence latency across elements.
    basis = build_demux_basis(n_values, synthesizer=synthesizer, rng=rng)
    spike_latencies = np.concatenate(
        [
            detection_latency_samples(basis, element, n_trials, rng)
            for element in range(n_values)
        ]
    )

    # Continuum scheme: settled decision times across elements.
    continuum = ContinuumNoiseLogic(
        n_values, synthesizer.spectrum, grid, seed=rng
    )
    continuum_latencies = np.asarray(
        [
            continuum.identification_time_samples(value, margin=margin)
            for value in range(n_values)
        ],
        dtype=float,
    )

    # Sinusoidal scheme: carriers spread across the band.
    frequencies = np.linspace(1.0, 2.0, n_values) * GIGAHERTZ
    sinusoidal = SinusoidalLogic(frequencies, grid)
    sinusoidal_latencies = np.asarray(
        [
            sinusoidal.identification_time_samples(value, margin=margin)
            for value in range(n_values)
        ],
        dtype=float,
    )

    latencies = [
        SchemeLatency(
            "spike",
            float(np.median(spike_latencies)),
            float(np.percentile(spike_latencies, 90)),
        ),
        SchemeLatency(
            "continuum",
            float(np.median(continuum_latencies)),
            float(np.percentile(continuum_latencies, 90)),
        ),
        SchemeLatency(
            "sinusoidal",
            float(np.median(sinusoidal_latencies)),
            float(np.percentile(sinusoidal_latencies, 90)),
        ),
    ]
    return SpeedResult(latencies=latencies, dt=grid.dt)


register(
    ExperimentSpec(
        name="speed",
        description="C1 — identification speed vs baselines",
        tier="claim",
        config_type=SpeedConfig,
        run=lambda config: run_speed(
            n_values=config.n_values,
            seed=config.seed,
            n_trials=config.n_trials,
            margin=config.margin,
        ),
    )
)


def main() -> None:
    """Print the C1 speed comparison."""
    print(run_speed().render())


if __name__ == "__main__":
    main()
