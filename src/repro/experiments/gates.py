"""Experiment C6: gate correctness and latency over the hyperspace.

Section 5 claims "elementary gate operations ... can be done extremely
fast even though the hyperspace is extremely large".  The experiment:

* exhaustively verifies the physical gate layer (every input
  combination of MIN / MAX / MODSUM over an M-element basis transmits
  the symbolically-correct value);
* records per-gate decision latency statistics as M grows;
* runs a synthesized radix-M ripple adder end to end and reports its
  physical critical-path latency.

Run directly: ``python -m repro.experiments.gates``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..hyperspace.builders import build_demux_basis, paper_default_synthesizer
from ..logic.gates import TruthTableGate
from ..logic.multivalued import max_gate, min_gate, mod_sum_gate
from ..logic.synthesis import adder_reference, ripple_adder
from ..noise.synthesis import make_rng
from ..pipeline.registry import register
from ..pipeline.spec import ExperimentSpec
from ..units import format_time

__all__ = ["GateSweepPoint", "GatesConfig", "GatesResult", "run_gates"]


@dataclass(frozen=True)
class GatesConfig:
    """Config of the gate correctness/latency sweep."""

    alphabet_sizes: Tuple[int, ...] = (2, 3, 4, 8)
    seed: int = 2016


@dataclass(frozen=True)
class GateSweepPoint:
    """Gate-layer results for one alphabet size M."""

    alphabet_size: int
    combinations_checked: int
    all_correct: bool
    median_latency_samples: float
    p90_latency_samples: float


@dataclass(frozen=True)
class GatesResult:
    """The M sweep plus the adder end-to-end check."""

    points: List[GateSweepPoint]
    adder_correct: bool
    adder_critical_path_samples: int
    dt: float

    def render(self) -> str:
        """Full text report."""
        lines = [
            "C6 — gate correctness and latency vs alphabet size",
            f"{'M':>3s} {'combos':>7s} {'correct':>8s} "
            f"{'median lat':>11s} {'p90 lat':>10s}",
        ]
        for p in self.points:
            lines.append(
                f"{p.alphabet_size:>3d} {p.combinations_checked:>7d} "
                f"{str(p.all_correct):>8s} "
                f"{format_time(p.median_latency_samples * self.dt):>11s} "
                f"{format_time(p.p90_latency_samples * self.dt):>10s}"
            )
        lines.append(
            f"radix-4 2-digit ripple adder: correct={self.adder_correct}, "
            f"critical path "
            f"{format_time(self.adder_critical_path_samples * self.dt)}"
        )
        return "\n".join(lines)


def _sweep_gate(gate: TruthTableGate) -> Tuple[int, bool, List[int]]:
    """Exhaustively transmit a 2-input gate; return combos, ok, latencies."""
    sizes = gate.input_sizes
    latencies: List[int] = []
    combos = 0
    correct = True
    for a, b in itertools.product(range(sizes[0]), range(sizes[1])):
        wires = (gate.input_bases[0].encode(a), gate.input_bases[1].encode(b))
        transmission = gate.transmit(*wires)
        combos += 1
        latencies.append(transmission.decision_slot)
        if transmission.value != gate.evaluate(a, b):
            correct = False
    return combos, correct, latencies


def run_gates(
    alphabet_sizes: Tuple[int, ...] = (2, 3, 4, 8),
    seed: int = 2016,
) -> GatesResult:
    """Run the gate sweep and the adder end-to-end check."""
    synthesizer = paper_default_synthesizer()
    rng = make_rng(seed)

    points: List[GateSweepPoint] = []
    for m in alphabet_sizes:
        basis = build_demux_basis(m, synthesizer=synthesizer, rng=rng)
        combos = 0
        correct = True
        latencies: List[int] = []
        for gate in (min_gate(basis), max_gate(basis), mod_sum_gate(basis)):
            c, ok, lat = _sweep_gate(gate)
            combos += c
            correct = correct and ok
            latencies.extend(lat)
        arr = np.asarray(latencies, dtype=float)
        points.append(
            GateSweepPoint(
                alphabet_size=m,
                combinations_checked=combos,
                all_correct=correct,
                median_latency_samples=float(np.median(arr)),
                p90_latency_samples=float(np.percentile(arr, 90)),
            )
        )

    # Adder end to end: radix 4, 2 digits, a selection of operand pairs.
    radix, digits = 4, 2
    basis = build_demux_basis(radix, synthesizer=synthesizer, rng=rng)
    adder = ripple_adder(digits, basis)
    adder_ok = True
    critical = 0
    for a_value, b_value in ((0, 0), (3, 1), (7, 9), (15, 15), (10, 5)):
        assignments = {"cin": 0}
        for d in range(digits):
            assignments[f"a{d}"] = (a_value // radix**d) % radix
            assignments[f"b{d}"] = (b_value // radix**d) % radix
        wires = {name: basis.encode(v) for name, v in assignments.items()}
        transmission = adder.transmit(wires)
        reference = adder_reference(digits, radix, a_value, b_value, 0)
        for d in range(digits):
            if transmission.values[f"s{d}"] != reference[f"s{d}"]:
                adder_ok = False
        if transmission.values[f"c{digits}"] != reference["cout"]:
            adder_ok = False
        critical = max(critical, transmission.critical_path_slot)

    return GatesResult(
        points=points,
        adder_correct=adder_ok,
        adder_critical_path_samples=critical,
        dt=synthesizer.grid.dt,
    )


register(
    ExperimentSpec(
        name="gates",
        description="C6 — gate correctness and latency",
        tier="claim",
        config_type=GatesConfig,
        run=lambda config: run_gates(
            alphabet_sizes=config.alphabet_sizes, seed=config.seed
        ),
    )
)


def main() -> None:
    """Print the C6 gate sweep."""
    print(run_gates().render())


if __name__ == "__main__":
    main()
