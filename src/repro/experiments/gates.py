"""Experiment C6: gate correctness and latency over the hyperspace.

Section 5 claims "elementary gate operations ... can be done extremely
fast even though the hyperspace is extremely large".  The experiment:

* exhaustively verifies the physical gate layer (every input
  combination of MIN / MAX / MODSUM over an M-element basis transmits
  the symbolically-correct value);
* records per-gate decision latency statistics as M grows;
* runs a synthesized radix-M ripple adder end to end and reports its
  physical critical-path latency.

Each alphabet size (and the adder check) draws from its own
:func:`~repro.noise.synthesis.spawn_rng` stream keyed on
``(config.seed, point index)`` — the experiment's shard plan, with
sharded runs bit-identical to serial by construction.

Run directly: ``python -m repro.experiments.gates``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

import numpy as np

from ..hyperspace.builders import build_demux_basis, paper_default_synthesizer
from ..logic.gates import TruthTableGate
from ..logic.multivalued import max_gate, min_gate, mod_sum_gate
from ..logic.synthesis import adder_reference, ripple_adder
from ..noise.synthesis import spawn_rng
from ..pipeline.registry import register
from ..pipeline.spec import ExperimentSpec
from ..units import format_time, paper_white_grid

__all__ = ["GateSweepPoint", "GatesConfig", "GatesResult", "run_gates"]


@dataclass(frozen=True)
class GatesConfig:
    """Config of the gate correctness/latency sweep."""

    alphabet_sizes: Tuple[int, ...] = (2, 3, 4, 8)
    seed: int = 2016


@dataclass(frozen=True)
class GateSweepPoint:
    """Gate-layer results for one alphabet size M."""

    alphabet_size: int
    combinations_checked: int
    all_correct: bool
    median_latency_samples: float
    p90_latency_samples: float


@dataclass(frozen=True)
class GatesResult:
    """The M sweep plus the adder end-to-end check."""

    points: List[GateSweepPoint]
    adder_correct: bool
    adder_critical_path_samples: int
    dt: float

    def render(self) -> str:
        """Full text report."""
        lines = [
            "C6 — gate correctness and latency vs alphabet size",
            f"{'M':>3s} {'combos':>7s} {'correct':>8s} "
            f"{'median lat':>11s} {'p90 lat':>10s}",
        ]
        for p in self.points:
            lines.append(
                f"{p.alphabet_size:>3d} {p.combinations_checked:>7d} "
                f"{str(p.all_correct):>8s} "
                f"{format_time(p.median_latency_samples * self.dt):>11s} "
                f"{format_time(p.p90_latency_samples * self.dt):>10s}"
            )
        lines.append(
            f"radix-4 2-digit ripple adder: correct={self.adder_correct}, "
            f"critical path "
            f"{format_time(self.adder_critical_path_samples * self.dt)}"
        )
        return "\n".join(lines)


def _sweep_gate(gate: TruthTableGate) -> Tuple[int, bool, List[int]]:
    """Exhaustively transmit a 2-input gate; return combos, ok, latencies."""
    sizes = gate.input_sizes
    latencies: List[int] = []
    combos = 0
    correct = True
    for a, b in itertools.product(range(sizes[0]), range(sizes[1])):
        wires = (gate.input_bases[0].encode(a), gate.input_bases[1].encode(b))
        transmission = gate.transmit(*wires)
        combos += 1
        latencies.append(transmission.decision_slot)
        if transmission.value != gate.evaluate(a, b):
            correct = False
    return combos, correct, latencies


@dataclass(frozen=True)
class _AdderPart:
    """The adder end-to-end check's outcome (the last shard's part)."""

    correct: bool
    critical_path_samples: int


@dataclass(frozen=True)
class GatesShard:
    """One sweep point M, or the adder check (``alphabet_size=None``).

    ``index`` is the point's position in the sweep — and its rng spawn
    key, making the shard self-contained.
    """

    config: GatesConfig
    index: int
    alphabet_size: Union[int, None]


def _shards(config: GatesConfig) -> Tuple[GatesShard, ...]:
    """One shard per alphabet size, plus the adder shard."""
    sweep = tuple(
        GatesShard(config, i, int(m))
        for i, m in enumerate(config.alphabet_sizes)
    )
    return sweep + (GatesShard(config, len(sweep), None),)


def _run_sweep_point(m: int, rng) -> GateSweepPoint:
    """Exhaustively check MIN/MAX/MODSUM over one M-element basis."""
    basis = build_demux_basis(
        m, synthesizer=paper_default_synthesizer(), rng=rng
    )
    combos = 0
    correct = True
    latencies: List[int] = []
    for gate in (min_gate(basis), max_gate(basis), mod_sum_gate(basis)):
        c, ok, lat = _sweep_gate(gate)
        combos += c
        correct = correct and ok
        latencies.extend(lat)
    arr = np.asarray(latencies, dtype=float)
    return GateSweepPoint(
        alphabet_size=m,
        combinations_checked=combos,
        all_correct=correct,
        median_latency_samples=float(np.median(arr)),
        p90_latency_samples=float(np.percentile(arr, 90)),
    )


def _run_adder(rng) -> _AdderPart:
    """Radix-4, 2-digit ripple adder over a selection of operand pairs."""
    radix, digits = 4, 2
    basis = build_demux_basis(
        radix, synthesizer=paper_default_synthesizer(), rng=rng
    )
    adder = ripple_adder(digits, basis)
    adder_ok = True
    critical = 0
    for a_value, b_value in ((0, 0), (3, 1), (7, 9), (15, 15), (10, 5)):
        assignments = {"cin": 0}
        for d in range(digits):
            assignments[f"a{d}"] = (a_value // radix**d) % radix
            assignments[f"b{d}"] = (b_value // radix**d) % radix
        wires = {name: basis.encode(v) for name, v in assignments.items()}
        transmission = adder.transmit(wires)
        reference = adder_reference(digits, radix, a_value, b_value, 0)
        for d in range(digits):
            if transmission.values[f"s{d}"] != reference[f"s{d}"]:
                adder_ok = False
        if transmission.values[f"c{digits}"] != reference["cout"]:
            adder_ok = False
        critical = max(critical, transmission.critical_path_slot)
    return _AdderPart(correct=adder_ok, critical_path_samples=critical)


def _run_shard(shard: GatesShard):
    """Run one sweep point (or the adder) on its derived rng stream."""
    rng = spawn_rng(shard.config.seed, shard.index)
    if shard.alphabet_size is None:
        return shard.index, _run_adder(rng)
    return shard.index, _run_sweep_point(shard.alphabet_size, rng)


def _merge(config: GatesConfig, parts: Sequence[Tuple[int, object]]) -> GatesResult:
    """Reassemble the sweep in point order; the adder part is last."""
    ordered = [part for _index, part in sorted(parts, key=lambda p: p[0])]
    adder = ordered[-1]
    assert isinstance(adder, _AdderPart)
    return GatesResult(
        points=list(ordered[:-1]),
        adder_correct=adder.correct,
        adder_critical_path_samples=adder.critical_path_samples,
        dt=paper_white_grid().dt,
    )


def _run(config: GatesConfig) -> GatesResult:
    """Serial driver: the same shards, executed in-process."""
    return _merge(config, [_run_shard(shard) for shard in _shards(config)])


def run_gates(
    alphabet_sizes: Tuple[int, ...] = (2, 3, 4, 8),
    seed: int = 2016,
) -> GatesResult:
    """Run the gate sweep and the adder end-to-end check."""
    return _run(GatesConfig(alphabet_sizes=tuple(alphabet_sizes), seed=seed))


register(
    ExperimentSpec(
        name="gates",
        description="C6 — gate correctness and latency",
        tier="claim",
        config_type=GatesConfig,
        run=_run,
        shard=_shards,
        run_shard=_run_shard,
        merge=_merge,
    )
)


def main() -> None:
    """Print the C6 gate sweep."""
    print(run_gates().render())


if __name__ == "__main__":
    main()
