"""Experiment C4: progressive (rough-then-refine) readout.

Section 4.2: without homogenization the coincidence product A·B is slow;
assigning it to the *low-value* bit and the fast exclusive products to
high-value bits yields "a rough output" quickly that is "gradually
refined" — an anytime readout.  The experiment transmits a word over an
uncorrelated intersection basis in both digit assignments and compares
the running-estimate error profiles.

Run directly: ``python -m repro.experiments.progressive``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..analysis.progressive import progressive_readout, value_error_profile
from ..hyperspace.builders import build_intersection_basis, paper_default_synthesizer
from ..noise.synthesis import make_rng
from ..pipeline.registry import register
from ..pipeline.spec import ExperimentSpec
from ..units import format_time

__all__ = ["ProgressiveConfig", "ProgressiveResult", "run_progressive"]


@dataclass(frozen=True)
class ProgressiveConfig:
    """Config of the progressive-readout comparison."""

    seed: int = 2016
    radix: int = 3


@dataclass(frozen=True)
class ProgressiveResult:
    """Error profiles for both digit-to-rate assignments.

    Each profile is a list of (slot, relative error) pairs; the "paper"
    assignment puts the slow element on the least significant digit.
    """

    paper_assignment: List[Tuple[int, float]]
    adverse_assignment: List[Tuple[int, float]]
    dt: float

    def time_to_error(self, profile: List[Tuple[int, float]], target: float) -> float:
        """First time (seconds) the profile's error drops below ``target``."""
        for slot, error in profile:
            if error <= target:
                return slot * self.dt
        return float("inf")

    def render(self) -> str:
        """Full text report."""
        lines = ["C4 — progressive readout (uncorrelated intersection basis)"]
        for name, profile in (
            ("slow element on LOW digit (paper)", self.paper_assignment),
            ("slow element on HIGH digit (adverse)", self.adverse_assignment),
        ):
            steps = ", ".join(
                f"{format_time(slot * self.dt)}: {error:.3f}" for slot, error in profile
            )
            lines.append(f"  {name}: {steps}")
        rough = self.time_to_error(self.paper_assignment, 0.2)
        adverse = self.time_to_error(self.adverse_assignment, 0.2)
        lines.append(
            f"  time to 20% accuracy: paper {format_time(rough)}, "
            f"adverse {format_time(adverse)}"
        )
        return "\n".join(lines)


def run_progressive(seed: int = 2016, radix: int = 3) -> ProgressiveResult:
    """Run the rough-then-refine comparison on a 3-digit word.

    The basis is the uncorrelated second-order intersection output: one
    slow element (the coincidence product, index 0 in label order) and
    two fast ones.  The transmitted digits are all the radix's maximum
    value so every digit contributes to the error until detected.
    """
    synthesizer = paper_default_synthesizer()
    basis = build_intersection_basis(
        2, synthesizer=synthesizer, common_amplitude=0.0, rng=make_rng(seed)
    )
    # Element 0 is A·B (slow); 1 and 2 are the fast exclusives.
    slow, fast_a, fast_b = 0, 1, 2

    # Paper assignment: slow element carries digit 0 (weight 1).
    paper_digits = [slow, fast_a, fast_b]
    # Adverse assignment: slow element carries the top digit.
    adverse_digits = [fast_a, fast_b, slow]

    paper_profile = value_error_profile(
        progressive_readout(basis, paper_digits, radix), paper_digits, radix
    )
    adverse_profile = value_error_profile(
        progressive_readout(basis, adverse_digits, radix), adverse_digits, radix
    )
    return ProgressiveResult(
        paper_assignment=paper_profile,
        adverse_assignment=adverse_profile,
        dt=basis.grid.dt,
    )


register(
    ExperimentSpec(
        name="progressive",
        description="C4 — rough-then-refine readout",
        tier="claim",
        config_type=ProgressiveConfig,
        run=lambda config: run_progressive(
            seed=config.seed, radix=config.radix
        ),
    )
)


def main() -> None:
    """Print the C4 progressive-readout comparison."""
    print(run_progressive().render())


if __name__ == "__main__":
    main()
