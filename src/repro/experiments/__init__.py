"""Experiment drivers: one per paper table, figure and claim.

=========  =============================================  ==================
ID         Paper artifact                                 Driver
=========  =============================================  ==================
T1         Table 1 (demux statistics, white vs 1/f)       :func:`run_table1`
T2         Table 2 (intersection, homogenization)         :func:`run_table2`
F1         Figure 1 (demux raster)                        :func:`run_figure1`
F2         Figure 2 (intersection raster, uncorrelated)   :func:`run_figure2`
F3         Figure 3 (intersection raster, correlated)     :func:`run_figure3`
C1         Sec. 2 speed claim                             :func:`run_speed`
C2         Sec. 6 aliasing claim                          :func:`run_aliasing`
C3         Sec. 3 exponential basis claim                 :func:`run_scaling`
C4         Sec. 4.2 rough-then-refine claim               :func:`run_progressive`
C5         Sec. 1–2 low-power claim                       :func:`run_energy`
C6         Sec. 5 gates/set-ops claim                     :func:`run_gates`
C7         Ref [2] search claim                           :func:`run_search`
C8         Ref [2] verification claim                     :func:`run_verification`
C9         Sec. 1-2 resilience claim                      :func:`run_robustness`
=========  =============================================  ==================
"""

from .aliasing import AliasingResult, run_aliasing
from .energy import EnergyResult, run_energy
from .figures import FigureResult, run_figure1, run_figure2, run_figure3
from .gates import GatesResult, run_gates
from .progressive import ProgressiveResult, run_progressive
from .robustness import RobustnessExperimentResult, run_robustness
from .scaling import ScalingResult, run_scaling
from .search import SearchResult, run_search
from .speed import SpeedResult, run_speed
from .table1 import Table1Result, run_table1
from .verification import VerificationExperimentResult, run_verification
from .table2 import Table2Result, run_table2

__all__ = [
    "run_table1",
    "Table1Result",
    "run_table2",
    "Table2Result",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "FigureResult",
    "run_speed",
    "SpeedResult",
    "run_aliasing",
    "AliasingResult",
    "run_scaling",
    "ScalingResult",
    "run_progressive",
    "ProgressiveResult",
    "run_energy",
    "EnergyResult",
    "run_gates",
    "GatesResult",
    "run_search",
    "SearchResult",
    "run_verification",
    "VerificationExperimentResult",
    "run_robustness",
    "RobustnessExperimentResult",
]
