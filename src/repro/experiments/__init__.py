"""Experiment drivers: one per paper table, figure and claim.

=========  =============================================  ==================
ID         Paper artifact                                 Driver
=========  =============================================  ==================
T1         Table 1 (demux statistics, white vs 1/f)       :func:`run_table1`
T2         Table 2 (intersection, homogenization)         :func:`run_table2`
F1         Figure 1 (demux raster)                        :func:`run_figure1`
F2         Figure 2 (intersection raster, uncorrelated)   :func:`run_figure2`
F3         Figure 3 (intersection raster, correlated)     :func:`run_figure3`
C1         Sec. 2 speed claim                             :func:`run_speed`
C2         Sec. 6 aliasing claim                          :func:`run_aliasing`
C3         Sec. 3 exponential basis claim                 :func:`run_scaling`
C4         Sec. 4.2 rough-then-refine claim               :func:`run_progressive`
C5         Sec. 1–2 low-power claim                       :func:`run_energy`
C6         Sec. 5 gates/set-ops claim                     :func:`run_gates`
C7         Ref [2] search claim                           :func:`run_search`
C8         Ref [2] verification claim                     :func:`run_verification`
C9         Sec. 1-2 resilience claim                      :func:`run_robustness`
S1         ROADMAP serving workload (sharded identify)    :func:`run_identify`
N1         ROADMAP gate networks at batch scale           :func:`run_logicnet`
=========  =============================================  ==================

Importing this package has a deliberate side effect: every module
registers its :class:`~repro.pipeline.spec.ExperimentSpec` with
:mod:`repro.pipeline.registry`, which is how the CLI and the
:class:`~repro.pipeline.runner.Runner` discover experiments — there is
no hand-maintained driver list anywhere.
"""

from .aliasing import AliasingConfig, AliasingResult, run_aliasing
from .energy import EnergyConfig, EnergyResult, run_energy
from .figures import (
    Figure1Config,
    Figure2Config,
    Figure3Config,
    FigureResult,
    run_figure1,
    run_figure2,
    run_figure3,
)
from .gates import GatesConfig, GatesResult, run_gates
from .identify import IdentifyConfig, IdentifyResult, run_identify
from .logicnet import LogicNetConfig, LogicNetResult, run_logicnet
from .progressive import ProgressiveConfig, ProgressiveResult, run_progressive
from .robustness import (
    RobustnessConfig,
    RobustnessExperimentResult,
    run_robustness,
)
from .scaling import ScalingConfig, ScalingResult, run_scaling
from .search import SearchConfig, SearchResult, run_search
from .speed import SpeedConfig, SpeedResult, run_speed
from .table1 import Table1Config, Table1Result, run_table1
from .verification import (
    VerificationConfig,
    VerificationExperimentResult,
    run_verification,
)
from .table2 import Table2Config, Table2Result, run_table2

__all__ = [
    "run_table1",
    "Table1Config",
    "Table1Result",
    "run_table2",
    "Table2Config",
    "Table2Result",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "Figure1Config",
    "Figure2Config",
    "Figure3Config",
    "FigureResult",
    "run_speed",
    "SpeedConfig",
    "SpeedResult",
    "run_aliasing",
    "AliasingConfig",
    "AliasingResult",
    "run_scaling",
    "ScalingConfig",
    "ScalingResult",
    "run_progressive",
    "ProgressiveConfig",
    "ProgressiveResult",
    "run_energy",
    "EnergyConfig",
    "EnergyResult",
    "run_gates",
    "GatesConfig",
    "GatesResult",
    "run_search",
    "SearchConfig",
    "SearchResult",
    "run_verification",
    "VerificationConfig",
    "VerificationExperimentResult",
    "run_robustness",
    "RobustnessConfig",
    "RobustnessExperimentResult",
    "run_identify",
    "IdentifyConfig",
    "IdentifyResult",
    "run_logicnet",
    "LogicNetConfig",
    "LogicNetResult",
]
