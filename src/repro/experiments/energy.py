"""Experiment C5: energy per gate operation — noise-spike vs clocked.

Sections 1–2 argue the noise-spike scheme supports "extremely low power
design": the timing reference is free thermal noise, logic switches only
on spikes, and no variation guard band is needed because random timing
tolerates delays (Section 6).  The experiment evaluates the first-order
energy models of :mod:`repro.energy` across reliability targets and
reports the per-operation energy and its multiple of the Landauer bound.

Run directly: ``python -m repro.experiments.energy``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..energy.power import SchemeEnergy, compare_schemes
from ..pipeline.registry import register
from ..pipeline.spec import ExperimentSpec

__all__ = ["EnergyConfig", "EnergyResult", "run_energy"]


@dataclass(frozen=True)
class EnergyConfig:
    """Config of the energy comparison (deterministic: no seed)."""

    error_targets: Tuple[float, ...] = (1e-6, 1e-9, 1e-12)
    gate_capacitance: float = 1e-15
    noise_rms_voltage: float = 1e-3


@dataclass(frozen=True)
class EnergyResult:
    """Scheme energies per reliability target."""

    rows: List[Tuple[float, List[SchemeEnergy]]]

    def advantage(self, error_target: float) -> float:
        """Clocked / noise-spike energy ratio at one target."""
        for target, schemes in self.rows:
            if target == error_target:
                noise = next(s for s in schemes if s.name == "noise-spike")
                clocked = next(s for s in schemes if s.name == "periodic-clock")
                return clocked.total_per_op / noise.total_per_op
        raise KeyError(error_target)

    def render(self) -> str:
        """Full text report."""
        lines = [
            "C5 — energy per gate operation (first-order models)",
            f"{'error target':>13s} {'scheme':>15s} {'timing (J)':>12s} "
            f"{'logic (J)':>12s} {'total (J)':>12s} {'xLandauer':>10s}",
        ]
        for target, schemes in self.rows:
            for scheme in schemes:
                lines.append(
                    f"{target:>13.0e} {scheme.name:>15s} "
                    f"{scheme.timing_energy_per_op:>12.3e} "
                    f"{scheme.logic_energy_per_op:>12.3e} "
                    f"{scheme.total_per_op:>12.3e} "
                    f"{scheme.landauer_multiple():>10.1f}"
                )
            lines.append(
                f"{'':>13s} advantage (clocked / noise-spike): "
                f"{self.advantage(target):.1f}x"
            )
        return "\n".join(lines)


def run_energy(
    error_targets: Sequence[float] = (1e-6, 1e-9, 1e-12),
    gate_capacitance: float = 1e-15,
    noise_rms_voltage: float = 1e-3,
) -> EnergyResult:
    """Evaluate both schemes across reliability targets."""
    rows = [
        (
            target,
            compare_schemes(
                error_target=target,
                gate_capacitance=gate_capacitance,
                noise_rms_voltage=noise_rms_voltage,
            ),
        )
        for target in error_targets
    ]
    return EnergyResult(rows=rows)


register(
    ExperimentSpec(
        name="energy",
        description="C5 — energy per gate operation",
        tier="claim",
        config_type=EnergyConfig,
        seed_policy="fixed",
        run=lambda config: run_energy(
            error_targets=config.error_targets,
            gate_capacitance=config.gate_capacitance,
            noise_rms_voltage=config.noise_rms_voltage,
        ),
    )
)


def main() -> None:
    """Print the C5 energy comparison."""
    print(run_energy().render())


if __name__ == "__main__":
    main()
