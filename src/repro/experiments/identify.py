"""Experiment S1: sharded batched identification (the serving workload).

The ROADMAP's serving direction made concrete: N single-valued wires
are identified against an M-element demux basis from many random
observation starts — the shape of a receiver fleet classifying live
traffic.  The workload exists for two reasons:

* it exercises the batched identification path
  (:meth:`~repro.logic.correlator.CoincidenceCorrelator.identify_batch`)
  at serving scale, reporting accuracy and latency percentiles;
* it is the pipeline's sharding reference: the shard plan splits the
  wire batch along its **batch axis** with
  :meth:`~repro.backend.batch.SpikeTrainBatch.select_rows`, and the
  merge is order-independent — so a sharded run is bit-identical to a
  serial one no matter how many workers execute it (the property
  ``benchmarks/bench_batch_throughput.py`` measures and
  ``BENCH_batch.json`` records).  Dispatch is zero-copy where the host
  allows: ``shard_shared`` materialises the workload once, exports it
  into a :class:`~repro.backend.shared.SharedArena`, and workers attach
  ``(handle, row_range)`` tasks; the rebuild shards remain as the
  fallback when shared memory is unavailable.

Run directly: ``python -m repro.experiments.identify``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..backend.batch import SharedBatchHandle, SpikeTrainBatch
from ..backend.shared import SharedArena, SharedArraySpec, attach_array
from ..hyperspace.basis import BasisArtifact, HyperspaceBasis
from ..logic.correlator import CoincidenceCorrelator
from ..noise.synthesis import make_rng
from ..orthogonator.demux import DemuxOrthogonator
from ..pipeline.registry import register
from ..pipeline.spec import ExperimentSpec
from ..spikes.generators import poisson_train
from ..units import format_time, paper_white_grid

__all__ = ["IdentifyConfig", "IdentifyResult", "run_identify"]


@dataclass(frozen=True)
class IdentifyConfig:
    """Config of the serving-shaped identification workload.

    ``n_shards`` is part of the config (not the worker count): the
    shard plan must be identical however many jobs execute it.
    """

    seed: int = 2016
    n_wires: int = 256
    basis_size: int = 16
    source_isi_samples: int = 28
    n_trials: int = 12
    n_shards: int = 4


@dataclass(frozen=True)
class IdentifyShard:
    """One rebuild shard: the wire rows ``[row_start, row_stop)``.

    Carries only the config — the worker reconstructs the workload
    deterministically.  The fallback when shared memory is unavailable.
    """

    config: IdentifyConfig
    row_start: int
    row_stop: int


@dataclass(frozen=True)
class IdentifySharedShard:
    """One zero-copy shard: ``(handles, row_range)`` instead of a rebuild.

    The basis artifact, the wire batch and the truth vector live in
    shared-memory segments owned by the dispatching runner's arena;
    this task pickles as metadata only, and the worker attaches the
    segments instead of re-running the workload synthesis.
    """

    row_start: int
    row_stop: int
    basis: BasisArtifact
    wires: SharedBatchHandle
    elements: SharedArraySpec
    start_slots: Tuple[int, ...]


@dataclass(frozen=True)
class IdentifyPart:
    """One shard's raw outcome (merged order-independently)."""

    row_start: int
    row_stop: int
    identifications: int
    correct: int
    misses: int
    latencies: np.ndarray  # decision latencies (samples) of the hits


@dataclass(frozen=True)
class IdentifyResult:
    """Accuracy and latency of the whole identification sweep."""

    n_wires: int
    basis_size: int
    n_trials: int
    n_shards: int
    identifications: int
    correct: int
    misses: int
    accuracy: float
    median_latency_samples: float
    p90_latency_samples: float
    dt: float

    def render(self) -> str:
        """Full text report."""
        return "\n".join(
            [
                f"S1 — batched identification ({self.n_wires} wires, "
                f"M={self.basis_size}, {self.n_trials} observation starts, "
                f"{self.n_shards} shards)",
                f"  identifications : {self.identifications} "
                f"({self.misses} misses)",
                f"  accuracy        : {self.accuracy:.4f}",
                f"  latency         : median "
                f"{format_time(self.median_latency_samples * self.dt)}, p90 "
                f"{format_time(self.p90_latency_samples * self.dt)}",
            ]
        )


def _workload(
    config: IdentifyConfig,
) -> Tuple[HyperspaceBasis, SpikeTrainBatch, np.ndarray, np.ndarray]:
    """Deterministic workload: basis, wire batch, truth, trial starts.

    Every rng draw happens in one fixed order from one seed, so every
    shard (in any process) rebuilds exactly the same arrays.
    """
    grid = paper_white_grid()
    rng = make_rng(config.seed)
    source = poisson_train(
        rate_hz=1.0 / (config.source_isi_samples * grid.dt), grid=grid, rng=rng
    )
    output = DemuxOrthogonator.with_outputs(config.basis_size).transform(source)
    basis = HyperspaceBasis.from_orthogonator(output)
    elements = rng.integers(config.basis_size, size=config.n_wires)
    wires = basis.as_batch().select_rows(elements)
    start_slots = rng.integers(0, grid.n_samples // 2, size=config.n_trials)
    return basis, wires, elements, start_slots


def _shards(config: IdentifyConfig) -> Tuple[IdentifyShard, ...]:
    """Split the wire rows into ``n_shards`` contiguous ranges."""
    n_shards = max(1, min(config.n_shards, config.n_wires))
    bounds = np.linspace(0, config.n_wires, n_shards + 1).astype(np.int64)
    return tuple(
        IdentifyShard(config, int(lo), int(hi))
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    )


def _identify_rows(
    basis: HyperspaceBasis,
    rows: SpikeTrainBatch,
    expected: np.ndarray,
    start_slots: np.ndarray,
    row_start: int,
    row_stop: int,
) -> IdentifyPart:
    """Identify one shard's wire rows from every observation start.

    The common core of the rebuild and shared paths: given equal inputs
    it produces equal parts, which is what makes the dispatch mechanism
    invisible in the merged result.
    """
    correlator = CoincidenceCorrelator(basis)
    identifications = correct = misses = 0
    latencies: List[np.ndarray] = []
    for start in np.asarray(start_slots).tolist():
        batch = correlator.identify_batch(
            rows, start_slot=int(start), missing="none"
        )
        found = batch.elements >= 0
        identifications += int(batch.elements.size)
        misses += int(np.count_nonzero(~found))
        correct += int(np.count_nonzero(batch.elements[found] == expected[found]))
        # int32 keeps the cross-process payload small; latencies are
        # bounded by the grid length (< 2^31).
        latencies.append(
            (batch.decision_slots[found] - int(start)).astype(np.int32)
        )
    stacked = (
        np.concatenate(latencies)
        if latencies
        else np.empty(0, dtype=np.int32)
    )
    return IdentifyPart(
        row_start=row_start,
        row_stop=row_stop,
        identifications=identifications,
        correct=correct,
        misses=misses,
        latencies=stacked,
    )


def _run_shard(shard) -> IdentifyPart:
    """Run one shard: attach a shared workload, or rebuild it locally."""
    if isinstance(shard, IdentifySharedShard):
        basis = HyperspaceBasis.from_artifact(shard.basis)
        rows = SpikeTrainBatch.from_shared(
            shard.wires, rows=(shard.row_start, shard.row_stop)
        )
        elements = attach_array(shard.elements)
        expected = np.asarray(elements[shard.row_start : shard.row_stop])
        start_slots = np.asarray(shard.start_slots, dtype=np.int64)
    else:
        config = shard.config
        basis, wires, elements, start_slots = _workload(config)
        rows = wires.select_rows(np.arange(shard.row_start, shard.row_stop))
        expected = elements[shard.row_start : shard.row_stop]
    return _identify_rows(
        basis, rows, expected, start_slots, shard.row_start, shard.row_stop
    )


def _shard_shared(
    config: IdentifyConfig, arena: SharedArena
) -> Tuple[IdentifySharedShard, ...]:
    """Materialise the workload once, export it, ship handles.

    The dense per-shard dispatch payload drops from the rebuilt
    workload (or a pickled raster) to a few hundred bytes of segment
    metadata; workers attach the same physical pages.
    """
    basis, wires, elements, start_slots = _workload(config)
    artifact = basis.to_artifact(arena)
    handle = wires.to_shared(arena)
    elements_spec = arena.share_array(elements)
    starts = tuple(int(s) for s in start_slots)
    return tuple(
        IdentifySharedShard(
            row_start=shard.row_start,
            row_stop=shard.row_stop,
            basis=artifact,
            wires=handle,
            elements=elements_spec,
            start_slots=starts,
        )
        for shard in _shards(config)
    )


def _merge(
    config: IdentifyConfig, parts: Sequence[IdentifyPart]
) -> IdentifyResult:
    """Reassemble the sweep; every aggregate is order-independent."""
    parts = sorted(parts, key=lambda p: p.row_start)
    identifications = sum(p.identifications for p in parts)
    correct = sum(p.correct for p in parts)
    misses = sum(p.misses for p in parts)
    hits = identifications - misses
    latencies = (
        np.concatenate([p.latencies for p in parts])
        if parts
        else np.empty(0, dtype=np.int64)
    )
    return IdentifyResult(
        n_wires=config.n_wires,
        basis_size=config.basis_size,
        n_trials=config.n_trials,
        n_shards=len(parts),
        identifications=identifications,
        correct=correct,
        misses=misses,
        accuracy=correct / hits if hits else 0.0,
        median_latency_samples=float(np.median(latencies)) if hits else 0.0,
        p90_latency_samples=(
            float(np.percentile(latencies, 90)) if hits else 0.0
        ),
        dt=paper_white_grid().dt,
    )


def _run(config: IdentifyConfig) -> IdentifyResult:
    """Serial driver: the same shards, executed in-process.

    Builds the workload once and feeds every shard the same arrays —
    the serial analogue of the shared-memory dispatch path, so the
    serial baseline doesn't pay ``n_shards`` redundant rebuilds.
    """
    basis, wires, elements, start_slots = _workload(config)
    parts = [
        _identify_rows(
            basis,
            wires.select_rows(np.arange(shard.row_start, shard.row_stop)),
            elements[shard.row_start : shard.row_stop],
            start_slots,
            shard.row_start,
            shard.row_stop,
        )
        for shard in _shards(config)
    ]
    return _merge(config, parts)


def run_identify(
    seed: int = 2016,
    n_wires: int = 256,
    basis_size: int = 16,
    source_isi_samples: int = 28,
    n_trials: int = 12,
    n_shards: int = 4,
) -> IdentifyResult:
    """Run experiment S1 and return the accuracy/latency summary."""
    return _run(
        IdentifyConfig(
            seed=seed,
            n_wires=n_wires,
            basis_size=basis_size,
            source_isi_samples=source_isi_samples,
            n_trials=n_trials,
            n_shards=n_shards,
        )
    )


register(
    ExperimentSpec(
        name="identify",
        description="S1 — sharded batched identification (serving workload)",
        tier="serving",
        config_type=IdentifyConfig,
        run=_run,
        shard=_shards,
        run_shard=_run_shard,
        merge=_merge,
        shard_shared=_shard_shared,
    )
)


def main() -> None:
    """Print the S1 identification summary."""
    print(run_identify().render())


if __name__ == "__main__":
    main()
