"""Reference values transcribed from the paper's tables.

Every number the evaluation section reports, in one place, so
experiment drivers and EXPERIMENTS.md stay consistent.  Times are SI
seconds; sample counts are the paper's raw simulation numbers (Table 2
prints both).
"""

from __future__ import annotations

from ..analysis.tables import PaperValue
from ..orthogonator.intersection import product_label
from ..units import NANOSECOND, PICOSECOND

# Canonical labels of the second-order intersection products, built by
# the same code that labels orthogonator outputs so the keys can never
# drift apart (Unicode combining characters make hand-typed copies
# fragile).
_NAMES = ("A", "B")
LABEL_AB = product_label(0b11, _NAMES)  # A·B   (coincidence)
LABEL_A_ONLY = product_label(0b01, _NAMES)  # A·B̄ (A without B)
LABEL_B_ONLY = product_label(0b10, _NAMES)  # Ā·B (B without A)

__all__ = [
    "PAPER_N_POINTS",
    "TABLE1_WHITE",
    "TABLE1_PINK",
    "TABLE2_UNCORRELATED",
    "TABLE2_CORRELATED",
    "TABLE2_COMMON_AMPLITUDE",
    "TABLE2_PRIVATE_AMPLITUDE",
]

#: Record length used for all of the paper's statistics.
PAPER_N_POINTS = 65536

#: Table 1, band-limited white noise 5 MHz–10 GHz, demux order 2 (M = 3).
TABLE1_WHITE = {
    "source": PaperValue(
        tau_seconds=90 * PICOSECOND, dtau_seconds=58 * PICOSECOND
    ),
    "outputs": PaperValue(
        tau_seconds=267 * PICOSECOND, dtau_seconds=100 * PICOSECOND
    ),
}

#: Table 1, band-limited 1/f noise 2.5 MHz–10 GHz, demux order 2 (M = 3).
TABLE1_PINK = {
    "source": PaperValue(
        tau_seconds=225 * PICOSECOND, dtau_seconds=469 * PICOSECOND
    ),
    "outputs": PaperValue(
        tau_seconds=681 * PICOSECOND, dtau_seconds=768 * PICOSECOND
    ),
}

#: Table 2, uncorrelated sources (Figure 2 configuration).
TABLE2_UNCORRELATED = {
    "A": PaperValue(
        tau_seconds=90 * PICOSECOND,
        dtau_seconds=58 * PICOSECOND,
        tau_samples=28,
        dtau_samples=18,
    ),
    "B": PaperValue(
        tau_seconds=90 * PICOSECOND,
        dtau_seconds=61 * PICOSECOND,
        tau_samples=28,
        dtau_samples=19,
    ),
    LABEL_AB: PaperValue(
        tau_seconds=2.24 * NANOSECOND,
        dtau_seconds=2.18 * NANOSECOND,
        tau_samples=697,
        dtau_samples=678,
    ),
    LABEL_A_ONLY: PaperValue(
        tau_seconds=93 * PICOSECOND,
        dtau_seconds=64 * PICOSECOND,
        tau_samples=29,
        dtau_samples=20,
    ),
    LABEL_B_ONLY: PaperValue(
        tau_seconds=96.4 * PICOSECOND,
        dtau_seconds=67.5 * PICOSECOND,
        tau_samples=30,
        dtau_samples=21,
    ),
}

#: Table 2, correlated sources (Figure 3 configuration).
TABLE2_CORRELATED = {
    "A": PaperValue(
        tau_seconds=90 * PICOSECOND,
        dtau_seconds=61 * PICOSECOND,
        tau_samples=28,
        dtau_samples=19,
    ),
    "B": PaperValue(
        tau_seconds=90 * PICOSECOND,
        dtau_seconds=61 * PICOSECOND,
        tau_samples=28,
        dtau_samples=19,
    ),
    LABEL_AB: PaperValue(
        tau_seconds=167 * PICOSECOND,
        dtau_seconds=148 * PICOSECOND,
        tau_samples=52,
        dtau_samples=46,
    ),
    LABEL_A_ONLY: PaperValue(
        tau_seconds=186 * PICOSECOND,
        dtau_seconds=170 * PICOSECOND,
        tau_samples=58,
        dtau_samples=53,
    ),
    LABEL_B_ONLY: PaperValue(
        tau_seconds=190 * PICOSECOND,
        dtau_seconds=174 * PICOSECOND,
        tau_samples=59,
        dtau_samples=54,
    ),
}

#: Section 4.2 mixing amplitudes for the correlated configuration.
TABLE2_COMMON_AMPLITUDE = 0.945
TABLE2_PRIVATE_AMPLITUDE = 0.055
