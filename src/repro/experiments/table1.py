"""Experiment T1: reproduce Table 1 (demux orthogonator statistics).

Second-order (M = 3) demultiplexer-based orthogonator driven by
zero-crossing spikes of (a) band-limited white noise 5 MHz–10 GHz and
(b) band-limited 1/f noise 2.5 MHz–10 GHz, 65 536 simulation points.
Reported per configuration: τ and Δτ of the source train and of the
pooled output trains, next to the paper's values.

Run directly: ``python -m repro.experiments.table1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.rice import rice_mean_isi
from ..analysis.tables import StatsRow, StatsTable
from ..noise.sources import NoiseSource, paper_pink_source, paper_white_source
from ..orthogonator.demux import DemuxOrthogonator
from ..spikes.statistics import IsiStatistics, isi_statistics
from ..spikes.zero_crossing import AllCrossingDetector
from .paper_constants import PAPER_N_POINTS, TABLE1_PINK, TABLE1_WHITE

__all__ = ["Table1Result", "run_table1"]


@dataclass(frozen=True)
class Table1Result:
    """Both configurations of Table 1 as renderable tables."""

    white: StatsTable
    pink: StatsTable
    rice_white_isi: float
    rice_pink_isi: float

    def render(self) -> str:
        """Full text report."""
        return (
            f"{self.white.render()}\n\n{self.pink.render()}\n\n"
            f"Rice-formula source ISI: white {self.rice_white_isi * 1e12:.1f} ps, "
            f"1/f {self.rice_pink_isi * 1e12:.1f} ps"
        )


def _pooled_output_stats(source: NoiseSource, order: int, seed: int) -> tuple:
    """Source train stats and pooled per-wire output stats."""
    record = source.record()
    train = AllCrossingDetector().detect(record, source.grid)
    output = DemuxOrthogonator(order).transform(train)
    source_stats = isi_statistics(train)
    intervals = np.concatenate(
        [t.interspike_intervals().astype(float) for t in output.trains]
    )
    pooled = IsiStatistics(
        n_spikes=output.total_spikes(),
        mean_isi_samples=float(intervals.mean()),
        rms_isi_samples=float(intervals.std()),
        dt=source.grid.dt,
    )
    return source_stats, pooled


def run_table1(
    seed: int = 2016,
    n_samples: int = PAPER_N_POINTS,
    order: int = 2,
) -> Table1Result:
    """Run experiment T1 and return the paper-vs-measured tables."""
    white_source = paper_white_source(seed=seed, n_samples=n_samples)
    pink_source = paper_pink_source(seed=seed + 1, n_samples=n_samples)

    white_table = StatsTable("Table 1 — white noise (5 MHz-10 GHz), demux M=3")
    source_stats, output_stats = _pooled_output_stats(white_source, order, seed)
    white_table.add(StatsRow("source", source_stats, TABLE1_WHITE["source"]))
    white_table.add(StatsRow("outputs", output_stats, TABLE1_WHITE["outputs"]))

    pink_table = StatsTable("Table 1 — 1/f noise (2.5 MHz-10 GHz), demux M=3")
    source_stats, output_stats = _pooled_output_stats(pink_source, order, seed)
    pink_table.add(StatsRow("source", source_stats, TABLE1_PINK["source"]))
    pink_table.add(StatsRow("outputs", output_stats, TABLE1_PINK["outputs"]))

    return Table1Result(
        white=white_table,
        pink=pink_table,
        rice_white_isi=rice_mean_isi(white_source.spectrum),
        rice_pink_isi=rice_mean_isi(pink_source.spectrum),
    )


def main() -> None:
    """Print the Table 1 reproduction."""
    print(run_table1().render())


if __name__ == "__main__":
    main()
