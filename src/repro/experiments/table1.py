"""Experiment T1: reproduce Table 1 (demux orthogonator statistics).

Second-order (M = 3) demultiplexer-based orthogonator driven by
zero-crossing spikes of (a) band-limited white noise 5 MHz–10 GHz and
(b) band-limited 1/f noise 2.5 MHz–10 GHz, 65 536 simulation points.
Reported per configuration: τ and Δτ of the source train and of the
pooled output trains, next to the paper's values.

Run directly: ``python -m repro.experiments.table1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..analysis.rice import rice_mean_isi
from ..analysis.tables import StatsRow, StatsTable
from ..backend.shared import SharedArena, SharedArraySpec, attach_array
from ..noise.sources import NoiseSource, paper_pink_source, paper_white_source
from ..orthogonator.demux import DemuxOrthogonator
from ..pipeline.registry import register
from ..pipeline.spec import ExperimentSpec
from ..spikes.statistics import IsiStatistics, isi_statistics
from ..spikes.zero_crossing import AllCrossingDetector
from .paper_constants import PAPER_N_POINTS, TABLE1_PINK, TABLE1_WHITE

__all__ = ["Table1Config", "Table1Result", "run_table1"]


@dataclass(frozen=True)
class Table1Config:
    """Config of the Table 1 reproduction."""

    seed: int = 2016
    n_samples: int = PAPER_N_POINTS
    order: int = 2


@dataclass(frozen=True)
class Table1Result:
    """Both configurations of Table 1 as renderable tables."""

    white: StatsTable
    pink: StatsTable
    rice_white_isi: float
    rice_pink_isi: float

    def render(self) -> str:
        """Full text report."""
        return (
            f"{self.white.render()}\n\n{self.pink.render()}\n\n"
            f"Rice-formula source ISI: white {self.rice_white_isi * 1e12:.1f} ps, "
            f"1/f {self.rice_pink_isi * 1e12:.1f} ps"
        )


def _pooled_output_stats(
    source: NoiseSource, order: int, record=None
) -> tuple:
    """Source train stats and pooled per-wire output stats.

    ``record`` short-circuits the synthesis: a shared-memory shard
    passes the parent's record and only pays detection + transform.
    """
    if record is None:
        record = source.record()
    train = AllCrossingDetector().detect(record, source.grid)
    output = DemuxOrthogonator(order).transform(train)
    source_stats = isi_statistics(train)
    intervals = np.concatenate(
        [t.interspike_intervals().astype(float) for t in output.trains]
    )
    pooled = IsiStatistics(
        n_spikes=output.total_spikes(),
        mean_isi_samples=float(intervals.mean()),
        rms_isi_samples=float(intervals.std()),
        dt=source.grid.dt,
    )
    return source_stats, pooled


@dataclass(frozen=True)
class Table1Shard:
    """One noise configuration of Table 1 (the spec's shard unit)."""

    variant: str  # "white" | "pink"
    seed: int
    n_samples: int
    order: int


@dataclass(frozen=True)
class Table1SharedShard:
    """One configuration whose noise record lives in shared memory.

    The parent synthesizes the record once and exports it; the worker
    rebuilds only the (cheap) source object for its grid and spectrum
    and attaches the record instead of re-running the synthesis.
    """

    variant: str
    seed: int
    n_samples: int
    order: int
    record: SharedArraySpec


@dataclass(frozen=True)
class Table1Part:
    """One configuration's table plus its Rice-formula source ISI."""

    variant: str
    table: StatsTable
    rice_isi: float


def _shards(config: Table1Config) -> Tuple[Table1Shard, ...]:
    """The two noise configurations, seeded exactly as the serial run."""
    return (
        Table1Shard("white", config.seed, config.n_samples, config.order),
        Table1Shard("pink", config.seed + 1, config.n_samples, config.order),
    )


def _run_shard(shard) -> Table1Part:
    """Measure one noise configuration (attached or rebuilt record)."""
    record = (
        attach_array(shard.record)
        if isinstance(shard, Table1SharedShard)
        else None
    )
    if shard.variant == "white":
        source = paper_white_source(seed=shard.seed, n_samples=shard.n_samples)
        title = "Table 1 — white noise (5 MHz-10 GHz), demux M=3"
        reference = TABLE1_WHITE
    else:
        source = paper_pink_source(seed=shard.seed, n_samples=shard.n_samples)
        title = "Table 1 — 1/f noise (2.5 MHz-10 GHz), demux M=3"
        reference = TABLE1_PINK
    table = StatsTable(title)
    source_stats, output_stats = _pooled_output_stats(
        source, shard.order, record=record
    )
    table.add(StatsRow("source", source_stats, reference["source"]))
    table.add(StatsRow("outputs", output_stats, reference["outputs"]))
    return Table1Part(
        variant=shard.variant,
        table=table,
        rice_isi=rice_mean_isi(source.spectrum),
    )


def _shard_shared(
    config: Table1Config, arena: SharedArena
) -> Tuple[Table1SharedShard, ...]:
    """Synthesize both records once and ship them as segment handles.

    Generation order matches the rebuild path exactly — each variant's
    source draws its first record from its own seed — so shared and
    rebuild shards are bit-identical.
    """
    shards = []
    for shard in _shards(config):
        build = (
            paper_white_source if shard.variant == "white" else paper_pink_source
        )
        source = build(seed=shard.seed, n_samples=shard.n_samples)
        shards.append(
            Table1SharedShard(
                variant=shard.variant,
                seed=shard.seed,
                n_samples=shard.n_samples,
                order=shard.order,
                record=arena.share_array(source.record()),
            )
        )
    return tuple(shards)


def _merge(config: Table1Config, parts: Sequence[Table1Part]) -> Table1Result:
    """Reassemble the full Table 1 result from its two configurations."""
    by_variant = {part.variant: part for part in parts}
    return Table1Result(
        white=by_variant["white"].table,
        pink=by_variant["pink"].table,
        rice_white_isi=by_variant["white"].rice_isi,
        rice_pink_isi=by_variant["pink"].rice_isi,
    )


def _run(config: Table1Config) -> Table1Result:
    """Serial driver: the same shards, executed in-process."""
    return _merge(config, [_run_shard(shard) for shard in _shards(config)])


def run_table1(
    seed: int = 2016,
    n_samples: int = PAPER_N_POINTS,
    order: int = 2,
) -> Table1Result:
    """Run experiment T1 and return the paper-vs-measured tables."""
    return _run(Table1Config(seed=seed, n_samples=n_samples, order=order))


register(
    ExperimentSpec(
        name="table1",
        description="Table 1 — demux orthogonator statistics",
        tier="table",
        config_type=Table1Config,
        run=_run,
        shard=_shards,
        run_shard=_run_shard,
        merge=_merge,
        shard_shared=_shard_shared,
    )
)


def main() -> None:
    """Print the Table 1 reproduction."""
    print(run_table1().render())


if __name__ == "__main__":
    main()
