"""Experiment C8: set-verification latency on superposition wires.

Ref [2] (the hyperspace paper this work builds on) motivates single-wire
superpositions with verification problems: compare two parties' sets
without enumerating them.  On orthogonal spike bases the comparison is
physical: the first spike present on exactly one wire *witnesses* a
difference.  Consequently:

* **unequal** sets are detected after ~one inter-spike interval of the
  differing element — independent of the set sizes;
* **equal** sets can only be certified by exhausting the record (no
  witness can be allowed to appear) — the asymmetric cost this
  experiment quantifies.

Each basis size draws from its own
:func:`~repro.noise.synthesis.spawn_rng` stream keyed on
``(config.seed, sweep index)`` — the experiment's shard plan, with
sharded runs bit-identical to serial by construction.

Run directly: ``python -m repro.experiments.verification``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..hyperspace.builders import build_demux_basis, paper_default_synthesizer
from ..noise.synthesis import spawn_rng
from ..pipeline.registry import register
from ..pipeline.spec import ExperimentSpec
from ..search.verification import verify_equality
from ..units import format_time, paper_white_grid

__all__ = [
    "VerificationConfig",
    "VerificationPoint",
    "VerificationExperimentResult",
    "run_verification",
]


@dataclass(frozen=True)
class VerificationConfig:
    """Config of the set-verification latency sweep."""

    basis_sizes: Tuple[int, ...] = (4, 8, 16)
    n_pairs: int = 24
    seed: int = 2016


@dataclass(frozen=True)
class VerificationPoint:
    """Latency summary for one basis size M."""

    basis_size: int
    median_unequal_slot: float
    equal_slot: int
    all_verdicts_correct: bool


@dataclass(frozen=True)
class VerificationExperimentResult:
    """The M sweep."""

    points: List[VerificationPoint]
    dt: float

    def render(self) -> str:
        """Full text report."""
        lines = [
            "C8 — set-verification latency (equality of superposition wires)",
            f"{'M':>4s} {'unequal (median)':>17s} {'equal (certify)':>16s} "
            f"{'correct':>8s}",
        ]
        for p in self.points:
            lines.append(
                f"{p.basis_size:>4d} "
                f"{format_time(p.median_unequal_slot * self.dt):>17s} "
                f"{format_time(p.equal_slot * self.dt):>16s} "
                f"{str(p.all_verdicts_correct):>8s}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class VerificationShard:
    """One basis size of the sweep (the spec's shard unit)."""

    config: VerificationConfig
    index: int  # position in the sweep; the rng spawn key
    basis_size: int


def _shards(config: VerificationConfig) -> Tuple[VerificationShard, ...]:
    """One shard per swept M."""
    return tuple(
        VerificationShard(config, i, int(m))
        for i, m in enumerate(config.basis_sizes)
    )


def _run_shard(shard: VerificationShard) -> Tuple[int, VerificationPoint]:
    """Measure one basis size on its own derived rng stream."""
    config = shard.config
    m = shard.basis_size
    rng = spawn_rng(config.seed, shard.index)
    basis = build_demux_basis(
        m, synthesizer=paper_default_synthesizer(), rng=rng
    )
    unequal_slots: List[int] = []
    correct = True

    # Unequal pairs: random sets differing in at least one element.
    while len(unequal_slots) < config.n_pairs:
        a = set(int(x) for x in rng.integers(0, m, size=m // 2))
        b = set(int(x) for x in rng.integers(0, m, size=m // 2))
        if a == b:
            continue
        result = verify_equality(
            basis, basis.encode_set(sorted(a)), basis.encode_set(sorted(b))
        )
        correct &= result.verdict is False
        unequal_slots.append(result.decision_slot)

    # One equal pair: certification must wait out the evidence.
    members = sorted(set(int(x) for x in rng.integers(0, m, size=m // 2)))
    equal = verify_equality(
        basis, basis.encode_set(members), basis.encode_set(members)
    )
    correct &= equal.verdict is True

    return shard.index, VerificationPoint(
        basis_size=m,
        median_unequal_slot=float(np.median(unequal_slots)),
        equal_slot=equal.decision_slot,
        all_verdicts_correct=correct,
    )


def _merge(
    config: VerificationConfig,
    parts: Sequence[Tuple[int, VerificationPoint]],
) -> VerificationExperimentResult:
    """Reassemble the sweep in its declared order."""
    points = [point for _index, point in sorted(parts, key=lambda p: p[0])]
    return VerificationExperimentResult(
        points=points, dt=paper_white_grid().dt
    )


def _run(config: VerificationConfig) -> VerificationExperimentResult:
    """Serial driver: the same shards, executed in-process."""
    return _merge(config, [_run_shard(shard) for shard in _shards(config)])


def run_verification(
    basis_sizes: Tuple[int, ...] = (4, 8, 16),
    n_pairs: int = 24,
    seed: int = 2016,
) -> VerificationExperimentResult:
    """Measure equality-verification latency over random set pairs."""
    return _run(
        VerificationConfig(
            basis_sizes=tuple(basis_sizes), n_pairs=n_pairs, seed=seed
        )
    )


register(
    ExperimentSpec(
        name="verification",
        description="C8 — set-verification latency",
        tier="claim",
        config_type=VerificationConfig,
        run=_run,
        shard=_shards,
        run_shard=_run_shard,
        merge=_merge,
    )
)


def main() -> None:
    """Print the C8 verification latency sweep."""
    print(run_verification().render())


if __name__ == "__main__":
    main()
