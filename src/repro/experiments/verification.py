"""Experiment C8: set-verification latency on superposition wires.

Ref [2] (the hyperspace paper this work builds on) motivates single-wire
superpositions with verification problems: compare two parties' sets
without enumerating them.  On orthogonal spike bases the comparison is
physical: the first spike present on exactly one wire *witnesses* a
difference.  Consequently:

* **unequal** sets are detected after ~one inter-spike interval of the
  differing element — independent of the set sizes;
* **equal** sets can only be certified by exhausting the record (no
  witness can be allowed to appear) — the asymmetric cost this
  experiment quantifies.

Run directly: ``python -m repro.experiments.verification``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..hyperspace.builders import build_demux_basis, paper_default_synthesizer
from ..noise.synthesis import make_rng
from ..pipeline.registry import register
from ..pipeline.spec import ExperimentSpec
from ..search.verification import verify_equality
from ..units import format_time

__all__ = [
    "VerificationConfig",
    "VerificationPoint",
    "VerificationExperimentResult",
    "run_verification",
]


@dataclass(frozen=True)
class VerificationConfig:
    """Config of the set-verification latency sweep."""

    basis_sizes: Tuple[int, ...] = (4, 8, 16)
    n_pairs: int = 24
    seed: int = 2016


@dataclass(frozen=True)
class VerificationPoint:
    """Latency summary for one basis size M."""

    basis_size: int
    median_unequal_slot: float
    equal_slot: int
    all_verdicts_correct: bool


@dataclass(frozen=True)
class VerificationExperimentResult:
    """The M sweep."""

    points: List[VerificationPoint]
    dt: float

    def render(self) -> str:
        """Full text report."""
        lines = [
            "C8 — set-verification latency (equality of superposition wires)",
            f"{'M':>4s} {'unequal (median)':>17s} {'equal (certify)':>16s} "
            f"{'correct':>8s}",
        ]
        for p in self.points:
            lines.append(
                f"{p.basis_size:>4d} "
                f"{format_time(p.median_unequal_slot * self.dt):>17s} "
                f"{format_time(p.equal_slot * self.dt):>16s} "
                f"{str(p.all_verdicts_correct):>8s}"
            )
        return "\n".join(lines)


def run_verification(
    basis_sizes: Tuple[int, ...] = (4, 8, 16),
    n_pairs: int = 24,
    seed: int = 2016,
) -> VerificationExperimentResult:
    """Measure equality-verification latency over random set pairs."""
    synthesizer = paper_default_synthesizer()
    rng = make_rng(seed)
    points: List[VerificationPoint] = []

    for m in basis_sizes:
        basis = build_demux_basis(m, synthesizer=synthesizer, rng=rng)
        unequal_slots: List[int] = []
        correct = True

        # Unequal pairs: random sets differing in at least one element.
        while len(unequal_slots) < n_pairs:
            a = set(int(x) for x in rng.integers(0, m, size=m // 2))
            b = set(int(x) for x in rng.integers(0, m, size=m // 2))
            if a == b:
                continue
            result = verify_equality(
                basis, basis.encode_set(sorted(a)), basis.encode_set(sorted(b))
            )
            correct &= result.verdict is False
            unequal_slots.append(result.decision_slot)

        # One equal pair: certification must wait out the evidence.
        members = sorted(set(int(x) for x in rng.integers(0, m, size=m // 2)))
        equal = verify_equality(
            basis, basis.encode_set(members), basis.encode_set(members)
        )
        correct &= equal.verdict is True

        points.append(
            VerificationPoint(
                basis_size=m,
                median_unequal_slot=float(np.median(unequal_slots)),
                equal_slot=equal.decision_slot,
                all_verdicts_correct=correct,
            )
        )
    return VerificationExperimentResult(points=points, dt=synthesizer.grid.dt)


register(
    ExperimentSpec(
        name="verification",
        description="C8 — set-verification latency",
        tier="claim",
        config_type=VerificationConfig,
        run=lambda config: run_verification(
            basis_sizes=config.basis_sizes,
            n_pairs=config.n_pairs,
            seed=config.seed,
        ),
    )
)


def main() -> None:
    """Print the C8 verification latency sweep."""
    print(run_verification().render())


if __name__ == "__main__":
    main()
