"""Experiments F1–F3: reproduce Figures 1, 2 and 3 (spike rasters).

* **Figure 1** — source spike train of band-limited white noise plus the
  three output sub-trains of a second-order demultiplexer-based
  orthogonator;
* **Figure 2** — input trains A, B from two *independent* white noises
  plus the three intersection products;
* **Figure 3** — the same with *strongly correlated* noises
  (0.945/0.055 common-mode mix), showing homogenized product rates.

Each driver returns the labelled trains, an ASCII raster rendering, and
a CSV of spike times — the data behind the paper's plots.  Run any of
them directly, e.g. ``python -m repro.experiments.figures``.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import List, Tuple

from ..noise.correlated import (
    PAPER_COMMON_AMPLITUDE,
    PAPER_PRIVATE_AMPLITUDE,
    CommonModeMixer,
)
from ..noise.spectra import PAPER_WHITE_BAND, WhiteSpectrum
from ..noise.synthesis import NoiseSynthesizer, make_rng
from ..orthogonator.demux import DemuxOrthogonator
from ..orthogonator.intersection import IntersectionOrthogonator
from ..pipeline.registry import register
from ..pipeline.spec import ExperimentSpec
from ..spikes.train import SpikeTrain
from ..spikes.zero_crossing import AllCrossingDetector
from ..units import paper_white_grid
from ..viz.raster import render_labelled_rasters
from .paper_constants import PAPER_N_POINTS

__all__ = [
    "Figure1Config",
    "Figure2Config",
    "Figure3Config",
    "FigureResult",
    "run_figure1",
    "run_figure2",
    "run_figure3",
]

#: Raster window: enough slots to show ~25 source spikes, as the paper does.
DEFAULT_WINDOW_SLOTS = 800


@dataclass(frozen=True)
class Figure1Config:
    """Config of the Figure 1 reproduction."""

    seed: int = 7
    n_samples: int = PAPER_N_POINTS
    window_slots: int = DEFAULT_WINDOW_SLOTS


@dataclass(frozen=True)
class Figure2Config:
    """Config of the Figure 2 reproduction."""

    seed: int = 11
    n_samples: int = PAPER_N_POINTS
    window_slots: int = DEFAULT_WINDOW_SLOTS


@dataclass(frozen=True)
class Figure3Config:
    """Config of the Figure 3 reproduction."""

    seed: int = 13
    n_samples: int = PAPER_N_POINTS
    window_slots: int = DEFAULT_WINDOW_SLOTS


@dataclass(frozen=True)
class FigureResult:
    """A reproduced figure: labelled trains + text rendering + CSV."""

    name: str
    trains: Tuple[Tuple[str, SpikeTrain], ...]
    window: Tuple[int, int]

    def render(self, width: int = 100) -> str:
        """ASCII raster of the figure window."""
        start, stop = self.window
        return (
            f"{self.name}\n"
            + render_labelled_rasters(list(self.trains), start, stop, width=width)
        )

    def to_csv(self) -> str:
        """Spike times (seconds) of every train, one row per spike."""
        buffer = io.StringIO()
        buffer.write("train,slot,time_s\n")
        for label, train in self.trains:
            dt = train.grid.dt
            for slot in train.indices.tolist():
                buffer.write(f"{label},{slot},{slot * dt:.6e}\n")
        return buffer.getvalue()

    def spike_counts(self) -> List[Tuple[str, int]]:
        """Per-train spike counts (whole record)."""
        return [(label, len(train)) for label, train in self.trains]


def run_figure1(
    seed: int = 7,
    n_samples: int = PAPER_N_POINTS,
    window_slots: int = DEFAULT_WINDOW_SLOTS,
) -> FigureResult:
    """Figure 1: white-noise source train dealt over three demux wires."""
    grid = paper_white_grid(n_samples=n_samples)
    synthesizer = NoiseSynthesizer(WhiteSpectrum(PAPER_WHITE_BAND), grid)
    record = synthesizer.generate(make_rng(seed))
    source = AllCrossingDetector().detect(record, grid)
    output = DemuxOrthogonator(2).transform(source)
    trains = (("source", source),) + tuple(output.as_dict().items())
    return FigureResult(
        name="Figure 1 — demux orthogonator (white noise source)",
        trains=trains,
        window=(0, min(window_slots, n_samples)),
    )


def _intersection_figure(
    name: str,
    correlated: bool,
    seed: int,
    n_samples: int,
    window_slots: int,
) -> FigureResult:
    grid = paper_white_grid(n_samples=n_samples)
    synthesizer = NoiseSynthesizer(WhiteSpectrum(PAPER_WHITE_BAND), grid)
    rng = make_rng(seed)
    if correlated:
        mixer = CommonModeMixer(
            synthesizer,
            common_amplitude=PAPER_COMMON_AMPLITUDE,
            private_amplitude=PAPER_PRIVATE_AMPLITUDE,
        )
        record_a, record_b = mixer.generate(2, rng=rng)
    else:
        record_a = synthesizer.generate(rng)
        record_b = synthesizer.generate(rng)
    detector = AllCrossingDetector()
    train_a = detector.detect(record_a, grid)
    train_b = detector.detect(record_b, grid)
    output = IntersectionOrthogonator(2).transform(train_a, train_b)
    trains = (("A", train_a), ("B", train_b)) + tuple(output.as_dict().items())
    return FigureResult(
        name=name,
        trains=trains,
        window=(0, min(window_slots, n_samples)),
    )


def run_figure2(
    seed: int = 11,
    n_samples: int = PAPER_N_POINTS,
    window_slots: int = DEFAULT_WINDOW_SLOTS,
) -> FigureResult:
    """Figure 2: intersection products of two independent white noises."""
    return _intersection_figure(
        "Figure 2 — intersection orthogonator (uncorrelated sources)",
        correlated=False,
        seed=seed,
        n_samples=n_samples,
        window_slots=window_slots,
    )


def run_figure3(
    seed: int = 13,
    n_samples: int = PAPER_N_POINTS,
    window_slots: int = DEFAULT_WINDOW_SLOTS,
) -> FigureResult:
    """Figure 3: the same with strongly correlated (homogenized) sources."""
    return _intersection_figure(
        "Figure 3 — intersection orthogonator (correlated sources)",
        correlated=True,
        seed=seed,
        n_samples=n_samples,
        window_slots=window_slots,
    )


register(
    ExperimentSpec(
        name="figure1",
        description="Figure 1 — demux raster",
        tier="figure",
        config_type=Figure1Config,
        run=lambda config: run_figure1(
            seed=config.seed,
            n_samples=config.n_samples,
            window_slots=config.window_slots,
        ),
    )
)

register(
    ExperimentSpec(
        name="figure2",
        description="Figure 2 — intersection raster (uncorrelated)",
        tier="figure",
        config_type=Figure2Config,
        run=lambda config: run_figure2(
            seed=config.seed,
            n_samples=config.n_samples,
            window_slots=config.window_slots,
        ),
    )
)

register(
    ExperimentSpec(
        name="figure3",
        description="Figure 3 — intersection raster (correlated)",
        tier="figure",
        config_type=Figure3Config,
        run=lambda config: run_figure3(
            seed=config.seed,
            n_samples=config.n_samples,
            window_slots=config.window_slots,
        ),
    )
)


def main() -> None:
    """Print all three figure reproductions."""
    for result in (run_figure1(), run_figure2(), run_figure3()):
        print(result.render())
        print("spike counts:", result.spike_counts())
        print()


if __name__ == "__main__":
    main()
