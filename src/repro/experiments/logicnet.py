"""Experiment N1: batched random-logic-network evaluation (``logicnet``).

The ROADMAP's "gate networks at batch scale" direction made concrete:
N fixed random 2-input logic networks (:class:`~repro.logic.netbatch.
LogicNetBatch`) read the demux basis's M spike lines as shared inputs
and evaluate layer-by-layer on the packed substrate — a gate-choice
sweep, the workload a search over network wirings would issue at scale.
The result is the per-gate output spike counts and per-network output
checksums, deterministic in ``(seed, shape)``.

Like S1 (:mod:`repro.experiments.identify`) it doubles as a sharding
reference, but along a different axis: the shard plan splits the
**network axis**, and because network ``i``'s tables are drawn from
``spawn_rng(seed, i)``, a rebuild shard reconstructs *only its own
networks* — no shard ever draws another shard's stream, so sharded runs
are bit-identical to serial ones by construction.  ``shard_shared``
ships the tables once through the run arena instead
(:meth:`~repro.logic.netbatch.LogicNetBatch.to_shared`).

Run directly: ``python -m repro.experiments.logicnet``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..backend.batch import SpikeTrainBatch
from ..backend.shared import SharedArena
from ..hyperspace.basis import BasisArtifact, HyperspaceBasis
from ..logic.netbatch import LogicNetBatch, LogicNetHandle
from ..noise.synthesis import make_rng
from ..orthogonator.demux import DemuxOrthogonator
from ..pipeline.registry import register
from ..pipeline.spec import ExperimentSpec
from ..spikes.generators import poisson_train
from ..units import paper_white_grid

__all__ = ["LogicNetConfig", "LogicNetResult", "run_logicnet"]


@dataclass(frozen=True)
class LogicNetConfig:
    """Config of the batched logic-network sweep.

    ``n_shards`` is part of the config (not the worker count): the
    shard plan must be identical however many jobs execute it.
    """

    seed: int = 2016
    n_networks: int = 64
    n_gates: int = 32
    depth: int = 3
    basis_size: int = 16
    source_isi_samples: int = 28
    n_shards: int = 4


@dataclass(frozen=True)
class LogicNetShard:
    """One rebuild shard: networks ``[net_start, net_stop)``.

    Carries only the config — the worker rebuilds the basis inputs and
    *its own* networks (spawn keys) deterministically.
    """

    config: LogicNetConfig
    net_start: int
    net_stop: int


@dataclass(frozen=True)
class LogicNetSharedShard:
    """One zero-copy shard: arena handles instead of a rebuild."""

    net_start: int
    net_stop: int
    basis: BasisArtifact
    nets: LogicNetHandle


@dataclass(frozen=True)
class LogicNetPart:
    """One shard's raw outcome (merged order-independently)."""

    net_start: int
    net_stop: int
    popcounts: np.ndarray  # (n, G) int64 output spike counts
    checksums: np.ndarray  # (n,) uint64 XOR folds


@dataclass(frozen=True)
class LogicNetResult:
    """The whole sweep's outputs, JSON-ready (plain Python values)."""

    n_networks: int
    n_gates: int
    depth: int
    basis_size: int
    n_shards: int
    total_spikes: int
    checksum: int
    popcounts: Tuple[Tuple[int, ...], ...]
    checksums: Tuple[int, ...]

    def render(self) -> str:
        """Full text report."""
        return "\n".join(
            [
                f"N1 — batched logic networks ({self.n_networks} nets × "
                f"{self.depth}×{self.n_gates} gates over "
                f"{self.basis_size} input lines, {self.n_shards} shards)",
                f"  output spikes : {self.total_spikes}",
                f"  checksum      : 0x{self.checksum:016x}",
            ]
        )


def _basis(config: LogicNetConfig) -> HyperspaceBasis:
    """The shared input lines: the same demux recipe S1/serving use."""
    grid = paper_white_grid()
    rng = make_rng(config.seed)
    source = poisson_train(
        rate_hz=1.0 / (config.source_isi_samples * grid.dt), grid=grid, rng=rng
    )
    output = DemuxOrthogonator.with_outputs(config.basis_size).transform(source)
    return HyperspaceBasis.from_orthogonator(output)


def _shards(config: LogicNetConfig) -> Tuple[LogicNetShard, ...]:
    """Split the network axis into ``n_shards`` contiguous ranges."""
    n_shards = max(1, min(config.n_shards, max(1, config.n_networks)))
    bounds = np.linspace(0, config.n_networks, n_shards + 1).astype(np.int64)
    return tuple(
        LogicNetShard(config, int(lo), int(hi))
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    )


def _eval_part(
    inputs: SpikeTrainBatch,
    nets: LogicNetBatch,
    net_start: int,
    net_stop: int,
) -> LogicNetPart:
    """Evaluate one contiguous network range against the input lines.

    The common core of the rebuild, shared and serial paths — equal
    inputs produce equal parts, whatever dispatched them.  ``nets``
    holds exactly the range's networks already.
    """
    popcounts, checksums = nets.evaluate(
        inputs.packed_words(), inputs.grid.n_samples
    )
    return LogicNetPart(
        net_start=net_start,
        net_stop=net_stop,
        popcounts=popcounts,
        checksums=checksums,
    )


def _run_shard(shard) -> LogicNetPart:
    """Run one shard: attach a shared workload, or rebuild it locally."""
    if isinstance(shard, LogicNetSharedShard):
        basis = HyperspaceBasis.from_artifact(shard.basis)
        nets = LogicNetBatch.from_shared(
            shard.nets, networks=(shard.net_start, shard.net_stop)
        )
    else:
        config = shard.config
        basis = _basis(config)
        nets = LogicNetBatch.random(
            shard.net_stop - shard.net_start,
            config.n_gates,
            config.depth,
            config.basis_size,
            config.seed,
            net_start=shard.net_start,
        )
    return _eval_part(basis.as_batch(), nets, shard.net_start, shard.net_stop)


def _shard_shared(
    config: LogicNetConfig, arena: SharedArena
) -> Tuple[LogicNetSharedShard, ...]:
    """Materialise basis and tables once, export them, ship handles."""
    basis = _basis(config)
    nets = LogicNetBatch.random(
        config.n_networks,
        config.n_gates,
        config.depth,
        config.basis_size,
        config.seed,
    )
    artifact = basis.to_artifact(arena)
    handle = nets.to_shared(arena)
    return tuple(
        LogicNetSharedShard(
            net_start=shard.net_start,
            net_stop=shard.net_stop,
            basis=artifact,
            nets=handle,
        )
        for shard in _shards(config)
    )


def _merge(
    config: LogicNetConfig, parts: Sequence[LogicNetPart]
) -> LogicNetResult:
    """Reassemble the sweep; concatenation in network order."""
    parts = sorted(parts, key=lambda p: p.net_start)
    if parts:
        popcounts = np.concatenate([p.popcounts for p in parts])
        checksums = np.concatenate([p.checksums for p in parts])
    else:
        popcounts = np.empty((0, config.n_gates), dtype=np.int64)
        checksums = np.empty(0, dtype=np.uint64)
    folded = np.bitwise_xor.reduce(checksums) if checksums.size else 0
    return LogicNetResult(
        n_networks=config.n_networks,
        n_gates=config.n_gates,
        depth=config.depth,
        basis_size=config.basis_size,
        n_shards=len(parts),
        total_spikes=int(popcounts.sum()),
        checksum=int(folded),
        popcounts=tuple(tuple(int(v) for v in row) for row in popcounts),
        checksums=tuple(int(v) for v in checksums),
    )


def _run(config: LogicNetConfig) -> LogicNetResult:
    """Serial driver: the same shards, executed in-process.

    Builds the basis and the full network family once and slices per
    shard — the serial analogue of the shared-memory dispatch path.
    """
    inputs = _basis(config).as_batch()
    nets = LogicNetBatch.random(
        config.n_networks,
        config.n_gates,
        config.depth,
        config.basis_size,
        config.seed,
    )
    parts = [
        _eval_part(
            inputs,
            nets.select_networks(shard.net_start, shard.net_stop),
            shard.net_start,
            shard.net_stop,
        )
        for shard in _shards(config)
    ]
    return _merge(config, parts)


def run_logicnet(
    seed: int = 2016,
    n_networks: int = 64,
    n_gates: int = 32,
    depth: int = 3,
    basis_size: int = 16,
    source_isi_samples: int = 28,
    n_shards: int = 4,
) -> LogicNetResult:
    """Run experiment N1 and return the sweep summary."""
    return _run(
        LogicNetConfig(
            seed=seed,
            n_networks=n_networks,
            n_gates=n_gates,
            depth=depth,
            basis_size=basis_size,
            source_isi_samples=source_isi_samples,
            n_shards=n_shards,
        )
    )


register(
    ExperimentSpec(
        name="logicnet",
        description="N1 — batched random-logic-network sweep (packed)",
        tier="serving",
        config_type=LogicNetConfig,
        run=_run,
        shard=_shards,
        run_shard=_run_shard,
        merge=_merge,
        shard_shared=_shard_shared,
    )
)


def main() -> None:
    """Print the N1 sweep summary."""
    print(run_logicnet().render())


if __name__ == "__main__":
    main()
